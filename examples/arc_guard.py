#!/usr/bin/env python3
"""Arc Guard: the full industrial safety stack around the arc detector.

Combines the pieces the paper's Industrial IoT use case needs (Sec. V-B +
Sec. IV-B): trained arc detector, input-quality monitors in front of it,
a hybrid safety kernel that degrades to "trip the breaker" on any payload
failure, and a robustness service auditing the deployed model for
injected faults.

Run:  python examples/arc_guard.py
"""

import numpy as np

from repro.apps.industrial import ArcDetector, run_arc_campaign
from repro.core import train_readout
from repro.datasets import dc_current_window, make_arc_dataset
from repro.hw import get_accelerator
from repro.ir import build_model
from repro.runtime import Executor
from repro.safety import (
    DropoutMonitor,
    HybridSystem,
    MonitorPipeline,
    OutlierMonitor,
    RobustnessService,
    StuckSensorMonitor,
    flip_weight_bits,
)


def main() -> None:
    # --- train and characterize the detector ------------------------------
    dataset = make_arc_dataset(250, window=128, seed=0)
    graph = build_model("arc_net", batch=16, window=128)
    model = train_readout(graph, dataset).graph.with_batch(1)
    detector = ArcDetector(model, platform=get_accelerator("K210"))

    stats = run_arc_campaign(detector, num_streams=60, seed=1)
    print("detector characterization (60 synthetic streams):")
    print(f"  false negatives: {stats.false_negative_rate:.3f}")
    print(f"  false positives: {stats.false_positive_rate:.3f}")
    print(f"  first-spark latency: mean {stats.mean_latency_s * 1e3:.2f} ms,"
          f" p99 {stats.p99_latency_s * 1e3:.2f} ms")

    # --- input-quality gate (Sec. IV-B monitors) ----------------------------
    gate = MonitorPipeline([
        DropoutMonitor(max_gap=16),
        OutlierMonitor(z_threshold=8.0),
        StuckSensorMonitor(),
    ])
    rng = np.random.default_rng(2)
    clean = dc_current_window(False, rng=rng)
    stuck = np.full(128, 8.0, dtype=np.float32)
    print("\ninput-quality gate:")
    print(f"  clean window -> {gate.process(clean).action.value}")
    print(f"  stuck sensor -> {gate.process(stuck).action.value}")

    # --- hybrid safety kernel --------------------------------------------------
    def guarded_inference(window):
        verdict = gate.process(window)
        if not verdict.usable:
            raise RuntimeError("input rejected by quality gate")
        return "arc" if detector.window_probability(verdict.sample) > 0.5 \
            else "normal"

    kernel = HybridSystem(guarded_inference, failsafe="TRIP-BREAKER",
                          deadline_s=0.005)
    print("\nhybrid kernel decisions:")
    for name, window in (("clean", clean), ("stuck sensor", stuck)):
        step = kernel.step(window)
        print(f"  {name:<13} -> {step.decision.value:<15} "
              f"output: {step.output}")

    # --- robustness service catches injected faults -------------------------------
    service = RobustnessService(model, quarantine_after=1)
    corrupted, faults = flip_weight_bits(model, num_flips=1,
                                         bit_range=(30, 30), seed=3)
    feeds = {model.inputs[0].name: dataset.features[:1]}
    healthy_out = Executor(model).run(feeds)
    faulty_out = Executor(corrupted).run(feeds)
    print("\nrobustness service audits:")
    print(f"  healthy device: consistent = "
          f"{service.check('device-ok', feeds, healthy_out).consistent}")
    check = service.check("device-hit-by-seu", feeds, faulty_out)
    print(f"  bit-flipped device ({faults[0].detail}): consistent = "
          f"{check.consistent}, quarantined = {check.quarantined}")
    print("\n" + service.report())


if __name__ == "__main__":
    main()
