#!/usr/bin/env python3
"""Quickstart: the six-step deployment flow on a small classifier.

Walks the paper's deployment pipeline (Sec. III) end to end:

1. prepare a dataset,
2. train the model (readout fitting on the frozen backbone),
3. evaluate it (confusion matrix),
4. optimize (operator fusion, INT8 post-training quantization),
5. compile for a target accelerator,
6. deploy and measure — host latency plus predicted latency/energy on the
   target across batch sizes.

Run:  python examples/quickstart.py
"""

from repro.core import DeploymentPipeline, render_target_predictions
from repro.datasets import make_shapes_dataset
from repro.hw import get_accelerator
from repro.ir import build_model


def main() -> None:
    # Step 1 — dataset: synthetic four-class shape images.
    dataset = make_shapes_dataset(num_samples=300, image_size=32, seed=0)
    print(f"dataset: {len(dataset)} samples, classes {dataset.class_names}")

    # Steps 2-6 — the pipeline handles training, evaluation, optimization,
    # compilation and measurement.  Target: a Jetson Xavier NX module (the
    # uRECS-native accelerator).
    model = build_model("tiny_convnet", batch=8, image_size=32,
                        num_classes=dataset.num_classes)
    target = get_accelerator("XavierNX")
    pipeline = DeploymentPipeline(model, dataset, target=target,
                                  optimizations=("fuse", "int8"))
    report = pipeline.run()

    print()
    print(report.render())
    print()
    print(report.confusions["int8"].render())
    print()
    print(render_target_predictions(report.variant("int8")))

    # The compiled artifact a deployment agent would ship to the device,
    # and the execution plan the runtime binds once and reuses per run.
    compiled = pipeline.compile_for_target(pipeline.graph)
    print()
    print(f"compiled for {target.name}: precision {compiled.dtype.value}, "
          f"artifact {compiled.artifact_bytes / 1024:.1f} KiB")

    from repro.optim import plan_memory
    from repro.runtime import compile_plan

    plan = compile_plan(pipeline.graph)
    arena = plan_memory(pipeline.graph)
    print(f"execution plan: {len(plan)} bound steps, "
          f"peak live {plan.peak_live_bytes / 1024:.1f} KiB "
          f"(arena {arena.arena_bytes / 1024:.1f} KiB, "
          f"{arena.reuse_factor:.1f}x reuse over naive buffers)")


if __name__ == "__main__":
    main()
