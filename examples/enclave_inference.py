#!/usr/bin/env python3
"""Trusted-execution tour: Wasm-in-enclave, TrustZone, PMP, attestation.

Walks the security stack of paper Sec. IV-C on one machine:

1. a key-value workload runs fully inside an SGX-style enclave via the
   Wasm runtime (the Twine result), with overhead accounting,
2. a TrustZone device boots through a verified chain and serves a trusted
   app over SMC,
3. the RISC-V PMP unit contains a hostile U-mode program on the simulated
   SoC,
4. a distributed-attestation round filters a tampered edge node.

Run:  python examples/enclave_inference.py
"""

from repro.security import (
    DistributedAttestation,
    Enclave,
    SigningKey,
    TrustedApp,
    TrustedWasmRuntime,
    Verifier,
    build_attested_device,
)
from repro.security.pmp import PMP_R, PMP_W, PMP_X, PmpUnit
from repro.security.workloads import (
    NativeKvStore,
    WasmKvAdapter,
    build_kv_module,
    run_kv_workload,
)
from repro.simulator import Machine, RAM_BASE, halt_with


def twine_demo() -> None:
    print("=== 1. database workload inside an enclave (Twine) ===")
    native = run_kv_workload(NativeKvStore(10), num_keys=200)
    runtime = TrustedWasmRuntime(build_kv_module(10), SigningKey(b"node-0"))
    tee = run_kv_workload(WasmKvAdapter(runtime), num_keys=200)
    overhead = runtime.modeled_overhead_seconds()
    print(f"  native:        {native.wall_seconds * 1e3:7.1f} ms")
    print(f"  wasm+enclave:  {(tee.wall_seconds + overhead) * 1e3:7.1f} ms "
          f"({runtime.stats.ecalls} ECALLs, modeled transitions "
          f"{overhead * 1e3:.1f} ms)")
    print(f"  results identical: {native.checksum == tee.checksum}\n")


def trustzone_demo() -> None:
    print("=== 2. TrustZone secure world with verified boot ===")
    vendor = SigningKey(b"vendor")
    device = SigningKey(b"arm-device")
    keystore = TrustedApp("keystore", b"keystore-v2",
                          {"get_key": lambda name: f"key-for-{name}"})
    normal, secure = build_attested_device(vendor, device,
                                           [(keystore, b"keystore-v2")])
    print(f"  boot chain: {secure.secure_boot.verified_stages}")
    print(f"  SMC keystore.get_key('tls') -> "
          f"{normal.smc('keystore', 'get_key', 'tls')}")
    print(f"  world switches: {normal.world_switches} "
          f"({normal.switch_overhead_cycles} cycles)\n")


def pmp_demo() -> None:
    print("=== 3. RISC-V PMP contains hostile U-mode code ===")
    pmp = PmpUnit()
    pmp.set_region(0, RAM_BASE, 0x1000, PMP_R | PMP_X)          # text
    pmp.set_region(1, RAM_BASE + 0x1000, 0x1000, PMP_R | PMP_W)  # data
    machine = Machine(pmp=pmp)
    secret = RAM_BASE + 0x8000
    machine.load_assembly(f"""
        la   t0, trap
        csrw mtvec, t0
        li   t0, {secret}
        li   t1, 0xC0FFEE
        sw   t1, 0(t0)          # M-mode plants a secret
        la   t0, user
        csrw mepc, t0
        mret
    user:
        li   a0, {secret}
        lw   a1, 0(a0)          # U-mode tries to read it
    hang:
        j hang
    trap:
    """ + halt_with(1))
    result = machine.run(max_steps=500)
    print(f"  U-mode read of M-mode secret: trapped "
          f"(cause {machine.cpu.last_trap_cause}, "
          f"{pmp.denied_count} PMP denial), leaked register a1 = "
          f"{machine.cpu.read_reg(11):#x}\n")


def attestation_demo() -> None:
    print("=== 4. distributed attestation across edge nodes ===")
    verifier = Verifier()
    distributed = DistributedAttestation(verifier)
    golden_measurement = None
    for index in range(3):
        key = SigningKey(f"edge-{index}".encode())
        code = b"monitor-v1" if index != 2 else b"monitor-v1-TAMPERED"
        enclave = Enclave("monitor", code, key)
        enclave.register_ecall("run", lambda: None)
        enclave.initialize()
        verifier.trust_device(key.verifying_key())
        if index == 0:
            golden_measurement = enclave.measurement()
            verifier.trust_measurement(golden_measurement)
        distributed.register_node(f"edge-{index}", enclave)
    for report in distributed.attest_all():
        status = "TRUSTED" if report.ok else f"REJECTED ({report.reason})"
        print(f"  edge-{report.node[-1]}: {status}")
    print(f"  nodes eligible for offloading: {distributed.trusted_nodes()}")


def main() -> None:
    twine_demo()
    trustzone_demo()
    pmp_demo()
    attestation_demo()


if __name__ == "__main__":
    main()
