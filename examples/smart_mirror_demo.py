#!/usr/bin/env python3
"""Smart Mirror demonstrator: four networks, on-site, on a 15 W platform.

Reproduces Fig. 5 (paper Sec. V-C): camera and microphone feed four neural
networks — gesture, face, object and speech — running entirely on-site on
an embedded accelerator inside a uRECS chassis.  Prints the per-network
budget table and runs an interaction session, then demonstrates the
privacy boundary rejecting an off-site upload.

Run:  python examples/smart_mirror_demo.py
"""

import numpy as np

from repro.apps.smarthome import PrivacyViolation, build_default_mirror
from repro.core import train_readout
from repro.datasets import make_shapes_dataset
from repro.datasets.audio import keyword_waveform, make_keyword_dataset
from repro.hw import build_reference_urecs
from repro.ir import build_model


def train_vision_net(seed: int):
    graph = build_model("tiny_convnet", batch=8, image_size=32,
                        num_classes=4, seed=seed)
    dataset = make_shapes_dataset(200, image_size=32, seed=seed)
    result = train_readout(graph, dataset)
    return result.graph.with_batch(1), result.train_accuracy


def main() -> None:
    chassis = build_reference_urecs()
    print(chassis.inventory())
    fpga = next(m for m in chassis.microservers if m.accelerator == "ZynqZU3")
    print(f"\nmirror compute: {fpga.spec.name} "
          f"({fpga.spec.tdp_w} W TDP, slot 0)\n")

    print("training the four networks (frozen backbones + fitted readouts):")
    models = {}
    for name, seed in (("gesture", 1), ("face", 2), ("object", 3)):
        models[name], accuracy = train_vision_net(seed)
        print(f"  {name:<8} train accuracy {accuracy:.2f}")
    speech_graph = build_model("mlp", batch=8, in_features=64,
                               hidden=(128,), num_classes=5, seed=4)
    speech_result = train_readout(speech_graph, make_keyword_dataset(60))
    models["speech"] = speech_result.graph.with_batch(1)
    print(f"  {'speech':<8} train accuracy "
          f"{speech_result.train_accuracy:.2f}\n")

    mirror = build_default_mirror(models, platform=fpga.spec)
    print(mirror.budget_report())
    print(f"sustained power: {mirror.sustained_power_w:.2f} W\n")

    print("interaction session:")
    rng = np.random.default_rng(0)
    frames = make_shapes_dataset(4, image_size=32, seed=9).features
    for frame, keyword in zip(frames, ("mirror", "lights", "weather",
                                       "music")):
        audio = keyword_waveform(keyword, rng=rng)
        tick = mirror.tick(frame, audio)
        outputs = ", ".join(f"{k}={v}" for k, v in tick.outputs.items())
        print(f"  heard {keyword!r:<10} -> {outputs} "
              f"[{tick.latency_s * 1e3:.2f} ms]")

    print("\nprivacy boundary:")
    print(f"  transfers so far: {mirror.boundary.transfers[-1]} (all local)")
    try:
        mirror.boundary.transfer("camera-frame", "cloud-analytics")
    except PrivacyViolation as exc:
        print(f"  cloud upload rejected: {exc}")


if __name__ == "__main__":
    main()
