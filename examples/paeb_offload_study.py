#!/usr/bin/env python3
"""PAEB offloading study: when should the car ship frames to the edge?

Reproduces the automotive use case (paper Sec. V-A): a YoloV4 pedestrian
detector can run on the car's Jetson TX2 or on a GTX1660 edge station
reached over a speed-degraded mobile network.  The decision engine
minimizes on-car energy subject to the braking deadline, channel
reliability, and remote attestation of the edge node.

Run:  python examples/paeb_offload_study.py
"""

from repro.apps.automotive import (
    PaebSimulation,
    braking_deadline_s,
    default_paeb_setup,
)
from repro.ir import build_model
from repro.security import Enclave, SigningKey, Verifier


def attest_edge_station(engine) -> None:
    """Gate offloading on remote attestation (Sec. V-A's security hook)."""
    device_key = SigningKey(b"edge-station-0")
    enclave = Enclave("detector-service", b"yolov4-service-v1", device_key)
    enclave.register_ecall("infer", lambda frame: "detections")
    enclave.initialize()

    verifier = Verifier()
    verifier.trust_device(device_key.verifying_key())
    verifier.trust_measurement(enclave.measurement())
    try:
        verifier.attest(enclave)
        attested = True
    except Exception:
        attested = False
    for station in engine.stations:
        station.attested = attested
    print(f"edge station attestation: {'PASS' if attested else 'FAIL'} "
          f"(measurement {enclave.measurement().hex()[:16]}...)")


def main() -> None:
    print("building YoloV4 (the paper's detection workload)...")
    detector = build_model("yolov4", image_size=416)

    engine, network = default_paeb_setup(detector, oncar="JetsonTX2",
                                         edge="GTX1660", seed=0)
    attest_edge_station(engine)
    print(f"on-car:  {engine.oncar.latency_s * 1e3:6.0f} ms/frame, "
          f"{engine.oncar.energy_per_inference_j:5.2f} J/frame "
          f"({engine.oncar.platform})")
    edge = engine.edge_predictions["edge-0"]
    print(f"edge:    {edge.latency_s * 1e3:6.0f} ms/frame compute "
          f"({edge.platform})")
    print()

    simulation = PaebSimulation(engine, network)
    print(f"{'km/h':>6}{'deadline ms':>13}{'offload %':>11}"
          f"{'on-car J':>10}{'saving %':>10}{'misses':>8}")
    for speed in (30, 50, 70, 90, 110):
        stats = simulation.run([float(speed)] * 50)
        print(f"{speed:>6}{braking_deadline_s(speed) * 1e3:>13.0f}"
              f"{stats.offload_fraction * 100:>11.0f}"
              f"{stats.oncar_energy_j:>10.1f}"
              f"{stats.oncar_energy_saving * 100:>10.0f}"
              f"{stats.deadline_misses:>8}")

    print()
    print("note: above ~100 km/h the braking deadline collapses below the")
    print("on-car inference time — the physical envelope of camera PAEB.")


if __name__ == "__main__":
    main()
