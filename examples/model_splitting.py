#!/usr/bin/env python3
"""Model splitting: distribute one network between device and edge.

The PAEB use case calls for "the distribution of the deep learning models
… between different on-car systems and edge devices" (paper Sec. V-A).
This example cuts MobileNetV3 after every layer, prices each cut (device
compute + int8 boundary transfer + edge compute), verifies a chosen split
executes bit-exactly, and shows how the best strategy moves with the
network: all-on-device on a bad link, a bottleneck mid-split at moderate
bandwidth, full offload on a fast link.

Run:  python examples/model_splitting.py
"""

import numpy as np

from repro.apps.automotive import ChannelSample, SplitOffloadStudy
from repro.core import run_split, split_at
from repro.hw import get_accelerator
from repro.ir import build_model
from repro.runtime import run_graph


def main() -> None:
    print("building MobileNetV3-Large (device: Raspberry Pi CM4, "
          "edge: Jetson Xavier NX)...")
    model = build_model("mobilenet_v3_large", image_size=224,
                        num_classes=1000)
    study = SplitOffloadStudy(model,
                              oncar=get_accelerator("RPi-CM4"),
                              edge=get_accelerator("XavierNX"),
                              activation_compression=4.0)

    print(f"\n{'Mbps':>6}{'strategy':>12}{'cut after':>22}"
          f"{'boundary KB':>13}{'latency ms':>12}{'device J':>10}")
    for mbps in (1, 4, 10, 50, 200):
        channel = ChannelSample(float(mbps), 30.0, True)
        best = study.best(channel, deadline_s=5.0)
        print(f"{mbps:>6}{best.kind:>12}{best.after_node:>22}"
              f"{best.boundary_bytes / 1024:>13.0f}"
              f"{best.latency_s * 1e3:>12.1f}"
              f"{best.oncar_energy_j:>10.3f}")

    # Prove a mid split is *exact*: head-then-tail equals the full model.
    channel = ChannelSample(10.0, 30.0, True)
    best = study.best(channel, deadline_s=5.0)
    print(f"\nverifying the {best.kind} at position {best.position} "
          f"(after {best.after_node}) is bit-exact...")
    head, tail = split_at(model, best.position)
    rng = np.random.default_rng(0)
    feed = {"input": rng.normal(size=(1, 3, 224, 224)).astype(np.float32)}
    reference = run_graph(model, feed)[model.output_names[0]]
    recombined = run_split(head, tail, feed)[model.output_names[0]]
    exact = np.array_equal(reference, recombined)
    print(f"  head: {len(head.nodes)} layers on-device, "
          f"tail: {len(tail.nodes)} layers on-edge, "
          f"outputs identical: {exact}")


if __name__ == "__main__":
    main()
