"""Architectural hybridization: a verified safety kernel guarding a complex payload.

Paper Sec. IV-B: "To support all these monitors and monitoring mechanisms,
an architectural pattern comprising two separate parts is considered, based
on the concept of architectural hybridization" (Casimiro et al. [16]).

The pattern splits the system into:

* a small, verifiable *safety kernel* that enforces timing and validity
  envelopes and owns the fail-safe action, and
* a complex, untrusted *payload* (the DL pipeline) whose outputs are only
  accepted when the kernel's checks pass.

The kernel cannot be bypassed: every payload result flows through
:meth:`HybridSystem.step`, and deadline misses, validity failures or
payload crashes all degrade to the fail-safe output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Generic, List, Optional, TypeVar

Input = TypeVar("Input")
Output = TypeVar("Output")

PayloadFn = Callable[[Input], Output]
ValidityCheck = Callable[[Input, Output], bool]
Clock = Callable[[], float]


class KernelDecision(Enum):
    ACCEPTED = "accepted"
    DEADLINE_MISS = "deadline_miss"
    INVALID_OUTPUT = "invalid_output"
    PAYLOAD_ERROR = "payload_error"


@dataclass
class StepResult(Generic[Output]):
    """One kernel-mediated execution of the payload."""

    decision: KernelDecision
    output: Output                 # payload output or fail-safe value
    elapsed_s: float
    failsafe_used: bool


@dataclass
class KernelStats:
    steps: int = 0
    accepted: int = 0
    deadline_misses: int = 0
    invalid_outputs: int = 0
    payload_errors: int = 0

    @property
    def availability(self) -> float:
        """Fraction of steps served by the payload (not the fail-safe)."""
        return self.accepted / self.steps if self.steps else 0.0


class HybridSystem(Generic[Input, Output]):
    """Safety kernel wrapping an untrusted payload function.

    Parameters
    ----------
    payload
        The complex function (e.g. a DL inference pipeline).
    failsafe
        Value or callable producing the safe output when the payload is
        rejected (e.g. "brake" in PAEB, "trip the breaker" in arc
        detection).
    deadline_s
        Hard per-step deadline the kernel enforces.
    validity
        Predicate over (input, output); rejecting implausible outputs is
        the kernel's defence against silent payload corruption.
    clock
        Injectable time source (tests use a fake clock).
    """

    def __init__(self, payload: PayloadFn, failsafe,
                 deadline_s: float,
                 validity: Optional[ValidityCheck] = None,
                 clock: Clock = time.perf_counter) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        self.payload = payload
        self._failsafe = failsafe
        self.deadline_s = deadline_s
        self.validity = validity
        self.clock = clock
        self.stats = KernelStats()

    def _failsafe_value(self, value: Input) -> Output:
        if callable(self._failsafe):
            return self._failsafe(value)
        return self._failsafe

    def step(self, value: Input) -> StepResult[Output]:
        """Run the payload under kernel supervision."""
        self.stats.steps += 1
        start = self.clock()
        try:
            output = self.payload(value)
        except Exception:  # noqa: BLE001 - any payload crash must degrade safely
            self.stats.payload_errors += 1
            return StepResult(KernelDecision.PAYLOAD_ERROR,
                              self._failsafe_value(value),
                              self.clock() - start, True)
        elapsed = self.clock() - start
        if elapsed > self.deadline_s:
            self.stats.deadline_misses += 1
            return StepResult(KernelDecision.DEADLINE_MISS,
                              self._failsafe_value(value), elapsed, True)
        if self.validity is not None and not self.validity(value, output):
            self.stats.invalid_outputs += 1
            return StepResult(KernelDecision.INVALID_OUTPUT,
                              self._failsafe_value(value), elapsed, True)
        self.stats.accepted += 1
        return StepResult(KernelDecision.ACCEPTED, output, elapsed, False)
