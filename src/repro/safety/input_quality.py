"""Concrete input-quality monitors for time series and images.

The detector families the paper names (Sec. IV-B): outliers and dropouts in
time-series sensor data, noise/exposure/dead-pixel defects in camera
images.  Each monitor flags anomalies; where a safe correction exists
(interpolation, clipping, median filtering) it is offered to the pipeline.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from .monitors import Anomaly, Monitor, Severity


# ---------------------------------------------------------------------------
# Time-series monitors (vibration, current, temperature streams)
# ---------------------------------------------------------------------------

class RangeMonitor(Monitor):
    """Physical-bounds check; out-of-range values are clipped."""

    name = "range"

    def __init__(self, low: float, high: float,
                 severity: Severity = Severity.WARNING) -> None:
        if low >= high:
            raise ValueError("low must be < high")
        self.low = low
        self.high = high
        self.severity = severity

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        bad = np.flatnonzero((sample < self.low) | (sample > self.high))
        if bad.size == 0:
            return []
        return [Anomaly(self.name, "out_of_range", self.severity,
                        f"{bad.size} values outside [{self.low}, {self.high}]",
                        tuple(int(i) for i in bad[:16]))]

    def correct(self, sample: np.ndarray, anomalies) -> Optional[np.ndarray]:
        return np.clip(sample, self.low, self.high)


class OutlierMonitor(Monitor):
    """Z-score spike detection against a rolling history of windows."""

    name = "outlier"

    def __init__(self, z_threshold: float = 5.0, history: int = 32,
                 severity: Severity = Severity.WARNING) -> None:
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.z_threshold = z_threshold
        self.history: Deque[Tuple[float, float]] = deque(maxlen=history)
        self.severity = severity
        self._last_mask: Optional[np.ndarray] = None

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        self._last_mask = None
        if self.history:
            means = np.array([m for m, _ in self.history])
            stds = np.array([s for _, s in self.history])
            mu = float(means.mean())
            sigma = float(max(stds.mean(), 1e-9))
            z = np.abs(sample - mu) / sigma
            mask = z > self.z_threshold
        else:
            # Cold start: flag only within-window extreme deviations.
            sigma = float(max(np.std(sample), 1e-9))
            z = np.abs(sample - np.median(sample)) / sigma
            mask = z > max(self.z_threshold, 8.0)
        # Learn only from the non-anomalous portion to avoid poisoning.
        clean = sample[~mask] if mask.any() else sample
        if clean.size:
            self.history.append((float(np.mean(clean)), float(np.std(clean))))
        if not mask.any():
            return []
        self._last_mask = mask
        bad = np.flatnonzero(mask)
        return [Anomaly(self.name, "outlier", self.severity,
                        f"{bad.size} samples exceed z={self.z_threshold}",
                        tuple(int(i) for i in bad[:16]))]

    def correct(self, sample: np.ndarray, anomalies) -> Optional[np.ndarray]:
        if self._last_mask is None:
            return None
        fixed = sample.copy()
        good = np.flatnonzero(~self._last_mask)
        bad = np.flatnonzero(self._last_mask)
        if good.size == 0:
            return None
        fixed[bad] = np.interp(bad, good, sample[good])
        return fixed

    def reset(self) -> None:
        self.history.clear()
        self._last_mask = None


class DropoutMonitor(Monitor):
    """Detects missing samples (NaNs); corrects by linear interpolation."""

    name = "dropout"

    def __init__(self, max_gap: int = 8,
                 severity: Severity = Severity.WARNING) -> None:
        self.max_gap = max_gap
        self.severity = severity

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        mask = ~np.isfinite(sample)
        if not mask.any():
            return []
        # Longest run of consecutive missing values.
        runs = np.diff(np.flatnonzero(np.concatenate(
            ([True], ~mask[:-1] != ~mask[1:], [True]))))
        longest = 0
        position = 0
        for run in runs:
            if mask[position]:
                longest = max(longest, run)
            position += run
        severity = Severity.CRITICAL if longest > self.max_gap else self.severity
        bad = np.flatnonzero(mask)
        return [Anomaly(self.name, "dropout", severity,
                        f"{bad.size} missing, longest gap {longest}",
                        tuple(int(i) for i in bad[:16]))]

    def correct(self, sample: np.ndarray, anomalies) -> Optional[np.ndarray]:
        mask = ~np.isfinite(sample)
        good = np.flatnonzero(~mask)
        if good.size < 2:
            return None
        fixed = sample.copy()
        fixed[mask] = np.interp(np.flatnonzero(mask), good, sample[good])
        return fixed


class StuckSensorMonitor(Monitor):
    """Flags windows whose variance collapses (sensor stuck at a value)."""

    name = "stuck"

    def __init__(self, min_std: float = 1e-6,
                 severity: Severity = Severity.CRITICAL) -> None:
        self.min_std = min_std
        self.severity = severity

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        if sample.size < 4:
            return []
        if float(np.std(sample)) >= self.min_std:
            return []
        return [Anomaly(self.name, "stuck_sensor", self.severity,
                        f"std {np.std(sample):.2e} < {self.min_std:.2e}")]


class DriftMonitor(Monitor):
    """Detects slow mean drift relative to a calibration reference."""

    name = "drift"

    def __init__(self, reference_mean: float, tolerance: float,
                 smoothing: float = 0.1,
                 severity: Severity = Severity.WARNING) -> None:
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.reference_mean = reference_mean
        self.tolerance = tolerance
        self.smoothing = smoothing
        self.severity = severity
        self._ema: Optional[float] = None

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        window_mean = float(np.nanmean(sample))
        if self._ema is None:
            self._ema = window_mean
        else:
            self._ema += self.smoothing * (window_mean - self._ema)
        deviation = abs(self._ema - self.reference_mean)
        if deviation <= self.tolerance:
            return []
        return [Anomaly(self.name, "drift", self.severity,
                        f"smoothed mean {self._ema:.4g} deviates "
                        f"{deviation:.4g} > {self.tolerance:.4g}")]

    def reset(self) -> None:
        self._ema = None


# ---------------------------------------------------------------------------
# Image monitors (camera inputs of the smart mirror / PAEB use cases)
# ---------------------------------------------------------------------------

def _as_gray(image: np.ndarray) -> np.ndarray:
    if image.ndim == 3:            # CHW -> gray
        return image.mean(axis=0)
    return image


def _laplacian(gray: np.ndarray) -> np.ndarray:
    padded = np.pad(gray, 1, mode="edge")
    return (padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2]
            + padded[1:-1, 2:] - 4 * gray)


class ExposureMonitor(Monitor):
    """Flags over/under-exposed frames by saturated-pixel fraction."""

    name = "exposure"

    def __init__(self, low: float = 0.02, high: float = 0.98,
                 max_fraction: float = 0.5,
                 severity: Severity = Severity.CRITICAL) -> None:
        self.low = low
        self.high = high
        self.max_fraction = max_fraction
        self.severity = severity

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        gray = _as_gray(sample)
        dark = float(np.mean(gray <= self.low))
        bright = float(np.mean(gray >= self.high))
        anomalies = []
        if dark > self.max_fraction:
            anomalies.append(Anomaly(self.name, "underexposed", self.severity,
                                     f"{dark:.0%} of pixels near black"))
        if bright > self.max_fraction:
            anomalies.append(Anomaly(self.name, "overexposed", self.severity,
                                     f"{bright:.0%} of pixels near white"))
        return anomalies


class NoiseMonitor(Monitor):
    """Estimates sensor noise from the Laplacian response; offers denoising."""

    name = "noise"

    def __init__(self, max_sigma: float = 0.15,
                 severity: Severity = Severity.WARNING) -> None:
        self.max_sigma = max_sigma
        self.severity = severity

    def estimate_sigma(self, sample: np.ndarray) -> float:
        """Robust per-channel noise estimate (Laplacian MAD).

        Channels are estimated independently and averaged — averaging the
        channels *first* would cancel independent sensor noise by sqrt(C)
        and underestimate sigma.
        """
        sample = np.asarray(sample, dtype=np.float64)
        channels = sample if sample.ndim == 3 else sample[None]
        sigmas = []
        for channel in channels:
            lap = _laplacian(channel)
            # The 4-neighbour Laplacian of i.i.d. noise has std sqrt(20)*sigma;
            # the median absolute deviation is robust to sparse image edges.
            sigmas.append(np.median(np.abs(lap)) / 0.6745 / np.sqrt(20))
        return float(np.mean(sigmas))

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        sigma = self.estimate_sigma(sample)
        if sigma <= self.max_sigma:
            return []
        return [Anomaly(self.name, "image_noise", self.severity,
                        f"estimated sigma {sigma:.3f} > {self.max_sigma}")]

    def correct(self, sample: np.ndarray, anomalies) -> Optional[np.ndarray]:
        return median_filter3(sample)


class DeadPixelMonitor(Monitor):
    """Detects isolated stuck pixels; corrects with a 3x3 median."""

    name = "dead_pixel"

    def __init__(self, threshold: float = 0.5, max_count: int = 64,
                 severity: Severity = Severity.WARNING) -> None:
        self.threshold = threshold
        self.max_count = max_count
        self.severity = severity

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        gray = _as_gray(np.asarray(sample, dtype=np.float64))
        medianed = median_filter3(gray)
        deviation = np.abs(gray - medianed)
        count = int(np.count_nonzero(deviation > self.threshold))
        if count == 0:
            return []
        severity = Severity.CRITICAL if count > self.max_count else self.severity
        return [Anomaly(self.name, "dead_pixels", severity,
                        f"{count} isolated defective pixels")]

    def correct(self, sample: np.ndarray, anomalies) -> Optional[np.ndarray]:
        gray = np.asarray(sample, dtype=np.float64)
        if gray.ndim == 3:
            return np.stack([median_filter3(c) for c in gray])
        return median_filter3(gray)


class BlurMonitor(Monitor):
    """Flags defocused/motion-blurred frames via Laplacian variance."""

    name = "blur"

    def __init__(self, min_variance: float = 1e-4,
                 severity: Severity = Severity.WARNING) -> None:
        self.min_variance = min_variance
        self.severity = severity

    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        gray = _as_gray(np.asarray(sample, dtype=np.float64))
        variance = float(np.var(_laplacian(gray)))
        if variance >= self.min_variance:
            return []
        return [Anomaly(self.name, "blur", self.severity,
                        f"laplacian variance {variance:.2e} < "
                        f"{self.min_variance:.2e}")]


def median_filter3(image: np.ndarray) -> np.ndarray:
    """3x3 median filter (edge-padded), channel-wise for CHW input."""
    image = np.asarray(image)
    if image.ndim == 3:
        return np.stack([median_filter3(channel) for channel in image])
    padded = np.pad(image, 1, mode="edge")
    stacked = np.stack([
        padded[i:i + image.shape[0], j:j + image.shape[1]]
        for i in range(3) for j in range(3)
    ])
    return np.median(stacked, axis=0).astype(image.dtype)
