"""Monitoring framework for fault detection in AIoT pipelines.

Paper Sec. IV-B: "VEDLIoT focuses on monitoring approaches to detect faulty
situations and trigger appropriate reactive measures … Different monitoring
and error detection mechanisms are developed, depending on the kinds of
input data (e.g., time series, image) and on the error types (e.g.,
outliers, image noise)."

This module defines the framework: anomalies, monitors, correction actions,
and the pipeline that runs a stack of monitors over each sample and decides
whether to pass, correct, or reject it before it reaches a DL model.
Concrete detectors live in :mod:`repro.safety.input_quality`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class Severity(Enum):
    INFO = 1
    WARNING = 2
    CRITICAL = 3


class Action(Enum):
    """What the pipeline decided to do with a sample."""

    PASS = "pass"
    CORRECTED = "corrected"
    REJECTED = "rejected"


@dataclass(frozen=True)
class Anomaly:
    """One detected data-quality problem."""

    monitor: str
    kind: str
    severity: Severity
    detail: str = ""
    indices: Tuple[int, ...] = ()


class Monitor(abc.ABC):
    """Inspects one sample; optionally proposes a corrected version."""

    name: str = "monitor"

    @abc.abstractmethod
    def observe(self, sample: np.ndarray) -> List[Anomaly]:
        """Return all anomalies found in ``sample`` (empty if clean)."""

    def correct(self, sample: np.ndarray,
                anomalies: List[Anomaly]) -> Optional[np.ndarray]:
        """Return a corrected sample, or None if this monitor cannot correct."""
        return None

    def reset(self) -> None:
        """Clear any rolling state (new stream)."""


@dataclass
class Verdict:
    """Pipeline decision for one sample."""

    action: Action
    sample: Optional[np.ndarray]
    anomalies: List[Anomaly] = field(default_factory=list)

    @property
    def usable(self) -> bool:
        return self.action is not Action.REJECTED

    @property
    def worst_severity(self) -> Optional[Severity]:
        if not self.anomalies:
            return None
        return max(self.anomalies, key=lambda a: a.severity.value).severity


@dataclass
class PipelineStats:
    """Aggregate counters over a stream."""

    observed: int = 0
    passed: int = 0
    corrected: int = 0
    rejected: int = 0
    anomalies_by_kind: Dict[str, int] = field(default_factory=dict)


class MonitorPipeline:
    """Runs a stack of monitors and applies a correction-or-reject policy.

    Policy (from the paper: "a large set of data errors may be easily
    identified, may be corrected, or the affected data may be removed to
    avoid the propagation of these errors through the DL models"):

    * no anomalies -> PASS
    * anomalies, all correctable and below ``reject_at`` severity ->
      apply corrections in monitor order -> CORRECTED
    * any anomaly at/above ``reject_at`` or uncorrectable anomaly with
      ``strict`` set -> REJECTED
    """

    def __init__(self, monitors: Sequence[Monitor],
                 reject_at: Severity = Severity.CRITICAL,
                 strict: bool = False) -> None:
        if not monitors:
            raise ValueError("pipeline needs at least one monitor")
        self.monitors = list(monitors)
        self.reject_at = reject_at
        self.strict = strict
        self.stats = PipelineStats()
        # Pipeline decisions and anomaly kinds surface in the metrics
        # registry (scrape-time read of self.stats; process() is
        # untouched).
        from ..telemetry import collectors as _telemetry
        _telemetry.track_pipeline(self)

    def process(self, sample: np.ndarray) -> Verdict:
        self.stats.observed += 1
        sample = np.asarray(sample)
        all_anomalies: List[Anomaly] = []
        current = sample
        corrected = False
        for monitor in self.monitors:
            anomalies = monitor.observe(current)
            if not anomalies:
                continue
            all_anomalies.extend(anomalies)
            for anomaly in anomalies:
                self.stats.anomalies_by_kind[anomaly.kind] = \
                    self.stats.anomalies_by_kind.get(anomaly.kind, 0) + 1
            if any(a.severity.value >= self.reject_at.value for a in anomalies):
                self.stats.rejected += 1
                return Verdict(Action.REJECTED, None, all_anomalies)
            fixed = monitor.correct(current, anomalies)
            if fixed is not None:
                current = fixed
                corrected = True
            elif self.strict:
                self.stats.rejected += 1
                return Verdict(Action.REJECTED, None, all_anomalies)
        if corrected:
            self.stats.corrected += 1
            return Verdict(Action.CORRECTED, current, all_anomalies)
        self.stats.passed += 1
        return Verdict(Action.PASS, current, all_anomalies)

    def reset(self) -> None:
        for monitor in self.monitors:
            monitor.reset()
        self.stats = PipelineStats()
