"""Output robustness service: detect systematic faults in deployed models.

Paper Sec. IV-B: "the approach consists in periodically submitting both the
input and the output data to a robustness service, which holds a copy of
the DL model and can verify the correctness of the output data" — catching
faults "triggered or injected during run-time (e.g., hardware faults,
attacks)" on the device executing the model.

The service re-executes submitted inputs on its own (trusted) copy of the
model and compares outputs.  Divergence beyond tolerance marks the
submitting device as suspect; repeated divergence quarantines it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..ir.graph import Graph
from ..runtime.executor import Executor


@dataclass
class CheckResult:
    """Outcome of verifying one (input, output) submission."""

    device: str
    consistent: bool
    max_abs_error: float
    tolerance: float
    quarantined: bool


@dataclass
class DeviceRecord:
    """Rolling health of one monitored device."""

    checks: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False

    @property
    def failure_rate(self) -> float:
        return self.failures / self.checks if self.checks else 0.0


class RobustnessService:
    """Holds a trusted model copy and audits device outputs against it.

    Parameters
    ----------
    reference
        Trusted copy of the deployed graph.
    tolerance
        Maximum absolute output deviation considered consistent (covers
        benign numeric differences between device and service runtimes).
    quarantine_after
        Consecutive failed checks before a device is quarantined.
    """

    def __init__(self, reference: Graph, tolerance: float = 1e-3,
                 quarantine_after: int = 3) -> None:
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.executor = Executor(reference)
        self.tolerance = tolerance
        self.quarantine_after = quarantine_after
        self.devices: Dict[str, DeviceRecord] = {}

    def check(self, device: str, feeds: Mapping[str, np.ndarray],
              reported_outputs: Mapping[str, np.ndarray]) -> CheckResult:
        """Audit one submission from ``device``."""
        record = self.devices.setdefault(device, DeviceRecord())
        expected = self.executor.run(feeds)
        max_err = 0.0
        for name, value in expected.items():
            if name not in reported_outputs:
                max_err = float("inf")
                break
            reported = np.asarray(reported_outputs[name], dtype=np.float64)
            if reported.shape != value.shape:
                max_err = float("inf")
                break
            max_err = max(max_err, float(
                np.max(np.abs(reported - value.astype(np.float64)))))
        consistent = max_err <= self.tolerance
        record.checks += 1
        if consistent:
            record.consecutive_failures = 0
        else:
            record.failures += 1
            record.consecutive_failures += 1
            if record.consecutive_failures >= self.quarantine_after:
                record.quarantined = True
        return CheckResult(device, consistent, max_err, self.tolerance,
                           record.quarantined)

    def is_quarantined(self, device: str) -> bool:
        record = self.devices.get(device)
        return bool(record and record.quarantined)

    def reinstate(self, device: str) -> None:
        """Clear quarantine after repair (operator action)."""
        record = self.devices.get(device)
        if record:
            record.quarantined = False
            record.consecutive_failures = 0

    def report(self) -> str:
        lines = [f"{'device':<20}{'checks':>8}{'failures':>10}{'state':>14}"]
        for name in sorted(self.devices):
            record = self.devices[name]
            state = "QUARANTINED" if record.quarantined else "healthy"
            lines.append(f"{name:<20}{record.checks:>8}{record.failures:>10}"
                         f"{state:>14}")
        return "\n".join(lines)


@dataclass
class AuditPolicy:
    """How often a device submits samples for auditing.

    Auditing every inference would double compute; the paper says
    *periodically*.  ``every_n`` trades detection latency against audit
    cost; the arc/motor benches sweep it.
    """

    every_n: int = 10

    def __post_init__(self) -> None:
        if self.every_n < 1:
            raise ValueError("every_n must be >= 1")

    def should_audit(self, inference_index: int) -> bool:
        return inference_index % self.every_n == 0


class AuditedDevice:
    """A device-side wrapper that runs a model and periodically self-reports.

    Wraps a (possibly faulty) executor; per :class:`AuditPolicy`, forwards
    (input, output) pairs to the robustness service.  Returns both the
    model output and whether the service rejected it.
    """

    def __init__(self, name: str, executor: Executor,
                 service: RobustnessService,
                 policy: AuditPolicy = AuditPolicy()) -> None:
        self.name = name
        self.executor = executor
        self.service = service
        self.policy = policy
        self.inferences = 0
        self.audits = 0

    def infer(self, feeds: Mapping[str, np.ndarray]
              ) -> Tuple[Dict[str, np.ndarray], Optional[CheckResult]]:
        outputs = self.executor.run(feeds)
        check: Optional[CheckResult] = None
        if self.policy.should_audit(self.inferences):
            self.audits += 1
            check = self.service.check(self.name, feeds, outputs)
        self.inferences += 1
        return outputs, check
