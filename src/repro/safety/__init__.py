"""Safety substrate: input monitors, robustness service, fault injection."""

from .monitors import (
    Action,
    Anomaly,
    Monitor,
    MonitorPipeline,
    PipelineStats,
    Severity,
    Verdict,
)
from .input_quality import (
    BlurMonitor,
    DeadPixelMonitor,
    DriftMonitor,
    DropoutMonitor,
    ExposureMonitor,
    NoiseMonitor,
    OutlierMonitor,
    RangeMonitor,
    StuckSensorMonitor,
    median_filter3,
)
from .robustness import (
    AuditedDevice,
    AuditPolicy,
    CheckResult,
    DeviceRecord,
    RobustnessService,
)
from .fault_injection import (
    ActivationFaultHook,
    CampaignResult,
    InjectedFault,
    flip_weight_bits,
    run_detection_campaign,
)
from .hybrid import (
    HybridSystem,
    KernelDecision,
    KernelStats,
    StepResult,
)

__all__ = [
    "Action", "Anomaly", "Monitor", "MonitorPipeline", "PipelineStats",
    "Severity", "Verdict",
    "BlurMonitor", "DeadPixelMonitor", "DriftMonitor", "DropoutMonitor",
    "ExposureMonitor", "NoiseMonitor", "OutlierMonitor", "RangeMonitor",
    "StuckSensorMonitor", "median_filter3",
    "AuditedDevice", "AuditPolicy", "CheckResult", "DeviceRecord",
    "RobustnessService",
    "ActivationFaultHook", "CampaignResult", "InjectedFault",
    "flip_weight_bits", "run_detection_campaign",
    "HybridSystem", "KernelDecision", "KernelStats", "StepResult",
]
