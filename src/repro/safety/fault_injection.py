"""Fault injection: the run-time faults the robustness service must catch.

Models the systematic faults the paper worries about (Sec. IV-B: "these
faults may have been triggered or injected during run-time (e.g., hardware
faults, attacks)"): bit flips in stored weights (SEUs, rowhammer-style
attacks) and stuck activations (datapath faults).  Injectors work either on
a graph copy (persistent weight corruption) or as executor hooks (transient
activation faults), so campaigns can measure detection coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph, Node


@dataclass(frozen=True)
class InjectedFault:
    """Record of one injected fault."""

    kind: str
    target: str
    detail: str


def flip_weight_bits(graph: Graph, num_flips: int = 1,
                     bit_range: Tuple[int, int] = (20, 31),
                     seed: int = 0) -> Tuple[Graph, List[InjectedFault]]:
    """Return a graph copy with random single-bit flips in FP32 weights.

    ``bit_range`` selects which IEEE-754 bits may flip; the default hits
    the exponent/sign region where flips produce large, detectable errors
    (low mantissa bits are usually benign).
    """
    rng = np.random.default_rng(seed)
    g = graph.copy()
    candidates = [name for name, value in g.initializers.items()
                  if value.dtype == np.float32 and value.size > 0]
    if not candidates:
        raise ValueError("graph has no FP32 initializers to corrupt")
    faults: List[InjectedFault] = []
    for _ in range(num_flips):
        name = candidates[rng.integers(len(candidates))]
        tensor = g.initializers[name]
        flat = tensor.view(np.uint32).reshape(-1)
        index = int(rng.integers(flat.size))
        bit = int(rng.integers(bit_range[0], bit_range[1] + 1))
        flat[index] ^= np.uint32(1 << bit)
        faults.append(InjectedFault(
            "weight_bitflip", name, f"element {index}, bit {bit}"))
    return g, faults


class ActivationFaultHook:
    """Executor hook injecting stuck-at faults into one node's output.

    Attach with ``executor.add_hook(hook)``; every pass through the target
    node forces a fraction of its output elements to ``stuck_value``.
    """

    def __init__(self, node_name: str, fraction: float = 0.01,
                 stuck_value: float = 0.0, seed: int = 0) -> None:
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        self.node_name = node_name
        self.fraction = fraction
        self.stuck_value = stuck_value
        self.rng = np.random.default_rng(seed)
        self.activations = 0

    def __call__(self, node: Node, outputs: List[np.ndarray]
                 ) -> Optional[List[np.ndarray]]:
        if node.name != self.node_name:
            return None
        self.activations += 1
        corrupted = []
        for out in outputs:
            flat = out.reshape(-1).copy()
            count = max(1, int(flat.size * self.fraction))
            indices = self.rng.choice(flat.size, size=count, replace=False)
            flat[indices] = self.stuck_value
            corrupted.append(flat.reshape(out.shape))
        return corrupted


@dataclass
class CampaignResult:
    """Outcome of a fault-injection campaign against a detection mechanism."""

    trials: int
    faults_detected: int
    faults_missed: int
    clean_false_alarms: int
    clean_trials: int

    @property
    def detection_rate(self) -> float:
        injected = self.faults_detected + self.faults_missed
        return self.faults_detected / injected if injected else 0.0

    @property
    def false_alarm_rate(self) -> float:
        return self.clean_false_alarms / self.clean_trials \
            if self.clean_trials else 0.0


def run_detection_campaign(
    reference: Graph,
    service,                       # RobustnessService
    feeds_list: Sequence[Dict[str, np.ndarray]],
    num_fault_trials: int = 10,
    bits: Tuple[int, int] = (24, 30),
    seed: int = 0,
) -> CampaignResult:
    """Measure the robustness service's detection coverage.

    For each trial a fresh corrupted copy of the model plays the "device";
    clean trials (uncorrupted device) measure the false-alarm rate.
    """
    from ..runtime.executor import Executor

    rng = np.random.default_rng(seed)
    detected = 0
    missed = 0
    false_alarms = 0
    clean_trials = 0
    for trial in range(num_fault_trials):
        corrupted, _ = flip_weight_bits(reference, num_flips=1, bit_range=bits,
                                        seed=int(rng.integers(1 << 31)))
        device = Executor(corrupted)
        feeds = feeds_list[trial % len(feeds_list)]
        outputs = device.run(feeds)
        result = service.check(f"faulty-{trial}", feeds, outputs)
        if result.consistent:
            missed += 1
        else:
            detected += 1
    for trial in range(num_fault_trials):
        device = Executor(reference)
        feeds = feeds_list[trial % len(feeds_list)]
        outputs = device.run(feeds)
        result = service.check(f"clean-{trial}", feeds, outputs)
        clean_trials += 1
        if not result.consistent:
            false_alarms += 1
    return CampaignResult(
        trials=num_fault_trials * 2,
        faults_detected=detected,
        faults_missed=missed,
        clean_false_alarms=false_alarms,
        clean_trials=clean_trials,
    )
