"""Synthetic keyword-audio dataset for the smart-mirror speech pipeline.

Keywords are short tone sequences with distinct frequency trajectories —
a controlled stand-in for spoken commands (DESIGN.md substitution).  The
feature representation is a log magnitude spectrum, matching what a tiny
keyword-spotting network consumes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .base import LabeledDataset

KEYWORD_CLASSES = ("mirror", "lights", "weather", "music", "silence")

# Frequency trajectory (Hz) per keyword: three sequential tone segments.
# Each keyword occupies a disjoint frequency band so the magnitude-spectrum
# features are separable (a reversed tone order alone would alias, since
# |FFT| is order-invariant).
_KEYWORD_TONES = {
    "mirror": (440.0, 660.0, 880.0),
    "lights": (1320.0, 1540.0, 1760.0),
    "weather": (2000.0, 2250.0, 2500.0),
    "music": (2900.0, 3200.0, 3500.0),
    "silence": (0.0, 0.0, 0.0),
}


def keyword_waveform(keyword: str, samples: int = 1024, fs: float = 16_000.0,
                     noise: float = 0.05,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """One utterance of ``keyword`` as a mono waveform."""
    if keyword not in _KEYWORD_TONES:
        raise ValueError(f"unknown keyword {keyword!r}")
    rng = rng or np.random.default_rng()
    tones = _KEYWORD_TONES[keyword]
    segment = samples // len(tones)
    wave = np.zeros(samples, dtype=np.float64)
    warp = 1.0 + rng.normal(0.0, 0.03)       # speaker pitch variation
    for i, tone in enumerate(tones):
        if tone <= 0:
            continue
        start = i * segment
        t = np.arange(segment) / fs
        envelope = np.hanning(segment)
        wave[start:start + segment] = envelope * np.sin(
            2 * np.pi * tone * warp * t + rng.uniform(0, 2 * np.pi))
    wave += rng.normal(0.0, noise, samples)
    return wave.astype(np.float32)


def audio_features(waveform: np.ndarray, bins: int = 64) -> np.ndarray:
    """Log magnitude spectrum folded to ``bins`` values."""
    spectrum = np.abs(np.fft.rfft(waveform - np.mean(waveform)))[1:]
    usable = (len(spectrum) // bins) * bins
    folded = spectrum[:usable].reshape(bins, -1).mean(axis=1)
    return np.log1p(folded).astype(np.float32)


def make_keyword_dataset(samples_per_class: int = 80, samples: int = 1024,
                         noise: float = 0.05, bins: int = 64,
                         seed: int = 0) -> LabeledDataset:
    """Keyword-spotting dataset of spectral features."""
    rng = np.random.default_rng(seed)
    features: List[np.ndarray] = []
    labels: List[int] = []
    for label, keyword in enumerate(KEYWORD_CLASSES):
        for _ in range(samples_per_class):
            wave = keyword_waveform(keyword, samples=samples, noise=noise,
                                    rng=rng)
            features.append(audio_features(wave, bins=bins))
            labels.append(label)
    return LabeledDataset("keywords", np.stack(features), np.array(labels),
                          KEYWORD_CLASSES,
                          {"samples": samples, "noise": noise, "bins": bins})
