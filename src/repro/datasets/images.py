"""Synthetic image datasets: classification shapes and detection scenes.

Stand-ins for the camera data of the smart-mirror and PAEB use cases
(DESIGN.md substitution table).  Classes are geometric patterns with
controlled noise so small networks can genuinely separate them, making
accuracy deltas from quantization/pruning measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import LabeledDataset

SHAPE_CLASSES = ("circle", "square", "cross", "stripes")


def _draw_circle(canvas: np.ndarray, cx: float, cy: float, r: float) -> None:
    size = canvas.shape[-1]
    yy, xx = np.mgrid[0:size, 0:size]
    ring = np.abs(np.hypot(xx - cx, yy - cy) - r) < 1.5
    canvas[..., ring] = 1.0


def _draw_square(canvas: np.ndarray, cx: float, cy: float, r: float) -> None:
    size = canvas.shape[-1]
    x0, x1 = int(max(0, cx - r)), int(min(size - 1, cx + r))
    y0, y1 = int(max(0, cy - r)), int(min(size - 1, cy + r))
    canvas[..., y0:y1 + 1, x0] = 1.0
    canvas[..., y0:y1 + 1, x1] = 1.0
    canvas[..., y0, x0:x1 + 1] = 1.0
    canvas[..., y1, x0:x1 + 1] = 1.0


def _draw_cross(canvas: np.ndarray, cx: float, cy: float, r: float) -> None:
    size = canvas.shape[-1]
    x0, x1 = int(max(0, cx - r)), int(min(size - 1, cx + r))
    y0, y1 = int(max(0, cy - r)), int(min(size - 1, cy + r))
    canvas[..., int(cy), x0:x1 + 1] = 1.0
    canvas[..., y0:y1 + 1, int(cx)] = 1.0


def _draw_stripes(canvas: np.ndarray, phase: int, period: int = 4) -> None:
    size = canvas.shape[-1]
    for row in range(size):
        if (row + phase) % period < period // 2:
            canvas[..., row, :] = np.maximum(canvas[..., row, :], 0.8)


def make_shapes_dataset(num_samples: int = 400, image_size: int = 32,
                        channels: int = 3, noise: float = 0.1,
                        seed: int = 0) -> LabeledDataset:
    """Classification dataset over :data:`SHAPE_CLASSES` patterns."""
    rng = np.random.default_rng(seed)
    features = np.zeros((num_samples, channels, image_size, image_size),
                        dtype=np.float32)
    labels = rng.integers(0, len(SHAPE_CLASSES), size=num_samples)
    for i in range(num_samples):
        canvas = features[i]
        cx, cy = rng.uniform(image_size * 0.3, image_size * 0.7, size=2)
        r = rng.uniform(image_size * 0.15, image_size * 0.3)
        label = int(labels[i])
        if label == 0:
            _draw_circle(canvas, cx, cy, r)
        elif label == 1:
            _draw_square(canvas, cx, cy, r)
        elif label == 2:
            _draw_cross(canvas, cx, cy, r)
        else:
            _draw_stripes(canvas, phase=int(rng.integers(4)))
        canvas += rng.normal(0, noise, canvas.shape).astype(np.float32)
    np.clip(features, 0.0, 1.5, out=features)
    return LabeledDataset("shapes", features, labels, SHAPE_CLASSES,
                          {"image_size": image_size, "noise": noise})


@dataclass(frozen=True)
class Box:
    """Axis-aligned detection box (pixels) with a class label."""

    x0: int
    y0: int
    x1: int
    y1: int
    label: int

    @property
    def area(self) -> int:
        return max(0, self.x1 - self.x0) * max(0, self.y1 - self.y0)

    def iou(self, other: "Box") -> float:
        ix0, iy0 = max(self.x0, other.x0), max(self.y0, other.y0)
        ix1, iy1 = min(self.x1, other.x1), min(self.y1, other.y1)
        inter = max(0, ix1 - ix0) * max(0, iy1 - iy0)
        union = self.area + other.area - inter
        return inter / union if union else 0.0


@dataclass
class DetectionScene:
    """One synthetic scene: image plus ground-truth boxes."""

    image: np.ndarray             # (C, H, W) float32
    boxes: List[Box]


def make_detection_scenes(num_scenes: int = 50, image_size: int = 96,
                          max_objects: int = 3, num_classes: int = 4,
                          noise: float = 0.05,
                          seed: int = 0) -> List[DetectionScene]:
    """Scenes with bright class-colored rectangles on noisy background."""
    rng = np.random.default_rng(seed)
    scenes: List[DetectionScene] = []
    for _ in range(num_scenes):
        image = rng.normal(0.1, noise,
                           (3, image_size, image_size)).astype(np.float32)
        boxes: List[Box] = []
        for _ in range(int(rng.integers(1, max_objects + 1))):
            w = int(rng.integers(image_size // 8, image_size // 3))
            h = int(rng.integers(image_size // 8, image_size // 3))
            x0 = int(rng.integers(0, image_size - w))
            y0 = int(rng.integers(0, image_size - h))
            label = int(rng.integers(num_classes))
            intensity = 0.6 + 0.4 * rng.random()
            channel = label % 3
            image[channel, y0:y0 + h, x0:x0 + w] = intensity
            boxes.append(Box(x0, y0, x0 + w, y0 + h, label))
        scenes.append(DetectionScene(np.clip(image, 0, 1.5), boxes))
    return scenes


def add_image_noise(image: np.ndarray, sigma: float,
                    seed: int = 0) -> np.ndarray:
    """Additive Gaussian noise (the corruption the NoiseMonitor detects)."""
    rng = np.random.default_rng(seed)
    return (image + rng.normal(0, sigma, image.shape)).astype(np.float32)


def add_dead_pixels(image: np.ndarray, count: int,
                    seed: int = 0) -> np.ndarray:
    """Stuck-at-white pixel defects."""
    rng = np.random.default_rng(seed)
    corrupted = image.copy()
    h, w = corrupted.shape[-2:]
    ys = rng.integers(0, h, size=count)
    xs = rng.integers(0, w, size=count)
    corrupted[..., ys, xs] = 1.5
    return corrupted
