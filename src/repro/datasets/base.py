"""Dataset containers for the deployment pipeline.

Step 1 of the paper's deployment flow (Sec. III): "Preparation and analysis
of the dataset, preparation of data pre-processing and output
post-processing routines."  A :class:`LabeledDataset` is the unit the
pipeline consumes: feature arrays, integer labels, class names, and
deterministic splitting/batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class LabeledDataset:
    """Features plus integer labels."""

    name: str
    features: np.ndarray          # (N, ...) float32
    labels: np.ndarray            # (N,) int64
    class_names: Tuple[str, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.features) != len(self.labels):
            raise ValueError(
                f"{self.name}: {len(self.features)} features vs "
                f"{len(self.labels)} labels"
            )
        if self.labels.size and (self.labels.min() < 0
                                 or self.labels.max() >= len(self.class_names)):
            raise ValueError(f"{self.name}: label out of range")

    def __len__(self) -> int:
        return len(self.features)

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        return tuple(self.features.shape[1:])

    def split(self, train_fraction: float = 0.8,
              seed: int = 0) -> Tuple["LabeledDataset", "LabeledDataset"]:
        """Deterministic shuffled train/test split."""
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(len(self) * train_fraction)
        train_idx, test_idx = order[:cut], order[cut:]
        make = lambda idx, suffix: LabeledDataset(  # noqa: E731
            f"{self.name}-{suffix}", self.features[idx], self.labels[idx],
            self.class_names, dict(self.metadata))
        return make(train_idx, "train"), make(test_idx, "test")

    def batches(self, batch_size: int, drop_last: bool = False
                ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (features, labels) batches in order."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        for start in range(0, len(self), batch_size):
            x = self.features[start:start + batch_size]
            y = self.labels[start:start + batch_size]
            if drop_last and len(x) < batch_size:
                return
            yield x, y

    def subset(self, indices: Sequence[int]) -> "LabeledDataset":
        idx = np.asarray(indices)
        return LabeledDataset(f"{self.name}-subset", self.features[idx],
                              self.labels[idx], self.class_names,
                              dict(self.metadata))

    def class_balance(self) -> Dict[str, int]:
        counts = np.bincount(self.labels, minlength=self.num_classes)
        return {name: int(count)
                for name, count in zip(self.class_names, counts)}
