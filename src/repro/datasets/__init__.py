"""Synthetic dataset substrate for the use-case applications."""

from .base import LabeledDataset
from .images import (
    Box,
    DetectionScene,
    SHAPE_CLASSES,
    add_dead_pixels,
    add_image_noise,
    make_detection_scenes,
    make_shapes_dataset,
)
from .timeseries import (
    ARC_CLASSES,
    MOTOR_CLASSES,
    arc_features,
    dc_current_window,
    inject_dropouts,
    inject_outliers,
    make_arc_dataset,
    make_motor_dataset,
    motor_vibration_window,
    vibration_features,
)

__all__ = [
    "LabeledDataset",
    "Box", "DetectionScene", "SHAPE_CLASSES", "add_dead_pixels",
    "add_image_noise", "make_detection_scenes", "make_shapes_dataset",
    "ARC_CLASSES", "MOTOR_CLASSES", "arc_features", "dc_current_window",
    "inject_dropouts", "inject_outliers", "make_arc_dataset",
    "make_motor_dataset", "motor_vibration_window", "vibration_features",
]
