"""Synthetic sensor signals for the industrial use cases.

Physically-motivated generators standing in for real plant data
(DESIGN.md): motor vibration with characteristic fault signatures and DC
current waveforms with arc events.  Parameters follow the textbook
signatures — bearing faults excite a high-frequency envelope at the defect
frequency, imbalance raises the 1x rotation harmonic, series arcs add
broadband chaotic noise and a current step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import LabeledDataset

MOTOR_CLASSES = ("healthy", "bearing_fault", "imbalance", "overheat")
ARC_CLASSES = ("normal", "arc")


def motor_vibration_window(
    state: str, window: int = 256, fs: float = 10_000.0,
    rotation_hz: float = 29.5, noise: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """One vibration window of a motor in ``state``.

    healthy        1x rotation tone plus weak harmonics.
    bearing_fault  adds bursts at the outer-race defect frequency (~3.6x).
    imbalance      amplified 1x component with slight phase wobble.
    overheat       added low-frequency thermal drift and broadband noise
                   (bearing clearances change with temperature).
    """
    if state not in MOTOR_CLASSES:
        raise ValueError(f"unknown motor state {state!r}")
    rng = rng or np.random.default_rng()
    t = np.arange(window) / fs
    phase = rng.uniform(0, 2 * np.pi)
    base = (np.sin(2 * np.pi * rotation_hz * t + phase)
            + 0.3 * np.sin(2 * np.pi * 2 * rotation_hz * t + phase)
            + 0.15 * np.sin(2 * np.pi * 3 * rotation_hz * t + phase))
    signal = 0.5 * base
    if state == "bearing_fault":
        defect_hz = 3.6 * rotation_hz
        burst_period = max(1, int(fs / defect_hz))
        carrier = np.sin(2 * np.pi * 2_400.0 * t)
        envelope = np.zeros(window)
        for start in range(int(rng.integers(burst_period)), window,
                           burst_period):
            length = min(window - start, burst_period // 4)
            envelope[start:start + length] = np.exp(
                -np.arange(length) / max(1.0, length / 3))
        signal = signal + 1.2 * envelope * carrier
    elif state == "imbalance":
        signal = signal + 1.5 * np.sin(2 * np.pi * rotation_hz * t + phase
                                       + 0.1 * np.sin(2 * np.pi * 0.5 * t))
    elif state == "overheat":
        drift = 0.8 * np.sin(2 * np.pi * 1.5 * t + rng.uniform(0, 2 * np.pi))
        signal = signal + drift + rng.normal(0, 3 * noise, window)
    return (signal + rng.normal(0, noise, window)).astype(np.float32)


def vibration_features(signal: np.ndarray, bands: int = 8) -> np.ndarray:
    """Fold |FFT| magnitudes into ``bands`` log-energy bands.

    The (bands, window/ (2*bands)) layout matches ``motor_net``'s input
    after adding the channel axis.
    """
    spectrum = np.abs(np.fft.rfft(signal))[1:]          # drop DC
    usable = (len(spectrum) // bands) * bands
    folded = spectrum[:usable].reshape(bands, -1)
    return np.log1p(folded).astype(np.float32)


def make_motor_dataset(samples_per_class: int = 100, window: int = 256,
                       noise: float = 0.05, seed: int = 0) -> LabeledDataset:
    """Motor-condition dataset of folded spectral features.

    Feature shape: (1, 8, window//16) — rfft of a length-``window`` signal
    has window/2 usable bins, folded into 8 bands.
    """
    rng = np.random.default_rng(seed)
    features = []
    labels = []
    for label, state in enumerate(MOTOR_CLASSES):
        for _ in range(samples_per_class):
            signal = motor_vibration_window(state, window=window,
                                            noise=noise, rng=rng)
            features.append(vibration_features(signal)[None])
            labels.append(label)
    return LabeledDataset("motor-conditions", np.stack(features),
                          np.array(labels), MOTOR_CLASSES,
                          {"window": window, "noise": noise})


def dc_current_window(
    arc: bool, window: int = 128, fs: float = 100_000.0,
    load_current: float = 8.0, noise: float = 0.02,
    arc_start: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """One DC-current window, optionally containing a series-arc event.

    Normal operation: steady current with converter ripple and sensor
    noise.  An arc adds (from ``arc_start`` on) a current drop, broadband
    chaotic oscillation, and shot-noise spikes — the signature arc-fault
    detectors key on.
    """
    rng = rng or np.random.default_rng()
    t = np.arange(window) / fs
    ripple = 0.05 * load_current * np.sin(2 * np.pi * 20_000.0 * t
                                          + rng.uniform(0, 2 * np.pi))
    signal = load_current + ripple + rng.normal(0, noise * load_current,
                                                window)
    if arc:
        start = arc_start if arc_start is not None \
            else int(rng.integers(0, window // 2))
        n = window - start
        chaos = np.cumsum(rng.normal(0, 1.0, n))
        chaos = chaos - np.linspace(chaos[0], chaos[-1], n)  # detrended walk
        burst = 0.12 * load_current * chaos / max(1.0, np.abs(chaos).max())
        spikes = (rng.random(n) < 0.08) * rng.normal(
            0, 0.25 * load_current, n)
        signal[start:] += burst + spikes - 0.08 * load_current
    return signal.astype(np.float32)


def arc_features(signal: np.ndarray) -> np.ndarray:
    """Spectral features for the arc detector: log magnitude spectrum.

    Arc faults radiate broadband high-frequency energy, so the log |FFT|
    of the current window (DC removed) separates arc from normal ripple.
    Output length is ``len(signal) // 2``.
    """
    spectrum = np.abs(np.fft.rfft(signal - np.mean(signal)))[1:]
    return np.log1p(spectrum[:len(signal) // 2]).astype(np.float32)


def make_arc_dataset(samples_per_class: int = 200, window: int = 128,
                     noise: float = 0.02, seed: int = 0) -> LabeledDataset:
    """Balanced arc/no-arc dataset of normalized current windows."""
    rng = np.random.default_rng(seed)
    features = []
    labels = []
    for label, is_arc in enumerate((False, True)):
        for _ in range(samples_per_class):
            signal = dc_current_window(is_arc, window=window, noise=noise,
                                       rng=rng)
            features.append(arc_features(signal))
            labels.append(label)
    return LabeledDataset("dc-arcs", np.stack(features), np.array(labels),
                          ARC_CLASSES, {"window": window, "noise": noise})


def inject_outliers(signal: np.ndarray, count: int, magnitude: float = 10.0,
                    seed: int = 0) -> np.ndarray:
    """Corrupt a signal with large isolated spikes (sensor glitches)."""
    rng = np.random.default_rng(seed)
    corrupted = signal.copy()
    indices = rng.choice(len(signal), size=count, replace=False)
    corrupted[indices] += magnitude * rng.choice((-1.0, 1.0), size=count)
    return corrupted


def inject_dropouts(signal: np.ndarray, start: int, length: int) -> np.ndarray:
    """Replace a run of samples with NaN (transmission dropout)."""
    corrupted = signal.copy()
    corrupted[start:start + length] = np.nan
    return corrupted
