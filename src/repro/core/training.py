"""Readout training: closed-form fitting of a model's final classifier.

Step 2 of the paper's deployment flow is "model training (usually transfer
learning)".  Our equivalent of transfer learning on fixed backbones: keep
the (random, frozen) feature extractor and fit the final dense layer by
ridge regression on one-hot targets — the classic random-features /
extreme-learning-machine construction.  This yields genuinely trained
models whose accuracy responds to quantization, pruning and faults, which
is exactly what the toolchain experiments need to measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..datasets.base import LabeledDataset
from ..ir.graph import Graph, Node
from ..runtime.executor import Executor


class TrainingError(RuntimeError):
    """Raised when the graph has no trainable readout."""


def _find_readout(graph: Graph) -> Node:
    """The last dense node feeding (possibly via softmax) a graph output."""
    dense_nodes = [n for n in graph.nodes
                   if n.op_type in ("dense", "fused_dense")]
    if not dense_nodes:
        raise TrainingError(f"graph {graph.name!r} has no dense readout layer")
    return dense_nodes[-1]


@dataclass
class TrainResult:
    """Outcome of readout training."""

    graph: Graph
    train_accuracy: float
    features_dim: int
    num_classes: int


def _collect_features(graph: Graph, dataset: LabeledDataset,
                      feature_tensor: str, batch: int) -> np.ndarray:
    """Run the frozen backbone over the dataset, collecting readout inputs."""
    executor = Executor(graph, keep_intermediates=True)
    chunks = []
    input_name = graph.inputs[0].name
    for x, _ in dataset.batches(batch):
        if len(x) < batch:  # pad the final partial batch
            pad = np.repeat(x[-1:], batch - len(x), axis=0)
            x_fed = np.concatenate([x, pad], axis=0)
        else:
            x_fed = x
        env = executor.run({input_name: x_fed})
        chunks.append(env[feature_tensor][:len(x)])
    return np.concatenate(chunks, axis=0)


def train_readout(graph: Graph, dataset: LabeledDataset,
                  ridge: float = 1e-2) -> TrainResult:
    """Fit the final dense layer of ``graph`` on ``dataset`` (in place on a copy).

    The graph's input batch dimension is used as the forward batch size.
    Returns a new graph with trained readout weights plus the training
    accuracy.
    """
    g = graph.copy()
    readout = _find_readout(g)
    feature_tensor = readout.inputs[0]
    weight_name = readout.inputs[1]
    weight = g.initializers[weight_name]
    num_classes, feat_dim = weight.shape
    if num_classes != dataset.num_classes:
        raise TrainingError(
            f"readout has {num_classes} outputs but dataset has "
            f"{dataset.num_classes} classes"
        )
    batch = g.inputs[0].shape[0]
    features = _collect_features(g, dataset, feature_tensor, batch)
    if features.ndim != 2:
        features = features.reshape(len(features), -1)
    if features.shape[1] != feat_dim:
        raise TrainingError(
            f"feature width {features.shape[1]} != readout input {feat_dim}"
        )

    targets = -np.ones((len(dataset), num_classes), dtype=np.float64)
    targets[np.arange(len(dataset)), dataset.labels] = 1.0

    x = features.astype(np.float64)
    gram = x.T @ x + ridge * len(dataset) * np.eye(feat_dim)
    solution = np.linalg.solve(gram, x.T @ targets)   # (feat, classes)
    g.initializers[weight_name] = solution.T.astype(np.float32)
    if len(readout.inputs) > 2:
        g.initializers[readout.inputs[2]] = np.zeros(num_classes,
                                                     dtype=np.float32)

    scores = x @ solution
    train_accuracy = float(np.mean(scores.argmax(axis=1) == dataset.labels))
    return TrainResult(g, train_accuracy, feat_dim, num_classes)


def evaluate_accuracy(graph: Graph, dataset: LabeledDataset) -> float:
    """Top-1 accuracy of ``graph`` on ``dataset`` (batch-padded forward)."""
    executor = Executor(graph)
    input_name = graph.inputs[0].name
    output_name = graph.output_names[0]
    batch = graph.inputs[0].shape[0]
    correct = 0
    for x, y in dataset.batches(batch):
        if len(x) < batch:
            pad = np.repeat(x[-1:], batch - len(x), axis=0)
            x_fed = np.concatenate([x, pad], axis=0)
        else:
            x_fed = x
        out = executor.run({input_name: x_fed})[output_name][:len(x)]
        correct += int(np.sum(out.argmax(axis=-1) == y))
    return correct / len(dataset)


def accuracy_quality_fn(dataset: LabeledDataset):
    """Quality function adapter for the hardware-aware optimizer search."""
    def quality(graph: Graph) -> float:
        from ..ir.tensor import DType

        eval_graph = graph
        # FP16 graphs need FP16 feeds; evaluate on a float32 view instead
        # by casting the dataset lazily inside evaluate (executor casts).
        return evaluate_accuracy(eval_graph, dataset)
    return quality
