"""Quality reports: confusion matrices and detection precision/recall.

Kenning "can automatically benchmark the processing quality of a given
neural network … and generate a confusion matrix for classification models
and recall/precision graphs for detection algorithms" (paper Sec. III).
This module computes those artifacts and renders them as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.images import Box


@dataclass
class ConfusionMatrix:
    """Confusion matrix with derived per-class metrics."""

    matrix: np.ndarray            # (classes, classes): rows = true
    class_names: Tuple[str, ...]

    @classmethod
    def from_predictions(cls, y_true: Sequence[int], y_pred: Sequence[int],
                         class_names: Sequence[str]) -> "ConfusionMatrix":
        n = len(class_names)
        matrix = np.zeros((n, n), dtype=np.int64)
        for t, p in zip(y_true, y_pred):
            matrix[int(t), int(p)] += 1
        return cls(matrix, tuple(class_names))

    @property
    def total(self) -> int:
        return int(self.matrix.sum())

    @property
    def accuracy(self) -> float:
        return float(np.trace(self.matrix)) / self.total if self.total else 0.0

    def precision(self, cls_index: int) -> float:
        predicted = self.matrix[:, cls_index].sum()
        return float(self.matrix[cls_index, cls_index]) / predicted \
            if predicted else 0.0

    def recall(self, cls_index: int) -> float:
        actual = self.matrix[cls_index].sum()
        return float(self.matrix[cls_index, cls_index]) / actual \
            if actual else 0.0

    def f1(self, cls_index: int) -> float:
        p, r = self.precision(cls_index), self.recall(cls_index)
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def false_negative_rate(self, cls_index: int) -> float:
        """FNR of one class — the arc-detection use case's key metric."""
        actual = self.matrix[cls_index].sum()
        if not actual:
            return 0.0
        return 1.0 - self.recall(cls_index)

    def render(self) -> str:
        width = max(10, max(len(n) for n in self.class_names) + 2)
        header = " " * width + "".join(f"{n:>{width}}" for n in self.class_names)
        lines = [f"confusion matrix (rows = true), accuracy {self.accuracy:.3f}",
                 header]
        for i, name in enumerate(self.class_names):
            row = "".join(f"{int(v):>{width}}" for v in self.matrix[i])
            lines.append(f"{name:>{width}}{row}")
        lines.append("per-class precision / recall / F1:")
        for i, name in enumerate(self.class_names):
            lines.append(f"  {name:<16} {self.precision(i):.3f} / "
                         f"{self.recall(i):.3f} / {self.f1(i):.3f}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Detection:
    """One predicted box with confidence."""

    box: Box
    score: float


@dataclass
class PrecisionRecallPoint:
    threshold: float
    precision: float
    recall: float


@dataclass
class DetectionReport:
    """Precision/recall over score thresholds, plus average precision."""

    points: List[PrecisionRecallPoint]
    average_precision: float

    def render(self) -> str:
        lines = [f"detection report: AP = {self.average_precision:.3f}",
                 f"{'threshold':>10}{'precision':>11}{'recall':>9}"]
        for point in self.points:
            lines.append(f"{point.threshold:>10.2f}{point.precision:>11.3f}"
                         f"{point.recall:>9.3f}")
        return "\n".join(lines)


def match_detections(predictions: Sequence[Detection],
                     ground_truth: Sequence[Box],
                     iou_threshold: float = 0.5) -> List[Tuple[Detection, bool]]:
    """Greedy highest-score-first matching of predictions to ground truth."""
    matched_gt: set = set()
    results: List[Tuple[Detection, bool]] = []
    for det in sorted(predictions, key=lambda d: d.score, reverse=True):
        best_iou = 0.0
        best_idx = -1
        for idx, gt in enumerate(ground_truth):
            if idx in matched_gt or gt.label != det.box.label:
                continue
            iou = det.box.iou(gt)
            if iou > best_iou:
                best_iou = iou
                best_idx = idx
        if best_iou >= iou_threshold:
            matched_gt.add(best_idx)
            results.append((det, True))
        else:
            results.append((det, False))
    return results


def detection_report(
    all_predictions: Sequence[Sequence[Detection]],
    all_ground_truth: Sequence[Sequence[Box]],
    iou_threshold: float = 0.5,
    thresholds: Sequence[float] = tuple(np.linspace(0.05, 0.95, 10)),
) -> DetectionReport:
    """Precision/recall sweep over confidence thresholds (Kenning-style)."""
    if len(all_predictions) != len(all_ground_truth):
        raise ValueError("prediction/ground-truth scene counts differ")
    flat: List[Tuple[float, bool]] = []
    total_gt = sum(len(gt) for gt in all_ground_truth)
    for preds, gts in zip(all_predictions, all_ground_truth):
        for det, is_tp in match_detections(preds, gts, iou_threshold):
            flat.append((det.score, is_tp))

    points: List[PrecisionRecallPoint] = []
    for threshold in thresholds:
        kept = [(s, tp) for s, tp in flat if s >= threshold]
        tp = sum(1 for _, is_tp in kept if is_tp)
        fp = len(kept) - tp
        precision = tp / (tp + fp) if kept else 1.0
        recall = tp / total_gt if total_gt else 0.0
        points.append(PrecisionRecallPoint(float(threshold), precision, recall))

    # AP via the trapezoid over the (recall, precision) curve, sorted by recall.
    curve = sorted(((p.recall, p.precision) for p in points))
    ap = 0.0
    prev_r, prev_p = 0.0, curve[0][1] if curve else 1.0
    for r, p in curve:
        ap += (r - prev_r) * (p + prev_p) / 2
        prev_r, prev_p = r, p
    return DetectionReport(points, ap)
