"""YOLO head decoding and non-maximum suppression.

Completes the detection half of the Kenning-style reporting (paper
Sec. III: Kenning can "generate … recall/precision graphs for detection
algorithms"): raw detector head tensors are decoded into scored boxes,
filtered by NMS, and fed to :func:`repro.core.reports.detection_report`.

The decoding follows the YOLO convention the zoo's detectors emit: a head
of shape ``(N, A*(5+C), H, W)`` where each anchor cell carries
``(tx, ty, tw, th, objectness, class logits...)``; box centres are
``sigmoid(tx/ty)`` offsets within the cell, sizes are
``anchor * exp(tw/th)``, all scaled by the stride.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.images import Box
from .reports import Detection

# Default anchors (pixels) for the single-head tiny detector at stride 32.
TINY_ANCHORS: Tuple[Tuple[float, float], ...] = ((16, 16), (32, 32), (64, 48))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def decode_yolo_head(
    head: np.ndarray,
    anchors: Sequence[Tuple[float, float]] = TINY_ANCHORS,
    stride: int = 32,
    num_classes: int = 4,
    conf_threshold: float = 0.5,
    image_size: Optional[int] = None,
) -> List[Detection]:
    """Decode one image's head tensor ``(A*(5+C), H, W)`` into detections.

    Score = objectness * best-class probability; boxes are clipped to the
    image when ``image_size`` is given.
    """
    num_anchors = len(anchors)
    channels, grid_h, grid_w = head.shape
    expected = num_anchors * (5 + num_classes)
    if channels != expected:
        raise ValueError(
            f"head has {channels} channels, expected "
            f"{num_anchors} anchors * (5 + {num_classes} classes) = {expected}"
        )
    lanes = head.reshape(num_anchors, 5 + num_classes, grid_h, grid_w)
    detections: List[Detection] = []
    for anchor_index, (anchor_w, anchor_h) in enumerate(anchors):
        lane = lanes[anchor_index]
        objectness = _sigmoid(lane[4])
        class_probs = _sigmoid(lane[5:])
        for cy in range(grid_h):
            for cx in range(grid_w):
                best_class = int(np.argmax(class_probs[:, cy, cx]))
                score = float(objectness[cy, cx]
                              * class_probs[best_class, cy, cx])
                if score < conf_threshold:
                    continue
                centre_x = (cx + _sigmoid(lane[0, cy, cx])) * stride
                centre_y = (cy + _sigmoid(lane[1, cy, cx])) * stride
                width = anchor_w * float(np.exp(
                    np.clip(lane[2, cy, cx], -10, 10)))
                height = anchor_h * float(np.exp(
                    np.clip(lane[3, cy, cx], -10, 10)))
                x0 = centre_x - width / 2
                y0 = centre_y - height / 2
                x1 = centre_x + width / 2
                y1 = centre_y + height / 2
                if image_size is not None:
                    x0 = max(0.0, min(x0, image_size))
                    y0 = max(0.0, min(y0, image_size))
                    x1 = max(0.0, min(x1, image_size))
                    y1 = max(0.0, min(y1, image_size))
                if x1 <= x0 or y1 <= y0:
                    continue
                detections.append(Detection(
                    Box(int(round(x0)), int(round(y0)),
                        int(round(x1)), int(round(y1)), best_class),
                    score,
                ))
    return detections


def non_max_suppression(detections: Sequence[Detection],
                        iou_threshold: float = 0.5) -> List[Detection]:
    """Greedy per-class NMS: keep the best-scoring box of each cluster."""
    kept: List[Detection] = []
    remaining = sorted(detections, key=lambda d: d.score, reverse=True)
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        remaining = [
            d for d in remaining
            if d.box.label != best.box.label
            or d.box.iou(best.box) < iou_threshold
        ]
    return kept


def encode_yolo_target(
    boxes: Sequence[Box],
    grid: int,
    anchors: Sequence[Tuple[float, float]] = TINY_ANCHORS,
    stride: int = 32,
    num_classes: int = 4,
    logit_scale: float = 6.0,
) -> np.ndarray:
    """Build the head tensor that decodes exactly to ``boxes``.

    The inverse of :func:`decode_yolo_head` — used by tests and by the
    oracle-detector harness to exercise the decode/NMS/report path with
    known ground truth.  Each box is assigned to its best-matching anchor
    in its centre cell; ``logit_scale`` saturates objectness/class logits.
    """
    num_anchors = len(anchors)
    head = np.full((num_anchors, 5 + num_classes, grid, grid),
                   -logit_scale, dtype=np.float32)
    head[:, 0:4] = 0.0
    for box in boxes:
        centre_x = (box.x0 + box.x1) / 2
        centre_y = (box.y0 + box.y1) / 2
        width = box.x1 - box.x0
        height = box.y1 - box.y0
        cx = min(grid - 1, int(centre_x // stride))
        cy = min(grid - 1, int(centre_y // stride))
        anchor_index = int(np.argmin([
            abs(np.log(max(width, 1) / aw)) + abs(np.log(max(height, 1) / ah))
            for aw, ah in anchors
        ]))
        aw, ah = anchors[anchor_index]
        fx = np.clip(centre_x / stride - cx, 1e-4, 1 - 1e-4)
        fy = np.clip(centre_y / stride - cy, 1e-4, 1 - 1e-4)
        lane = head[anchor_index]
        lane[0, cy, cx] = np.log(fx / (1 - fx))     # inverse sigmoid
        lane[1, cy, cx] = np.log(fy / (1 - fy))
        lane[2, cy, cx] = np.log(max(width, 1) / aw)
        lane[3, cy, cx] = np.log(max(height, 1) / ah)
        lane[4, cy, cx] = logit_scale                # objectness ~ 1
        lane[5 + box.label, cy, cx] = logit_scale
    return head.reshape(num_anchors * (5 + num_classes), grid, grid)
