"""The end-to-end deployment pipeline (the Kenning role).

Implements the six-step flow of paper Sec. III:

1. dataset preparation (``repro.datasets``),
2. model training — readout fitting on the frozen backbone,
3. evaluation until quality is satisfactory (confusion matrix),
4. model optimization (fusion / quantization / pruning passes),
5. model compilation to a target (precision choice + artifact),
6. deployment and execution with measurements.

"At the final stage, Kenning converts the model to a selected neural
network runtime and deploys it on the target hardware" — here the runtime
is the reference executor, and target behaviour comes from the roofline
model (DESIGN.md substitution)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..datasets.base import LabeledDataset
from ..hw.accelerators import AcceleratorSpec
from ..hw.performance_model import RooflineModel, preferred_dtype
from ..ir import serialization
from ..ir.graph import Graph
from ..ir.tensor import DType
from ..optim.fusion import fuse_graph
from ..optim.pruning import NeuronPrune
from ..optim.quantization import convert_fp16, quantize_int8
from ..runtime.executor import Executor
from ..runtime.profiler import Profiler
from .measurements import MeasurementRecord, measure_host
from .reports import ConfusionMatrix
from .training import evaluate_accuracy, train_readout


class PipelineError(RuntimeError):
    """Raised when a pipeline stage cannot proceed."""


@dataclass
class CompiledModel:
    """Stage-5 output: an artifact bound to a target and precision."""

    graph: Graph
    target: Optional[AcceleratorSpec]
    dtype: DType
    artifact: bytes

    @property
    def artifact_bytes(self) -> int:
        return len(self.artifact)


@dataclass
class PipelineReport:
    """Everything the pipeline measured, per variant."""

    model_name: str
    train_accuracy: float = 0.0
    variants: List[MeasurementRecord] = field(default_factory=list)
    confusions: Dict[str, ConfusionMatrix] = field(default_factory=dict)

    def variant(self, name: str) -> MeasurementRecord:
        for record in self.variants:
            if record.variant == name:
                return record
        raise KeyError(f"no variant {name!r}")

    def render(self) -> str:
        from .measurements import render_measurements

        lines = [f"pipeline report for {self.model_name!r} "
                 f"(train acc {self.train_accuracy:.3f})",
                 render_measurements(self.variants)]
        return "\n".join(lines)


class DeploymentPipeline:
    """Orchestrates the six-step flow over a model and dataset.

    Parameters
    ----------
    graph
        Untrained model (random backbone + readout).
    dataset
        Labeled dataset; split internally into train/test.
    target
        Optional accelerator the model is compiled for; adds roofline
        predictions to every variant.
    optimizations
        Variant specs to build besides ``fp32``: any of ``"fuse"``,
        ``"int8"``, ``"fp16"``, ``"prune:<fraction>"`` — applied
        cumulatively in the given order, with a measurement per stage.
    """

    def __init__(self, graph: Graph, dataset: LabeledDataset,
                 target: Optional[AcceleratorSpec] = None,
                 optimizations: Sequence[str] = ("fuse", "int8"),
                 profile_runs: int = 3) -> None:
        self.graph = graph
        self.dataset = dataset
        self.target = target
        self.optimizations = list(optimizations)
        self.profile_runs = profile_runs

    # -- stages ------------------------------------------------------------------

    def run(self, train_fraction: float = 0.8, seed: int = 0
            ) -> PipelineReport:
        train, test = self.dataset.split(train_fraction, seed=seed)
        trained = train_readout(self.graph, train)
        report = PipelineReport(self.graph.name,
                                train_accuracy=trained.train_accuracy)

        current = trained.graph
        self._measure_variant(report, current, "fp32", test, train)
        for spec in self.optimizations:
            current = self._apply(current, spec, train)
            self._measure_variant(report, current, spec, test, train)
        return report

    def compile_for_target(self, graph: Graph) -> CompiledModel:
        """Stage 5: bind a graph to the target's preferred precision."""
        dtype = preferred_dtype(self.target) if self.target else DType.FP32
        artifact = serialization.dumps(graph).encode()
        return CompiledModel(graph, self.target, dtype, artifact)

    # -- helpers -------------------------------------------------------------------

    def _apply(self, graph: Graph, spec: str,
               train: LabeledDataset) -> Graph:
        if spec == "fuse":
            return fuse_graph(graph)
        if spec == "int8":
            feeds = self._calibration_feeds(graph, train)
            return quantize_int8(graph, feeds)
        if spec == "fp16":
            return convert_fp16(graph)
        if spec.startswith("prune:"):
            fraction = float(spec.split(":", 1)[1])
            return NeuronPrune(fraction).run(graph)
        raise PipelineError(f"unknown optimization {spec!r}")

    def _calibration_feeds(self, graph: Graph, train: LabeledDataset,
                           batches: int = 4) -> List[Dict[str, np.ndarray]]:
        input_name = graph.inputs[0].name
        batch = graph.inputs[0].shape[0]
        feeds = []
        for x, _ in train.batches(batch, drop_last=True):
            feeds.append({input_name: x})
            if len(feeds) >= batches:
                break
        if not feeds:
            raise PipelineError("dataset too small for calibration")
        return feeds

    def _measure_variant(self, report: PipelineReport, graph: Graph,
                         variant: str, test: LabeledDataset,
                         train: LabeledDataset) -> None:
        accuracy, confusion = self._quality(graph, test)
        input_name = graph.inputs[0].name
        batch = graph.inputs[0].shape[0]
        sample = test.features[:batch]
        if len(sample) < batch:
            sample = np.repeat(test.features[:1], batch, axis=0)
        profile = Profiler(graph).profile({input_name: sample},
                                          runs=self.profile_runs)
        record = measure_host(graph, profile, variant,
                              {"accuracy": accuracy})
        if self.target is not None:
            model = RooflineModel(self.target)
            dtype = self._variant_dtype(variant)
            if dtype is None or self.target.supports(dtype):
                record.target_predictions = model.sweep_batches(
                    graph, dtype=dtype)
        report.variants.append(record)
        report.confusions[variant] = confusion

    def _variant_dtype(self, variant: str) -> Optional[DType]:
        if variant == "int8":
            return DType.INT8
        if variant == "fp16":
            return DType.FP16
        return None  # platform preference

    def _quality(self, graph: Graph, test: LabeledDataset
                 ) -> Tuple[float, ConfusionMatrix]:
        executor = Executor(graph)
        input_name = graph.inputs[0].name
        output_name = graph.output_names[0]
        batch = graph.inputs[0].shape[0]
        y_true: List[int] = []
        y_pred: List[int] = []
        for x, y in test.batches(batch):
            if len(x) < batch:
                pad = np.repeat(x[-1:], batch - len(x), axis=0)
                x_fed = np.concatenate([x, pad], axis=0)
            else:
                x_fed = x
            out = executor.run({input_name: x_fed})[output_name][:len(x)]
            y_true.extend(int(v) for v in y)
            y_pred.extend(int(v) for v in out.argmax(axis=-1))
        confusion = ConfusionMatrix.from_predictions(
            y_true, y_pred, test.class_names)
        return confusion.accuracy, confusion
