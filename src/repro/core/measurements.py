"""Deployment measurements: what Kenning records per target.

"Based on the implemented interfaces, the Kenning framework can measure the
inference duration, resource usage, and processing quality on a given
target.  Depending on a target, Kenning can monitor inference time, mean
CPU usage, and CPU and GPU memory usage." (paper Sec. III)

Host measurements come from the reference runtime profiler; target
measurements come from the roofline model.  Both are folded into one
:class:`MeasurementRecord` so reports can show host-measured quality next
to target-predicted latency/energy.
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..hw.performance_model import Prediction
from ..ir.graph import Graph
from ..runtime.profiler import ProfileResult


@dataclass
class MeasurementRecord:
    """One benchmarking run of one model variant."""

    model_name: str
    variant: str                          # e.g. "fp32", "fused+int8"
    host_latency_ms: float
    host_peak_activation_kb: float
    host_rss_mb: float
    model_size_bytes: int
    num_parameters: int
    quality: Dict[str, float] = field(default_factory=dict)
    target_predictions: List[Prediction] = field(default_factory=list)

    def quality_summary(self) -> str:
        return ", ".join(f"{k}={v:.4f}" for k, v in sorted(self.quality.items()))


def current_rss_mb() -> float:
    """Resident set size of this process in MiB."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":
        return usage / (1024 * 1024)
    return usage / 1024


def measure_host(graph: Graph, profile: ProfileResult,
                 variant: str, quality: Optional[Dict[str, float]] = None
                 ) -> MeasurementRecord:
    """Fold a profiler result into a measurement record."""
    return MeasurementRecord(
        model_name=graph.name,
        variant=variant,
        host_latency_ms=profile.mean_latency_seconds * 1e3,
        host_peak_activation_kb=profile.peak_activation_bytes / 1024,
        host_rss_mb=current_rss_mb(),
        model_size_bytes=graph.parameter_bytes(),
        num_parameters=graph.num_parameters(),
        quality=dict(quality or {}),
    )


def render_measurements(records: List[MeasurementRecord]) -> str:
    """Comparison table across variants (the Kenning report core)."""
    header = (f"{'variant':<18}{'latency ms':>12}{'size KB':>10}"
              f"{'params':>12}{'act KB':>9}  quality")
    lines = [header, "-" * len(header)]
    for record in records:
        lines.append(
            f"{record.variant:<18}{record.host_latency_ms:>12.3f}"
            f"{record.model_size_bytes / 1024:>10.1f}"
            f"{record.num_parameters:>12,}"
            f"{record.host_peak_activation_kb:>9.1f}  "
            f"{record.quality_summary()}"
        )
    return "\n".join(lines)


def render_target_predictions(record: MeasurementRecord) -> str:
    """Per-target predicted latency/power/energy table."""
    lines = [f"target predictions for {record.model_name} ({record.variant}):",
             f"{'platform':<22}{'dtype':<6}{'batch':>6}{'lat ms':>9}"
             f"{'GOPS':>8}{'W':>7}{'mJ/inf':>9}"]
    for p in record.target_predictions:
        lines.append(
            f"{p.platform:<22}{p.dtype.value:<6}{p.batch:>6}"
            f"{p.latency_s * 1e3:>9.2f}{p.throughput_gops:>8.0f}"
            f"{p.avg_power_w:>7.1f}{p.energy_per_inference_j * 1e3:>9.1f}"
        )
    return "\n".join(lines)
