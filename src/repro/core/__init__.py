"""Core toolchain: the Kenning-style deployment pipeline and its reports."""

from .training import (
    TrainingError,
    TrainResult,
    accuracy_quality_fn,
    evaluate_accuracy,
    train_readout,
)
from .reports import (
    ConfusionMatrix,
    Detection,
    DetectionReport,
    PrecisionRecallPoint,
    detection_report,
    match_detections,
)
from .detection import (
    TINY_ANCHORS,
    decode_yolo_head,
    encode_yolo_target,
    non_max_suppression,
)
from .measurements import (
    MeasurementRecord,
    current_rss_mb,
    measure_host,
    render_measurements,
    render_target_predictions,
)
from .orchestrator import (
    Assignment,
    ComputeNode,
    Orchestrator,
    Placement,
    PlacementError,
    Workload,
)
from .partition import (
    PartitionError,
    SplitPoint,
    enumerate_splits,
    run_split,
    split_at,
)
from .pipeline import (
    CompiledModel,
    DeploymentPipeline,
    PipelineError,
    PipelineReport,
)

__all__ = [
    "TrainingError", "TrainResult", "accuracy_quality_fn",
    "evaluate_accuracy", "train_readout",
    "ConfusionMatrix", "Detection", "DetectionReport",
    "PrecisionRecallPoint", "detection_report", "match_detections",
    "TINY_ANCHORS", "decode_yolo_head", "encode_yolo_target",
    "non_max_suppression",
    "MeasurementRecord", "current_rss_mb", "measure_host",
    "render_measurements", "render_target_predictions",
    "Assignment", "ComputeNode", "Orchestrator", "Placement",
    "PlacementError", "Workload",
    "PartitionError", "SplitPoint", "enumerate_splits", "run_split",
    "split_at",
    "CompiledModel", "DeploymentPipeline", "PipelineError", "PipelineReport",
]
