"""Graph partitioning: split one model between two compute sites.

Paper Sec. V-A: "the distribution of the deep learning models … between
different on-car systems and edge devices".  Shipping raw frames is one
point of a spectrum; this module provides the rest: cut the graph after
any schedule position, run the head locally, transmit the (often much
smaller) boundary activations, and run the tail remotely — the
Neurosurgeon-style layer-wise split.

:func:`split_at` produces two independently valid, executable graphs whose
composition equals the original; :func:`enumerate_splits` lists every cut
with its boundary traffic, the quantity the split optimizer trades against
compute placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..ir.graph import Graph, GraphError
from ..ir.tensor import TensorSpec


class PartitionError(ValueError):
    """Raised for invalid cut positions."""


@dataclass(frozen=True)
class SplitPoint:
    """One candidate cut: after schedule position ``position``."""

    position: int
    boundary_tensors: Tuple[str, ...]
    boundary_bytes: int
    after_node: str


def _boundary_at(graph: Graph, position: int,
                 specs: Dict[str, TensorSpec]) -> Tuple[str, ...]:
    head_nodes = graph.nodes[:position]
    tail_nodes = graph.nodes[position:]
    produced_by_head: Set[str] = set()
    for node in head_nodes:
        produced_by_head.update(node.outputs)
    needed_by_tail: Set[str] = set()
    for node in tail_nodes:
        needed_by_tail.update(node.inputs)
    boundary = produced_by_head & needed_by_tail
    # Graph outputs already produced by the head must also cross the cut.
    boundary |= produced_by_head & set(graph.output_names)
    return tuple(sorted(boundary))


def enumerate_splits(graph: Graph) -> List[SplitPoint]:
    """Every interior cut position with its boundary size."""
    if len(graph.nodes) < 2:
        raise PartitionError("graph too small to split")
    specs = graph.infer_specs()
    points = []
    for position in range(1, len(graph.nodes)):
        boundary = _boundary_at(graph, position, specs)
        size = sum(specs[name].size_bytes for name in boundary)
        points.append(SplitPoint(position, boundary, size,
                                 graph.nodes[position - 1].name))
    return points


def split_at(graph: Graph, position: int) -> Tuple[Graph, Graph]:
    """Split after schedule position ``position`` (1 <= position < len).

    Returns ``(head, tail)``: the head computes the boundary tensors from
    the original inputs; the tail takes the boundary tensors (plus any
    original inputs it still reads) and computes the original outputs.
    Outputs the head produced are forwarded through identity nodes so both
    halves expose the original output names.
    """
    if not 1 <= position < len(graph.nodes):
        raise PartitionError(
            f"cut position {position} outside (0, {len(graph.nodes)})")
    specs = graph.infer_specs()
    boundary = _boundary_at(graph, position, specs)
    if not boundary:
        raise PartitionError(f"cut at {position} severs nothing "
                             "(disconnected halves)")

    # -- head -----------------------------------------------------------------
    head = graph.copy()
    head.name = f"{graph.name}.head"
    head.nodes = head.nodes[:position]
    head.set_outputs(list(boundary))
    head.prune_dead_nodes()
    used = {name for node in head.nodes for name in node.inputs}
    head.inputs = [spec for spec in head.inputs if spec.name in used]
    head.validate()

    # -- tail ------------------------------------------------------------------
    tail = Graph(f"{graph.name}.tail")
    tail_nodes = graph.nodes[position:]
    tail_reads = {name for node in tail_nodes for name in node.inputs}
    for name in boundary:
        tail.add_input(specs[name].with_name(name))
    for spec in graph.inputs:
        if spec.name in tail_reads and spec.name not in boundary:
            tail.add_input(spec)
    for name, value in graph.initializers.items():
        if name in tail_reads:
            tail.add_initializer(
                name, value.copy(),
                graph.initializer_dtypes.get(name))
    for node in tail_nodes:
        tail.add_node(node.op_type, list(node.inputs), list(node.outputs),
                      name=node.name, **dict(node.attrs))
    outputs = []
    for name in graph.output_names:
        if name in boundary and name not in {
                out for node in tail_nodes for out in node.outputs}:
            forwarded = f"{name}__forwarded"
            tail.add_node("identity", [name], [forwarded],
                          name=f"forward_{name}")
            outputs.append(forwarded)
        else:
            outputs.append(name)
    tail.set_outputs(outputs)
    tail.validate()
    return head, tail


def run_split(head: Graph, tail: Graph,
              feeds: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Execute head then tail, wiring the boundary — for equivalence tests."""
    from ..runtime.executor import Executor

    head_feeds = {spec.name: feeds[spec.name] for spec in head.inputs}
    boundary_values = Executor(head).run(head_feeds)
    tail_feeds = dict(boundary_values)
    for spec in tail.inputs:
        if spec.name not in tail_feeds:
            tail_feeds[spec.name] = feeds[spec.name]
    return Executor(tail).run(tail_feeds)
