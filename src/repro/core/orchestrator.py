"""Workload orchestration across heterogeneous compute nodes.

The middleware role of the paper's abstract — "collaboratively solving
complex Deep Learning applications across distributed systems" on a
platform whose ecosystem "enables easy exchange of computing resources and
seamless switching between the different heterogeneous components"
(Sec. II-A).

An :class:`Orchestrator` places a set of recurring DL workloads (model +
invocation rate + latency budget) onto the accelerators of one or more
RECS chassis, minimizing total platform power subject to per-node
utilization, latency budgets and precision support.  Node failures trigger
re-placement of the orphaned workloads — the run-time robustness the
modular platform is built for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hw.accelerators import AcceleratorSpec
from ..hw.performance_model import Prediction, RooflineModel
from ..ir.graph import Graph


class PlacementError(RuntimeError):
    """Raised when no feasible placement exists."""


@dataclass(frozen=True)
class Workload:
    """A recurring inference task."""

    name: str
    graph: Graph
    rate_hz: float                 # invocations per second
    max_latency_s: float           # per-inference budget

    def __post_init__(self) -> None:
        if self.rate_hz <= 0 or self.max_latency_s <= 0:
            raise ValueError(f"workload {self.name!r}: rate and latency "
                             "budget must be positive")


@dataclass
class ComputeNode:
    """One placement target (a chassis module's accelerator)."""

    name: str
    spec: AcceleratorSpec
    healthy: bool = True

    def predict(self, graph: Graph) -> Prediction:
        return RooflineModel(self.spec).predict(graph, batch=1)

    def batch_throughput(self, graph: Graph,
                         batches: Sequence[int] = (1, 4, 8),
                         ) -> Dict[int, float]:
        """Predicted samples/s at each batch size (the serving layer's
        micro-batching decides how far up this curve a node runs)."""
        model = RooflineModel(self.spec)
        return {int(b): model.predict(graph, batch=int(b)).fps
                for b in batches}


@dataclass
class Assignment:
    """One workload bound to one node, with its predicted execution."""

    workload: Workload
    node: ComputeNode
    prediction: Prediction

    @property
    def utilization(self) -> float:
        """Fraction of the node this workload occupies."""
        return self.workload.rate_hz * self.prediction.latency_s

    @property
    def dynamic_power_w(self) -> float:
        """Average dynamic power of running this workload at its rate."""
        return self.workload.rate_hz * \
            self.prediction.energy_per_inference_j


@dataclass
class Placement:
    """A complete mapping of workloads to nodes."""

    assignments: List[Assignment] = field(default_factory=list)

    def node_utilization(self) -> Dict[str, float]:
        util: Dict[str, float] = {}
        for a in self.assignments:
            util[a.node.name] = util.get(a.node.name, 0.0) + a.utilization
        return util

    def used_nodes(self) -> List[ComputeNode]:
        seen: Dict[str, ComputeNode] = {}
        for a in self.assignments:
            seen[a.node.name] = a.node
        return list(seen.values())

    @property
    def total_power_w(self) -> float:
        """Idle power of every *used* node plus dynamic inference power.

        Unused nodes are assumed powered down (the chassis supports
        per-slot power control), which is what makes consolidation onto
        fewer nodes pay off.
        """
        idle = sum(node.spec.idle_w for node in self.used_nodes())
        dynamic = sum(a.dynamic_power_w for a in self.assignments)
        return idle + dynamic

    @property
    def feasible(self) -> bool:
        if any(not a.node.healthy for a in self.assignments):
            return False
        if any(a.prediction.latency_s > a.workload.max_latency_s
               for a in self.assignments):
            return False
        return all(u <= 1.0 for u in self.node_utilization().values())

    def assignment_of(self, workload_name: str) -> Assignment:
        for a in self.assignments:
            if a.workload.name == workload_name:
                return a
        raise KeyError(f"workload {workload_name!r} not placed")

    def report(self) -> str:
        lines = [f"{'workload':<12}{'node':<18}{'lat ms':>8}{'budget':>8}"
                 f"{'util %':>8}{'W dyn':>8}"]
        for a in self.assignments:
            lines.append(
                f"{a.workload.name:<12}{a.node.name:<18}"
                f"{a.prediction.latency_s * 1e3:>8.2f}"
                f"{a.workload.max_latency_s * 1e3:>8.2f}"
                f"{a.utilization * 100:>8.1f}{a.dynamic_power_w:>8.3f}")
        lines.append(f"total platform power: {self.total_power_w:.2f} W "
                     f"({len(self.used_nodes())} node(s) powered)")
        return "\n".join(lines)


class Orchestrator:
    """Places workloads onto nodes, minimizing total platform power.

    Exhaustive search over assignments for small problems (the chassis
    scale the project deploys: a handful of workloads over a handful of
    modules); beyond ``max_exhaustive`` combinations it falls back to a
    greedy best-fit by dynamic power.
    """

    def __init__(self, nodes: Sequence[ComputeNode],
                 max_exhaustive: int = 100_000) -> None:
        if not nodes:
            raise ValueError("orchestrator needs at least one node")
        self.nodes = list(nodes)
        self.max_exhaustive = max_exhaustive
        self._prediction_cache: Dict[Tuple[str, str], Prediction] = {}

    # -- prediction caching ---------------------------------------------------

    def _predict(self, workload: Workload, node: ComputeNode) -> Prediction:
        key = (workload.name, node.name)
        if key not in self._prediction_cache:
            self._prediction_cache[key] = node.predict(workload.graph)
        return self._prediction_cache[key]

    def _candidates(self, workload: Workload) -> List[Assignment]:
        out = []
        for node in self.nodes:
            if not node.healthy:
                continue
            prediction = self._predict(workload, node)
            if prediction.latency_s <= workload.max_latency_s and \
                    prediction.fits_memory:
                out.append(Assignment(workload, node, prediction))
        return out

    # -- placement ---------------------------------------------------------------

    def place(self, workloads: Sequence[Workload]) -> Placement:
        """Find a feasible minimum-power placement.

        Raises :class:`PlacementError` when some workload fits no node or
        no combination satisfies the utilization constraints.
        """
        per_workload: List[List[Assignment]] = []
        for workload in workloads:
            candidates = self._candidates(workload)
            if not candidates:
                raise PlacementError(
                    f"workload {workload.name!r} fits no healthy node "
                    "(latency budget or memory unsatisfiable)"
                )
            per_workload.append(candidates)

        combos = 1
        for candidates in per_workload:
            combos *= len(candidates)
        if combos <= self.max_exhaustive:
            best: Optional[Placement] = None
            for combo in itertools.product(*per_workload):
                placement = Placement(list(combo))
                if not placement.feasible:
                    continue
                if best is None or placement.total_power_w < \
                        best.total_power_w:
                    best = placement
            if best is None:
                raise PlacementError(
                    "no feasible combination: utilization constraints "
                    "cannot be met on the available nodes"
                )
            return best
        return self._greedy(per_workload)

    def _greedy(self, per_workload: List[List[Assignment]]) -> Placement:
        placement = Placement()
        # Hardest (least-flexible) workloads first.
        order = sorted(range(len(per_workload)),
                       key=lambda i: len(per_workload[i]))
        chosen: Dict[int, Assignment] = {}
        for index in order:
            feasible_here = []
            for candidate in per_workload[index]:
                trial = Placement(list(chosen.values()) + [candidate])
                if trial.feasible:
                    feasible_here.append((trial.total_power_w, candidate))
            if not feasible_here:
                raise PlacementError("greedy placement failed: utilization "
                                     "constraints cannot be met")
            chosen[index] = min(feasible_here, key=lambda t: t[0])[1]
        placement.assignments = [chosen[i] for i in range(len(per_workload))]
        return placement

    # -- run-time robustness ---------------------------------------------------------

    def handle_node_failure(self, placement: Placement,
                            failed_node: str) -> Placement:
        """Re-place after a node failure, keeping healthy assignments.

        The failed node is marked unhealthy; only its workloads move (the
        "seamless switching" the RECS ecosystem provides).
        """
        for node in self.nodes:
            if node.name == failed_node:
                node.healthy = False
        survivors = [a for a in placement.assignments
                     if a.node.name != failed_node]
        orphans = [a.workload for a in placement.assignments
                   if a.node.name == failed_node]
        if not orphans:
            return placement
        per_orphan: List[List[Assignment]] = []
        for workload in orphans:
            candidates = self._candidates(workload)
            if not candidates:
                raise PlacementError(
                    f"workload {workload.name!r} cannot be re-placed after "
                    f"{failed_node!r} failed"
                )
            per_orphan.append(candidates)
        best: Optional[Placement] = None
        for combo in itertools.product(*per_orphan):
            trial = Placement(survivors + list(combo))
            if trial.feasible and (best is None or
                                   trial.total_power_w < best.total_power_w):
                best = trial
        if best is None:
            raise PlacementError(
                f"no feasible re-placement after {failed_node!r} failed")
        return best
