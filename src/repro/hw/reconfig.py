"""FPGA partial-reconfiguration model.

The paper (Sec. II-A): "reconfigurable devices (FPGAs) are utilized …
partial reconfiguration is used to adapt to changing application
requirements at run-time, e.g., using implementations with different
power/performance footprints."

A :class:`ReconfigurableRegion` holds a set of accelerator *variants*
(bitstreams) with distinct throughput/power footprints and a reconfiguration
cost.  The :class:`VariantScheduler` decides when switching variants pays
off given a workload phase — the ablation benchmarked as Txt-I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BitstreamVariant:
    """One accelerator implementation loadable into a region."""

    name: str
    throughput_gops: float       # sustained throughput of the overlay
    power_w: float               # active power while processing
    bitstream_mb: float = 8.0    # partial bitstream size

    def __post_init__(self) -> None:
        if self.throughput_gops <= 0 or self.power_w <= 0:
            raise ValueError(f"variant {self.name!r}: non-positive footprint")

    def process_seconds(self, gops: float) -> float:
        """Time to process ``gops`` (10^9 operations) of work."""
        return gops / self.throughput_gops

    def energy_j(self, gops: float) -> float:
        return self.process_seconds(gops) * self.power_w


@dataclass(frozen=True)
class WorkloadPhase:
    """A phase of the application with steady compute demand.

    ``required_gops_per_s`` is the offered load; ``duration_s`` how long the
    phase lasts.  A variant can serve the phase only if its throughput
    meets the offered load (otherwise work queues unboundedly).
    """

    name: str
    required_gops_per_s: float
    duration_s: float


class ReconfigurationError(RuntimeError):
    """Raised on invalid reconfiguration requests."""


class ReconfigurableRegion:
    """A partially-reconfigurable region of an FPGA.

    Tracks the loaded variant and accumulates time/energy spent on
    reconfiguration (the overhead that switching must amortize).
    """

    def __init__(self, name: str, variants: Sequence[BitstreamVariant],
                 reconfig_bandwidth_mbps: float = 400.0,
                 reconfig_power_w: float = 3.0) -> None:
        if not variants:
            raise ReconfigurationError(f"region {name!r} needs variants")
        names = [v.name for v in variants]
        if len(set(names)) != len(names):
            raise ReconfigurationError(f"region {name!r}: duplicate variants")
        self.name = name
        self.variants: Dict[str, BitstreamVariant] = {v.name: v for v in variants}
        self.reconfig_bandwidth_mbps = reconfig_bandwidth_mbps
        self.reconfig_power_w = reconfig_power_w
        self.loaded: Optional[str] = None
        self.reconfig_count = 0
        self.reconfig_seconds = 0.0
        self.reconfig_energy_j = 0.0

    def reconfig_time_s(self, variant: str) -> float:
        """Partial-reconfiguration time for ``variant`` (bitstream / ICAP BW)."""
        v = self._variant(variant)
        return v.bitstream_mb * 8 / self.reconfig_bandwidth_mbps

    def load(self, variant: str) -> float:
        """Load ``variant``; returns the reconfiguration time spent (0 if a no-op)."""
        self._variant(variant)
        if self.loaded == variant:
            return 0.0
        took = self.reconfig_time_s(variant)
        self.loaded = variant
        self.reconfig_count += 1
        self.reconfig_seconds += took
        self.reconfig_energy_j += took * self.reconfig_power_w
        return took

    def current(self) -> BitstreamVariant:
        if self.loaded is None:
            raise ReconfigurationError(f"region {self.name!r}: nothing loaded")
        return self.variants[self.loaded]

    def _variant(self, name: str) -> BitstreamVariant:
        try:
            return self.variants[name]
        except KeyError:
            raise ReconfigurationError(
                f"region {self.name!r} has no variant {name!r}"
            ) from None


@dataclass
class PhaseOutcome:
    """Execution record of one workload phase."""

    phase: str
    variant: str
    reconfig_s: float
    busy_s: float
    energy_j: float
    met_demand: bool


class VariantScheduler:
    """Chooses the cheapest adequate variant per workload phase.

    Policy: among variants whose throughput covers the offered load, pick
    the one minimizing total energy for the phase including any
    reconfiguration energy; if switching costs more than it saves over the
    phase duration, stay on the current variant.  A static baseline (never
    reconfigure, always use the fastest variant) is available for the
    ablation benchmark.
    """

    def __init__(self, region: ReconfigurableRegion) -> None:
        self.region = region

    def run_phases(self, phases: Sequence[WorkloadPhase],
                   adaptive: bool = True) -> List[PhaseOutcome]:
        outcomes: List[PhaseOutcome] = []
        if not adaptive:
            fastest = max(self.region.variants.values(),
                          key=lambda v: v.throughput_gops)
            self.region.load(fastest.name)
        for phase in phases:
            variant = self._choose(phase) if adaptive else self.region.current()
            reconfig_s = self.region.load(variant.name)
            work_gops = phase.required_gops_per_s * phase.duration_s
            busy_s = variant.process_seconds(work_gops)
            met = (variant.throughput_gops >= phase.required_gops_per_s
                   and reconfig_s + busy_s <= phase.duration_s + 1e-9)
            idle_s = max(0.0, phase.duration_s - busy_s - reconfig_s)
            energy = (variant.energy_j(work_gops)
                      + reconfig_s * self.region.reconfig_power_w
                      + idle_s * 0.2 * variant.power_w)  # idle floor ~20%
            outcomes.append(PhaseOutcome(
                phase.name, variant.name, reconfig_s, busy_s, energy, met))
        return outcomes

    def _choose(self, phase: WorkloadPhase) -> BitstreamVariant:
        adequate = [
            v for v in self.region.variants.values()
            if v.throughput_gops >= phase.required_gops_per_s
        ]
        if not adequate:
            # Overloaded: fall back to the fastest variant available.
            return max(self.region.variants.values(),
                       key=lambda v: v.throughput_gops)
        work_gops = phase.required_gops_per_s * phase.duration_s

        def total_energy(v: BitstreamVariant) -> float:
            switch = 0.0
            if self.region.loaded != v.name:
                switch = (self.region.reconfig_time_s(v.name)
                          * self.region.reconfig_power_w)
            busy = v.energy_j(work_gops)
            idle = max(0.0, phase.duration_s - v.process_seconds(work_gops))
            return switch + busy + idle * 0.2 * v.power_w

        return min(adequate, key=total_energy)


def default_dl_region() -> ReconfigurableRegion:
    """A representative region with small/medium/large DPU overlay variants."""
    return ReconfigurableRegion("dl-region", (
        BitstreamVariant("dpu-small", throughput_gops=230, power_w=2.0,
                         bitstream_mb=4.0),
        BitstreamVariant("dpu-medium", throughput_gops=700, power_w=5.0,
                         bitstream_mb=8.0),
        BitstreamVariant("dpu-large", throughput_gops=1400, power_w=11.0,
                         bitstream_mb=14.0),
    ))
