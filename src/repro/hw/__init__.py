"""Hardware substrate: accelerator catalog, roofline model, RECS platforms."""

from .accelerators import (
    FIG4_PLATFORMS,
    AcceleratorSpec,
    DeviceFamily,
    PowerMode,
    catalog,
    get_accelerator,
    register_accelerator,
    resolve_platform,
)
from .performance_model import (
    LayerPrediction,
    NaivePeakModel,
    Prediction,
    RooflineModel,
    predict_on,
    preferred_dtype,
)
from .microserver import (
    Architecture,
    ComFormFactor,
    Microserver,
    PerformanceClass,
    REFERENCE_MICROSERVERS,
    form_factors,
    get_form_factor,
    reference_microserver,
    register_form_factor,
)
from .recs import (
    ALL_CHASSIS,
    Chassis,
    ChassisSpec,
    CompositionError,
    RECS_BOX,
    T_RECS,
    U_RECS,
    build_reference_trecs,
    build_reference_urecs,
)
from .network import (
    Channel,
    Fabric,
    FabricError,
    LINK_PROFILES,
    LinkKind,
    LinkProfile,
    transfer_seconds,
)
from .reconfig import (
    BitstreamVariant,
    PhaseOutcome,
    ReconfigurableRegion,
    ReconfigurationError,
    VariantScheduler,
    WorkloadPhase,
    default_dl_region,
)

__all__ = [
    "FIG4_PLATFORMS", "AcceleratorSpec", "DeviceFamily", "PowerMode",
    "catalog", "get_accelerator", "register_accelerator", "resolve_platform",
    "LayerPrediction", "NaivePeakModel", "Prediction", "RooflineModel",
    "predict_on", "preferred_dtype",
    "Architecture", "ComFormFactor", "Microserver", "PerformanceClass",
    "REFERENCE_MICROSERVERS", "form_factors", "get_form_factor",
    "reference_microserver", "register_form_factor",
    "ALL_CHASSIS", "Chassis", "ChassisSpec", "CompositionError",
    "RECS_BOX", "T_RECS", "U_RECS", "build_reference_trecs",
    "build_reference_urecs",
    "Channel", "Fabric", "FabricError", "LINK_PROFILES", "LinkKind",
    "LinkProfile", "transfer_seconds",
    "BitstreamVariant", "PhaseOutcome", "ReconfigurableRegion",
    "ReconfigurationError", "VariantScheduler", "WorkloadPhase",
    "default_dl_region",
]
