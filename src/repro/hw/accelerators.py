"""Catalog of DL accelerators analysed in the VEDLIoT evaluation.

Reproduces the survey behind Fig. 3 ("Peak Performance of DL Accelerators")
and provides the device specifications the roofline model needs to
reproduce Fig. 4 (YoloV4 on ten platforms).  Peak numbers are the vendor
datasheet values the paper plots ("data is based on the peak performance
values … provided by the vendors"); no normalization to a technology node
is performed, matching the paper's caveat.

Hardware substitution note (DESIGN.md): we have no boards, so the catalog
*is* the digitized survey, and achieved performance comes from the analytic
model in :mod:`repro.hw.performance_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..ir.tensor import DType


class DeviceFamily(Enum):
    """Device classes used in the paper's Fig. 3/4 grouping."""

    CPU = "cpu"
    GPU = "gpu"
    EGPU = "egpu"          # embedded GPU modules (Jetson family)
    FPGA = "fpga"
    ASIC = "asic"          # fixed-function NPUs (Myriad, Edge TPU, Hailo, ...)
    MCU = "mcu"            # microcontroller-class NPUs


@dataclass(frozen=True)
class PowerMode:
    """A selectable power/performance operating point (e.g. Jetson nvpmodel).

    ``compute_scale`` multiplies peak compute, ``bandwidth_scale`` the
    memory bandwidth, and ``power_scale`` the TDP.
    """

    name: str
    compute_scale: float = 1.0
    bandwidth_scale: float = 1.0
    power_scale: float = 1.0


@dataclass(frozen=True)
class AcceleratorSpec:
    """Datasheet-level description of one accelerator platform.

    peak_gops
        Vendor peak throughput in GOPS per supported precision (a MAC
        counts as 2 ops, the convention vendors use for TOPS claims).
    tdp_w / idle_w
        Board power limits; ``idle_w`` is the floor drawn while powered.
    memory_bw_gbs
        Peak DRAM bandwidth in GB/s (roofline memory ceiling).
    util_max
        Fraction of peak a well-optimized dense CNN can sustain at large
        batch (captures instruction mix, tiling and scheduling losses).
    batch_k
        Half-saturation batch size of the utilization curve; devices with
        many parallel lanes (GPUs) need larger batches to fill.
    node_overhead_s
        Fixed per-operator dispatch overhead (kernel launch, DMA setup).
    """

    name: str
    vendor: str
    family: DeviceFamily
    peak_gops: Dict[DType, float]
    tdp_w: float
    idle_w: float
    memory_bw_gbs: float
    memory_gb: float = 4.0
    util_max: float = 0.45
    batch_k: float = 0.0
    node_overhead_s: float = 0.0
    year: int = 2020
    power_modes: Tuple[PowerMode, ...] = ()
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.peak_gops:
            raise ValueError(f"{self.name}: peak_gops must not be empty")
        if self.tdp_w <= 0 or self.idle_w < 0 or self.idle_w > self.tdp_w:
            raise ValueError(f"{self.name}: inconsistent power envelope")
        if self.memory_bw_gbs <= 0:
            raise ValueError(f"{self.name}: memory bandwidth must be positive")
        if not 0 < self.util_max <= 1:
            raise ValueError(f"{self.name}: util_max must be in (0, 1]")

    @property
    def best_precision(self) -> DType:
        """The precision with the highest vendor peak (what Fig. 3 plots)."""
        return max(self.peak_gops, key=lambda dt: self.peak_gops[dt])

    @property
    def peak_gops_best(self) -> float:
        return self.peak_gops[self.best_precision]

    @property
    def efficiency_tops_per_w(self) -> float:
        """Peak energy efficiency in TOPS/W (the clustering metric of Fig. 3)."""
        return self.peak_gops_best / 1000.0 / self.tdp_w

    def supports(self, dtype: DType) -> bool:
        return dtype in self.peak_gops

    def mode(self, name: str) -> PowerMode:
        for mode in self.power_modes:
            if mode.name == name:
                return mode
        raise KeyError(f"{self.name} has no power mode {name!r}")

    def with_mode(self, name: str) -> "AcceleratorSpec":
        """Return a spec rescaled to the named power mode."""
        mode = self.mode(name)
        return replace(
            self,
            name=f"{self.name} ({mode.name})",
            peak_gops={dt: g * mode.compute_scale
                       for dt, g in self.peak_gops.items()},
            memory_bw_gbs=self.memory_bw_gbs * mode.bandwidth_scale,
            tdp_w=self.tdp_w * mode.power_scale,
            idle_w=min(self.idle_w, self.tdp_w * mode.power_scale * 0.5),
            power_modes=(),
        )


_CATALOG: Dict[str, AcceleratorSpec] = {}


def register_accelerator(spec: AcceleratorSpec) -> AcceleratorSpec:
    key = spec.name.lower()
    if key in _CATALOG:
        raise ValueError(f"accelerator {spec.name!r} already registered")
    _CATALOG[key] = spec
    return spec


def get_accelerator(name: str) -> AcceleratorSpec:
    try:
        return _CATALOG[name.lower()]
    except KeyError:
        raise KeyError(f"unknown accelerator {name!r}") from None


def catalog(family: Optional[DeviceFamily] = None) -> List[AcceleratorSpec]:
    """All registered accelerators, optionally filtered by family."""
    specs = sorted(_CATALOG.values(), key=lambda s: s.name.lower())
    if family is not None:
        specs = [s for s in specs if s.family is family]
    return specs


def _gops(**kwargs: float) -> Dict[DType, float]:
    mapping = {"fp32": DType.FP32, "fp16": DType.FP16, "int8": DType.INT8,
               "binary": DType.BINARY}
    return {mapping[k]: v for k, v in kwargs.items()}


# ---------------------------------------------------------------------------
# The ten platforms measured in Fig. 4 (YoloV4 evaluation)
# ---------------------------------------------------------------------------

register_accelerator(AcceleratorSpec(
    name="Epyc3451", vendor="AMD", family=DeviceFamily.CPU,
    peak_gops=_gops(fp32=550, int8=1100),
    tdp_w=100, idle_w=35, memory_bw_gbs=68, memory_gb=64,
    util_max=0.55, batch_k=0.05, node_overhead_s=2e-6, year=2018,
    notes="Embedded EPYC 3451, 16C AVX2; x86 near-edge server CPU",
))

register_accelerator(AcceleratorSpec(
    name="D1577", vendor="Intel", family=DeviceFamily.CPU,
    peak_gops=_gops(fp32=330, int8=660),
    tdp_w=45, idle_w=18, memory_bw_gbs=38, memory_gb=32,
    util_max=0.55, batch_k=0.05, node_overhead_s=2e-6, year=2016,
    notes="Xeon D-1577, 16C 1.3 GHz; microserver CPU (COM Express)",
))

register_accelerator(AcceleratorSpec(
    name="GTX1660", vendor="NVIDIA", family=DeviceFamily.GPU,
    peak_gops=_gops(fp32=5000, fp16=10100, int8=20200),
    tdp_w=120, idle_w=10, memory_bw_gbs=192, memory_gb=6,
    util_max=0.45, batch_k=2.4, node_overhead_s=12e-6, year=2019,
    notes="TU116 desktop GPU; TensorRT path in the paper",
))

register_accelerator(AcceleratorSpec(
    name="XavierAGX", vendor="NVIDIA", family=DeviceFamily.EGPU,
    # GPU-only peaks: the TensorRT YoloV4 path does not engage the DLAs.
    peak_gops=_gops(fp32=1400, fp16=11000, int8=22000),
    tdp_w=30, idle_w=8, memory_bw_gbs=137, memory_gb=32,
    util_max=0.30, batch_k=2.2, node_overhead_s=15e-6, year=2018,
    power_modes=(
        PowerMode("MAXN", 1.0, 1.0, 1.0),
        PowerMode("10W", 0.33, 0.55, 0.37),
    ),
    notes="Jetson AGX Xavier; hi = MAXN 30W, lo = 10W nvpmodel",
))

register_accelerator(AcceleratorSpec(
    name="XavierNX", vendor="NVIDIA", family=DeviceFamily.EGPU,
    # GPU-only peaks (384 Volta cores); marketing "21 TOPS" includes DLAs.
    peak_gops=_gops(fp32=800, fp16=6000, int8=12600),
    tdp_w=15, idle_w=4, memory_bw_gbs=51, memory_gb=8,
    util_max=0.32, batch_k=1.8, node_overhead_s=15e-6, year=2020,
    notes="Jetson Xavier NX module (native on uRECS)",
))

register_accelerator(AcceleratorSpec(
    name="JetsonTX2", vendor="NVIDIA", family=DeviceFamily.EGPU,
    peak_gops=_gops(fp32=665, fp16=1330),
    tdp_w=15, idle_w=5, memory_bw_gbs=59, memory_gb=8,
    util_max=0.40, batch_k=1.2, node_overhead_s=18e-6, year=2017,
    notes="Pascal-based Jetson TX2; no INT8 tensor path",
))

register_accelerator(AcceleratorSpec(
    name="ZynqZU15", vendor="Xilinx", family=DeviceFamily.FPGA,
    peak_gops=_gops(int8=3600, fp16=900),
    tdp_w=22, idle_w=6, memory_bw_gbs=19, memory_gb=4,
    util_max=0.55, batch_k=0.4, node_overhead_s=8e-6, year=2017,
    notes="ZU15EG with DPU overlay (3528 DSP slices)",
))

register_accelerator(AcceleratorSpec(
    name="ZynqZU3", vendor="Xilinx", family=DeviceFamily.FPGA,
    peak_gops=_gops(int8=1150),
    tdp_w=7.5, idle_w=2.5, memory_bw_gbs=4.3, memory_gb=2,
    util_max=0.55, batch_k=0.4, node_overhead_s=8e-6, year=2017,
    notes="ZU3EG (Ultra96/Kria-class) with small DPU",
))

register_accelerator(AcceleratorSpec(
    name="Myriad", vendor="Intel", family=DeviceFamily.ASIC,
    peak_gops=_gops(fp16=1000),
    tdp_w=2.5, idle_w=0.7, memory_bw_gbs=12, memory_gb=0.5,
    util_max=0.50, batch_k=0.3, node_overhead_s=25e-6, year=2017,
    notes="Myriad X VPU (NCS2); FP16 only via OpenVINO",
))

# ---------------------------------------------------------------------------
# Wider survey for Fig. 3 (mW MCUs to 400 W cloud parts)
# ---------------------------------------------------------------------------

for spec in (
    # --- MCU / milliwatt class ------------------------------------------------
    AcceleratorSpec("Ethos-U55", "ARM", DeviceFamily.MCU,
                    _gops(int8=512), 0.5, 0.05, 3.2, 0.01,
                    util_max=0.7, year=2020, notes="microNPU IP, 512 GOPS config"),
    AcceleratorSpec("GAP8", "GreenWaves", DeviceFamily.MCU,
                    _gops(int8=22.65), 0.1, 0.02, 0.5, 0.008,
                    util_max=0.6, year=2018, notes="9-core RISC-V PULP"),
    AcceleratorSpec("K210", "Kendryte", DeviceFamily.MCU,
                    _gops(int8=460), 1.0, 0.3, 2.0, 0.008,
                    util_max=0.5, year=2018, notes="dual RV64 + KPU"),
    AcceleratorSpec("MAX78000", "Maxim", DeviceFamily.MCU,
                    _gops(int8=30), 0.03, 0.005, 0.2, 0.001,
                    util_max=0.6, year=2020, notes="CNN accelerator MCU"),
    # --- USB / module NPUs -----------------------------------------------------
    AcceleratorSpec("CoralEdgeTPU", "Google", DeviceFamily.ASIC,
                    _gops(int8=4000), 2.0, 0.5, 4.0, 0.008,
                    util_max=0.6, batch_k=0.3, year=2019,
                    notes="Edge TPU (USB/M.2/SoM)"),
    AcceleratorSpec("Hailo-8", "Hailo", DeviceFamily.ASIC,
                    _gops(int8=26000), 2.5, 0.6, 8.0, 0.03,
                    util_max=0.55, batch_k=0.3, year=2020),
    AcceleratorSpec("RK3399Pro-NPU", "Rockchip", DeviceFamily.ASIC,
                    _gops(int8=3000, fp16=1500), 3.0, 1.0, 12.8, 4,
                    util_max=0.45, year=2018),
    AcceleratorSpec("KL520", "Kneron", DeviceFamily.ASIC,
                    _gops(int8=345), 0.5, 0.1, 1.6, 0.06,
                    util_max=0.55, year=2019),
    AcceleratorSpec("NCS2", "Intel", DeviceFamily.ASIC,
                    _gops(fp16=1000), 1.5, 0.5, 12, 0.5,
                    util_max=0.5, year=2018, notes="Myriad X USB stick"),
    # --- embedded GPU modules ---------------------------------------------------
    AcceleratorSpec("JetsonNano", "NVIDIA", DeviceFamily.EGPU,
                    _gops(fp32=236, fp16=472), 10, 2, 25.6, 4,
                    util_max=0.4, batch_k=1.2, node_overhead_s=20e-6, year=2019),
    AcceleratorSpec("OrinAGX", "NVIDIA", DeviceFamily.EGPU,
                    _gops(fp32=5300, fp16=42000, int8=170000), 60, 15, 205, 32,
                    util_max=0.4, batch_k=2.0, node_overhead_s=12e-6, year=2022),
    # --- desktop / server GPUs ---------------------------------------------------
    AcceleratorSpec("T4", "NVIDIA", DeviceFamily.GPU,
                    _gops(fp32=8100, fp16=65000, int8=130000), 70, 10, 320, 16,
                    util_max=0.45, batch_k=2.6, node_overhead_s=12e-6, year=2018),
    AcceleratorSpec("RTX2080Ti", "NVIDIA", DeviceFamily.GPU,
                    _gops(fp32=13400, fp16=26900, int8=215000), 250, 15, 616, 11,
                    util_max=0.45, batch_k=3.0, node_overhead_s=12e-6, year=2018),
    AcceleratorSpec("V100", "NVIDIA", DeviceFamily.GPU,
                    _gops(fp32=15700, fp16=125000), 300, 25, 900, 32,
                    util_max=0.5, batch_k=3.2, node_overhead_s=12e-6, year=2017),
    AcceleratorSpec("A100", "NVIDIA", DeviceFamily.GPU,
                    _gops(fp32=19500, fp16=312000, int8=624000), 400, 30, 1555, 40,
                    util_max=0.5, batch_k=3.4, node_overhead_s=12e-6, year=2020),
    # --- cloud ASICs ---------------------------------------------------------------
    AcceleratorSpec("TPUv3", "Google", DeviceFamily.ASIC,
                    _gops(fp16=123000), 220, 30, 900, 32,
                    util_max=0.55, batch_k=4.0, year=2018,
                    notes="per-chip bfloat16 peak"),
    AcceleratorSpec("Goya", "Habana", DeviceFamily.ASIC,
                    _gops(fp16=50000, int8=100000), 200, 25, 400, 16,
                    util_max=0.5, batch_k=2.5, year=2019),
    AcceleratorSpec("IPU-GC2", "Graphcore", DeviceFamily.ASIC,
                    _gops(fp16=125000), 150, 20, 45, 0.3,
                    util_max=0.45, batch_k=2.0, year=2019,
                    notes="on-chip SRAM only"),
    # --- FPGAs -----------------------------------------------------------------------
    AcceleratorSpec("AlveoU250", "Xilinx", DeviceFamily.FPGA,
                    _gops(int8=33300), 225, 40, 77, 64,
                    util_max=0.5, batch_k=0.5, year=2018),
    AcceleratorSpec("Arria10GX", "Intel", DeviceFamily.FPGA,
                    _gops(fp16=1400, int8=2800), 70, 20, 34, 8,
                    util_max=0.5, batch_k=0.4, year=2016),
    AcceleratorSpec("VersalAI", "Xilinx", DeviceFamily.FPGA,
                    _gops(int8=133000), 75, 20, 102, 8,
                    util_max=0.45, batch_k=0.6, year=2021,
                    notes="VC1902 AI engines"),
    AcceleratorSpec("KriaK26", "Xilinx", DeviceFamily.FPGA,
                    _gops(int8=1360), 10, 3, 19, 4,
                    util_max=0.55, batch_k=0.4, year=2021,
                    notes="Kria SOM (uRECS adaptor PCB)"),
    # --- CPUs ---------------------------------------------------------------------------
    AcceleratorSpec("Xeon8280", "Intel", DeviceFamily.CPU,
                    _gops(fp32=3200, int8=12800), 205, 60, 141, 384,
                    util_max=0.55, batch_k=0.1, node_overhead_s=2e-6, year=2019,
                    notes="28C AVX-512 VNNI"),
    AcceleratorSpec("RPi-CM4", "Broadcom", DeviceFamily.CPU,
                    _gops(fp32=24, int8=48), 7, 2, 4.2, 8,
                    util_max=0.5, batch_k=0.05, node_overhead_s=3e-6, year=2020,
                    notes="Compute Module 4 (uRECS adaptor PCB)"),
    AcceleratorSpec("i.MX8M", "NXP", DeviceFamily.CPU,
                    _gops(fp32=25, int8=50), 5, 1.5, 12.8, 4,
                    util_max=0.5, batch_k=0.05, node_overhead_s=3e-6, year=2018,
                    notes="SMARC-class embedded SoC"),
):
    register_accelerator(spec)


# Platforms of the Fig. 4 sweep in presentation order, including the two
# Xavier AGX power modes the paper plots separately.
FIG4_PLATFORMS: Tuple[str, ...] = (
    "Epyc3451", "D1577", "GTX1660",
    "XavierAGX", "XavierAGX:10W", "XavierNX", "JetsonTX2",
    "ZynqZU15", "ZynqZU3", "Myriad",
)


def resolve_platform(name: str) -> AcceleratorSpec:
    """Resolve ``name`` or ``name:mode`` into a (possibly rescaled) spec."""
    if ":" in name:
        base, mode = name.split(":", 1)
        return get_accelerator(base).with_mode(mode)
    return get_accelerator(name)
