"""Communication infrastructure of the RECS platforms.

Models the "scalable communication-driven infrastructure, realizing
efficient communication between heterogeneous microservers via 1 G / 10 G
Ethernet and high-speed low-latency connections, reconfigurable during
run-time" (paper Sec. II-A).  The fabric tracks attached endpoints and
point-to-point link assignments, supports run-time reconfiguration of
topology and protocol parameters, and provides an analytic transfer-time
model used by the distributed-inference use cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


class LinkKind(Enum):
    """Physical link classes available inside and between RECS chassis."""

    ETH_1G = "1G Ethernet"
    ETH_10G = "10G Ethernet"
    HIGH_SPEED_LL = "high-speed low-latency"
    USB3 = "USB 3.0"
    M2 = "M.2 / PCIe x4"


@dataclass(frozen=True)
class LinkProfile:
    """Bandwidth/latency characteristics of a link class."""

    bandwidth_gbps: float
    base_latency_us: float
    per_kb_overhead_us: float = 0.0


LINK_PROFILES: Dict[LinkKind, LinkProfile] = {
    LinkKind.ETH_1G: LinkProfile(1.0, 60.0, 0.3),
    LinkKind.ETH_10G: LinkProfile(10.0, 20.0, 0.05),
    LinkKind.HIGH_SPEED_LL: LinkProfile(40.0, 2.0, 0.01),
    LinkKind.USB3: LinkProfile(5.0, 100.0, 0.2),
    LinkKind.M2: LinkProfile(31.5, 5.0, 0.01),
}


def transfer_seconds(kind: LinkKind, num_bytes: int,
                     profile: Optional[LinkProfile] = None) -> float:
    """Time to move ``num_bytes`` over one link of class ``kind``."""
    profile = profile or LINK_PROFILES[kind]
    payload_s = num_bytes * 8 / (profile.bandwidth_gbps * 1e9)
    overhead_s = (profile.base_latency_us
                  + profile.per_kb_overhead_us * num_bytes / 1024) * 1e-6
    return payload_s + overhead_s


class FabricError(ValueError):
    """Raised on invalid fabric operations."""


@dataclass
class Channel:
    """A configured point-to-point channel between two endpoints."""

    endpoint_a: str
    endpoint_b: str
    kind: LinkKind
    mtu_bytes: int = 1500

    def pair(self) -> FrozenSet[str]:
        return frozenset((self.endpoint_a, self.endpoint_b))

    def transfer_seconds(self, num_bytes: int) -> float:
        base = transfer_seconds(self.kind, num_bytes)
        # Small MTUs add per-packet overhead on Ethernet-class links.
        if self.kind in (LinkKind.ETH_1G, LinkKind.ETH_10G):
            packets = max(1, -(-num_bytes // self.mtu_bytes))
            base += packets * 1e-6  # ~1 us per-packet processing
        return base


class Fabric:
    """Run-time reconfigurable interconnect between microservers.

    Endpoints attach/detach as modules are exchanged; channels between
    endpoints can be created, re-parameterized (e.g. MTU) and moved to a
    different link class while the system runs.
    """

    def __init__(self, available_links: Sequence[LinkKind]) -> None:
        if not available_links:
            raise FabricError("fabric needs at least one link class")
        self.available_links: Tuple[LinkKind, ...] = tuple(available_links)
        self.endpoints: Set[str] = set()
        self.channels: List[Channel] = []

    # -- endpoints ---------------------------------------------------------------

    def attach(self, endpoint: str) -> None:
        if endpoint in self.endpoints:
            raise FabricError(f"endpoint {endpoint!r} already attached")
        self.endpoints.add(endpoint)

    def detach(self, endpoint: str) -> None:
        if endpoint not in self.endpoints:
            raise FabricError(f"endpoint {endpoint!r} not attached")
        self.endpoints.discard(endpoint)
        self.channels = [c for c in self.channels
                         if endpoint not in (c.endpoint_a, c.endpoint_b)]

    # -- channels -----------------------------------------------------------------

    def connect(self, a: str, b: str, kind: Optional[LinkKind] = None,
                mtu_bytes: int = 1500) -> Channel:
        if a == b:
            raise FabricError("cannot connect an endpoint to itself")
        for endpoint in (a, b):
            if endpoint not in self.endpoints:
                raise FabricError(f"endpoint {endpoint!r} not attached")
        kind = kind or self.available_links[0]
        if kind not in self.available_links:
            raise FabricError(
                f"link class {kind.value!r} not available on this fabric"
            )
        if any(c.pair() == frozenset((a, b)) for c in self.channels):
            raise FabricError(f"channel {a!r}<->{b!r} already exists")
        channel = Channel(a, b, kind, mtu_bytes)
        self.channels.append(channel)
        return channel

    def channel(self, a: str, b: str) -> Channel:
        for c in self.channels:
            if c.pair() == frozenset((a, b)):
                return c
        raise FabricError(f"no channel between {a!r} and {b!r}")

    def reconfigure(self, a: str, b: str, kind: Optional[LinkKind] = None,
                    mtu_bytes: Optional[int] = None) -> Channel:
        """Re-parameterize a live channel (run-time reconfiguration)."""
        channel = self.channel(a, b)
        if kind is not None:
            if kind not in self.available_links:
                raise FabricError(
                    f"link class {kind.value!r} not available on this fabric"
                )
            channel.kind = kind
        if mtu_bytes is not None:
            if mtu_bytes < 64:
                raise FabricError("MTU must be at least 64 bytes")
            channel.mtu_bytes = mtu_bytes
        return channel

    def transfer_seconds(self, a: str, b: str, num_bytes: int) -> float:
        return self.channel(a, b).transfer_seconds(num_bytes)

    def topology(self) -> Dict[str, List[str]]:
        """Adjacency view of the current channel configuration."""
        adj: Dict[str, List[str]] = {e: [] for e in sorted(self.endpoints)}
        for c in self.channels:
            adj[c.endpoint_a].append(c.endpoint_b)
            adj[c.endpoint_b].append(c.endpoint_a)
        return adj
