"""Roofline-style performance and energy model for DL accelerators.

This is the measurement substitute for the paper's physical testbed
(DESIGN.md substitution table): given an accelerator spec and an IR graph,
it predicts per-inference latency, achieved GOPS, average power and energy,
using a per-operator roofline:

    time(node) = max(ops / effective_peak, bytes / memory_bw) + dispatch

with an effective peak that saturates with batch size,

    effective_peak = peak(dtype) * util_max * batch / (batch + batch_k).

Weight traffic is counted once per *batch* (weights are reused across the
batch), which is precisely what makes throughput grow from B1 to B8 on
weight-heavy models — the batch-sweep behaviour Fig. 4 shows.

Power blends compute and memory busy fractions into the TDP envelope; the
coefficients are calibrated so CPU-class devices run near TDP while
latency-bound accelerators idle between dispatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.graph import Graph
from ..ir.tensor import DType
from .accelerators import AcceleratorSpec, DeviceFamily

# Precisions the toolchain will try, in the order a vendor toolchain
# prefers them (paper Sec. II-C: INT8 where supported, else FP16, else FP32).
_PRECISION_PREFERENCE = (DType.INT8, DType.FP16, DType.FP32)


def preferred_dtype(spec: AcceleratorSpec) -> DType:
    """The precision a vendor toolchain would pick for ``spec``."""
    for dtype in _PRECISION_PREFERENCE:
        if spec.supports(dtype):
            return dtype
    return spec.best_precision


@dataclass(frozen=True)
class LayerPrediction:
    """Predicted timing of one node for a whole batch."""

    name: str
    op_type: str
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds) + self.overhead_seconds


@dataclass(frozen=True)
class Prediction:
    """Predicted execution of a model on one platform at one batch size."""

    platform: str
    model: str
    batch: int
    dtype: DType
    batch_latency_s: float
    total_ops: int
    avg_power_w: float
    fits_memory: bool
    layers: Tuple[LayerPrediction, ...] = ()

    @property
    def latency_s(self) -> float:
        """Per-inference latency (batch latency amortized)."""
        return self.batch_latency_s / self.batch

    @property
    def throughput_gops(self) -> float:
        """Achieved GOPS over the batch (the y-axis of Fig. 4)."""
        return self.total_ops / self.batch_latency_s / 1e9

    @property
    def fps(self) -> float:
        return self.batch / self.batch_latency_s

    @property
    def energy_per_inference_j(self) -> float:
        return self.avg_power_w * self.latency_s

    @property
    def efficiency_gops_per_w(self) -> float:
        return self.throughput_gops / self.avg_power_w


class RooflineModel:
    """Analytic execution model bound to one accelerator spec."""

    def __init__(self, spec: AcceleratorSpec) -> None:
        self.spec = spec

    # -- core -------------------------------------------------------------------

    def effective_peak_gops(self, dtype: DType, batch: int) -> float:
        """Sustained compute ceiling at this precision and batch size."""
        if not self.spec.supports(dtype):
            raise ValueError(
                f"{self.spec.name} does not support {dtype.value}"
            )
        saturation = batch / (batch + self.spec.batch_k) if self.spec.batch_k \
            else 1.0
        return self.spec.peak_gops[dtype] * self.spec.util_max * saturation

    def predict(self, graph: Graph, batch: int = 1,
                dtype: Optional[DType] = None,
                keep_layers: bool = False) -> Prediction:
        """Predict execution of ``graph`` (built at batch 1) at ``batch``.

        ``dtype`` defaults to the platform's preferred precision.  The
        graph's FP32 costs are rescaled to the target precision: activation
        and weight traffic shrink with the element width, operation count is
        unchanged (a MAC is a MAC at any precision).
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        dtype = dtype or preferred_dtype(self.spec)
        scale = dtype.bits / 32.0
        peak_ops = self.effective_peak_gops(dtype, batch) * 1e9
        bw_bytes = self.spec.memory_bw_gbs * 1e9

        layers: List[LayerPrediction] = []
        total_ops = 0
        compute_s = 0.0
        memory_s = 0.0
        overhead_s = 0.0
        batch_latency = 0.0
        specs = graph.infer_specs()
        weight_bytes_total = 0
        for node in graph.nodes:
            cost = graph.node_cost(node, specs)
            ops = cost.ops * batch
            act_bytes = cost.activation_bytes * batch * scale
            w_bytes = cost.weight_bytes * scale  # streamed once per batch
            c = ops / peak_ops
            m = (act_bytes + w_bytes) / bw_bytes
            layer = LayerPrediction(node.name, node.op_type, c, m,
                                    self.spec.node_overhead_s)
            if keep_layers:
                layers.append(layer)
            total_ops += ops
            compute_s += c
            memory_s += m
            overhead_s += self.spec.node_overhead_s
            batch_latency += layer.seconds
            weight_bytes_total += cost.weight_bytes

        fits = (weight_bytes_total * scale) <= self.spec.memory_gb * 1e9
        power = self._average_power(compute_s, memory_s, batch_latency)
        return Prediction(
            platform=self.spec.name,
            model=graph.name,
            batch=batch,
            dtype=dtype,
            batch_latency_s=batch_latency,
            total_ops=int(total_ops),
            avg_power_w=power,
            fits_memory=fits,
            layers=tuple(layers),
        )

    def _average_power(self, compute_s: float, memory_s: float,
                       latency_s: float) -> float:
        """Blend busy fractions into the TDP envelope.

        Compute activity dominates dynamic power; memory traffic and a
        fixed scheduling floor contribute the rest.  Clamped to TDP.
        """
        if latency_s <= 0:
            return self.spec.idle_w
        compute_busy = min(1.0, compute_s / latency_s)
        memory_busy = min(1.0, memory_s / latency_s)
        activity = min(1.0, 0.60 * compute_busy + 0.30 * memory_busy + 0.10)
        return self.spec.idle_w + (self.spec.tdp_w - self.spec.idle_w) * activity

    # -- convenience -----------------------------------------------------------------

    def latency_seconds(self, graph: Graph, batch: int = 1,
                        dtype: Optional[DType] = None) -> float:
        """Scalar objective for the hardware-aware optimizer."""
        return self.predict(graph, batch=batch, dtype=dtype).latency_s

    def sweep_batches(self, graph: Graph, batches: Sequence[int] = (1, 4, 8),
                      dtype: Optional[DType] = None) -> List[Prediction]:
        return [self.predict(graph, batch=b, dtype=dtype) for b in batches]


def predict_on(spec: AcceleratorSpec, graph: Graph, batch: int = 1,
               dtype: Optional[DType] = None) -> Prediction:
    """One-shot convenience wrapper."""
    return RooflineModel(spec).predict(graph, batch=batch, dtype=dtype)


@dataclass
class NaivePeakModel:
    """Strawman latency model: ops / vendor peak, ignoring memory and dispatch.

    This is the "theoretical speed-up" estimator the paper warns about
    (Sec. III); the hardware-aware ablation benchmark contrasts it with
    :class:`RooflineModel`.
    """

    spec: AcceleratorSpec

    def latency_seconds(self, graph: Graph, batch: int = 1,
                        dtype: Optional[DType] = None) -> float:
        dtype = dtype or preferred_dtype(self.spec)
        ops = graph.total_cost().ops * batch
        return ops / (self.spec.peak_gops[dtype] * 1e9) / batch
