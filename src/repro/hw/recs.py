"""RECS platform models: RECS|Box, t.RECS, and uRECS chassis.

The paper's hardware pillar (Sec. II): three modular chassis spanning cloud
(RECS|Box), near-edge (t.RECS) and embedded/far-edge (uRECS, < 15 W).  A
chassis accepts microservers in specific form factors, enforces a power
budget, and provides the communication fabric.  Composition errors (wrong
form factor, blown power budget, full slots) are rejected — the "modular
and scalable" claim means arbitrary *valid* populations must compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .microserver import Microserver, get_form_factor
from .network import Fabric, LinkKind


class CompositionError(ValueError):
    """Raised when a chassis population violates platform constraints."""


@dataclass(frozen=True)
class ChassisSpec:
    """Static description of a RECS chassis variant."""

    name: str
    num_slots: int
    accepted_form_factors: Tuple[str, ...]
    power_budget_w: float
    base_power_w: float          # fans, BMC, switch fabric
    fabric_links: Tuple[LinkKind, ...]
    target: str                  # cloud / near edge / far edge

    def accepts(self, microserver: Microserver) -> bool:
        return microserver.form_factor.lower() in tuple(
            ff.lower() for ff in self.accepted_form_factors
        )


RECS_BOX = ChassisSpec(
    name="RECS|Box",
    num_slots=15,
    accepted_form_factors=("COM-Express-Basic", "COM-Express-Compact",
                           "COM-Express-Mini"),
    power_budget_w=1600.0,
    base_power_w=120.0,
    fabric_links=(LinkKind.ETH_1G, LinkKind.ETH_10G, LinkKind.HIGH_SPEED_LL),
    target="cloud",
)

T_RECS = ChassisSpec(
    name="t.RECS",
    num_slots=3,
    accepted_form_factors=("COM-HPC-Server", "COM-HPC-Client",
                           "COM-Express-Basic"),
    power_budget_w=900.0,
    base_power_w=60.0,
    fabric_links=(LinkKind.ETH_1G, LinkKind.ETH_10G, LinkKind.HIGH_SPEED_LL),
    target="near edge",
)

U_RECS = ChassisSpec(
    name="uRECS",
    num_slots=2,
    accepted_form_factors=("SMARC", "Jetson-SODIMM", "Kria-SOM",
                           "RaspberryPi-CM4"),
    power_budget_w=15.0,
    base_power_w=1.5,
    fabric_links=(LinkKind.ETH_1G, LinkKind.USB3, LinkKind.M2),
    target="embedded / far edge",
)

ALL_CHASSIS: Tuple[ChassisSpec, ...] = (RECS_BOX, T_RECS, U_RECS)


@dataclass
class SlotState:
    """Occupancy of one chassis slot."""

    index: int
    microserver: Optional[Microserver] = None
    powered: bool = False


class Chassis:
    """A populated RECS chassis instance.

    Supports run-time exchange of compute resources (paper Sec. II-A:
    "easy exchange of computing resources and seamless switching between
    the different heterogeneous components").
    """

    def __init__(self, spec: ChassisSpec) -> None:
        self.spec = spec
        self.slots: List[SlotState] = [SlotState(i) for i in range(spec.num_slots)]
        self.fabric = Fabric(spec.fabric_links)

    # -- population ------------------------------------------------------------

    def insert(self, microserver: Microserver,
               slot: Optional[int] = None) -> int:
        """Insert a microserver; returns the slot index used."""
        if not self.spec.accepts(microserver):
            raise CompositionError(
                f"{self.spec.name} does not accept form factor "
                f"{microserver.form_factor!r} (accepted: "
                f"{list(self.spec.accepted_form_factors)})"
            )
        if slot is None:
            free = [s for s in self.slots if s.microserver is None]
            if not free:
                raise CompositionError(f"{self.spec.name}: all slots occupied")
            target = free[0]
        else:
            target = self._slot(slot)
            if target.microserver is not None:
                raise CompositionError(
                    f"{self.spec.name}: slot {slot} already occupied"
                )
        budget_after = self.worst_case_power_w + microserver.tdp_w
        if budget_after > self.spec.power_budget_w:
            raise CompositionError(
                f"{self.spec.name}: inserting {microserver.name} would draw "
                f"{budget_after:.1f} W > budget {self.spec.power_budget_w} W"
            )
        target.microserver = microserver
        target.powered = True
        self.fabric.attach(microserver.name)
        return target.index

    def remove(self, slot: int) -> Microserver:
        """Hot-remove the microserver in ``slot``."""
        state = self._slot(slot)
        if state.microserver is None:
            raise CompositionError(f"{self.spec.name}: slot {slot} is empty")
        removed = state.microserver
        state.microserver = None
        state.powered = False
        self.fabric.detach(removed.name)
        return removed

    def exchange(self, slot: int, replacement: Microserver) -> Microserver:
        """Swap the module in ``slot`` for ``replacement`` (run-time exchange)."""
        old = self.remove(slot)
        try:
            self.insert(replacement, slot)
        except CompositionError:
            self.insert(old, slot)  # roll back to a consistent state
            raise
        return old

    def set_powered(self, slot: int, powered: bool) -> None:
        state = self._slot(slot)
        if state.microserver is None:
            raise CompositionError(f"{self.spec.name}: slot {slot} is empty")
        state.powered = powered

    def _slot(self, index: int) -> SlotState:
        if not 0 <= index < len(self.slots):
            raise CompositionError(
                f"{self.spec.name}: slot {index} out of range "
                f"(0..{len(self.slots) - 1})"
            )
        return self.slots[index]

    # -- accounting ------------------------------------------------------------------

    @property
    def microservers(self) -> List[Microserver]:
        return [s.microserver for s in self.slots if s.microserver is not None]

    @property
    def worst_case_power_w(self) -> float:
        """Base power plus TDP of every inserted module (budget check basis)."""
        return self.spec.base_power_w + sum(
            s.microserver.tdp_w for s in self.slots if s.microserver
        )

    @property
    def idle_power_w(self) -> float:
        return self.spec.base_power_w + sum(
            s.microserver.idle_w for s in self.slots
            if s.microserver and s.powered
        )

    def inventory(self) -> str:
        """Human-readable chassis population table."""
        lines = [
            f"{self.spec.name} ({self.spec.target}): "
            f"{len(self.microservers)}/{self.spec.num_slots} slots, "
            f"worst-case {self.worst_case_power_w:.1f} W / "
            f"{self.spec.power_budget_w:.0f} W budget"
        ]
        for state in self.slots:
            if state.microserver is None:
                lines.append(f"  slot {state.index}: (empty)")
            else:
                ms = state.microserver
                power = "on" if state.powered else "off"
                lines.append(
                    f"  slot {state.index}: {ms.name} [{ms.form_factor}] "
                    f"{ms.spec.name} {ms.tdp_w:.0f} W ({power})"
                )
        return "\n".join(lines)


def build_reference_urecs() -> Chassis:
    """The uRECS population used by the embedded use cases (< 15 W total)."""
    from .microserver import reference_microserver

    chassis = Chassis(U_RECS)
    chassis.insert(reference_microserver("zu3-smarc"))
    chassis.insert(reference_microserver("imx8m-smarc"))
    return chassis


def build_reference_trecs() -> Chassis:
    """A t.RECS population for near-edge offload targets."""
    from .microserver import reference_microserver

    chassis = Chassis(T_RECS)
    chassis.insert(reference_microserver("epyc-com-express"))
    chassis.insert(reference_microserver("xeon-d-com-express"))
    return chassis
