"""Computer-on-Module form factors and microserver definitions (Fig. 2).

The RECS platforms are populated with exchangeable microservers built on
standard COM form factors.  Fig. 2 of the paper arranges these form factors
by footprint and compute performance, from credit-card modules (Raspberry
Pi CM, Jetson SO-DIMM) through SMARC and COM Express up to COM-HPC Server.
This module encodes that catalog: physical size, power envelope, supported
CPU architectures, and the performance band each form factor targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from .accelerators import AcceleratorSpec, get_accelerator


class Architecture(Enum):
    X86 = "x86"
    ARM = "arm"
    RISCV = "riscv"
    FPGA_SOC = "fpga-soc"
    GPU_SOC = "gpu-soc"


class PerformanceClass(Enum):
    """Compute band a form factor targets (the x-axis grouping of Fig. 2)."""

    EMBEDDED = "embedded"      # < 15 W
    LOW_POWER = "low-power"    # 15 - 35 W
    MID_RANGE = "mid-range"    # 35 - 100 W
    HIGH_END = "high-end"      # > 100 W


@dataclass(frozen=True)
class ComFormFactor:
    """A Computer-on-Module standard."""

    name: str
    width_mm: float
    height_mm: float
    max_power_w: float
    architectures: Tuple[Architecture, ...]
    performance_class: PerformanceClass
    connector: str
    year: int

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm


_FORM_FACTORS: Dict[str, ComFormFactor] = {}


def register_form_factor(ff: ComFormFactor) -> ComFormFactor:
    if ff.name.lower() in _FORM_FACTORS:
        raise ValueError(f"form factor {ff.name!r} already registered")
    _FORM_FACTORS[ff.name.lower()] = ff
    return ff


def get_form_factor(name: str) -> ComFormFactor:
    try:
        return _FORM_FACTORS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown form factor {name!r}") from None


def form_factors() -> List[ComFormFactor]:
    """All registered form factors, smallest footprint first (Fig. 2 order)."""
    return sorted(_FORM_FACTORS.values(), key=lambda f: f.area_mm2)


for _ff in (
    ComFormFactor("RaspberryPi-CM4", 55, 40, 7,
                  (Architecture.ARM,), PerformanceClass.EMBEDDED,
                  "2x 100-pin mezzanine", 2020),
    ComFormFactor("Jetson-SODIMM", 69.6, 45, 15,
                  (Architecture.GPU_SOC,), PerformanceClass.EMBEDDED,
                  "260-pin SO-DIMM", 2019),
    ComFormFactor("Kria-SOM", 77, 60, 15,
                  (Architecture.FPGA_SOC,), PerformanceClass.EMBEDDED,
                  "2x 240-pin connector", 2021),
    ComFormFactor("Qseven", 70, 70, 12,
                  (Architecture.X86, Architecture.ARM),
                  PerformanceClass.EMBEDDED, "MXM 230-pin edge", 2008),
    ComFormFactor("SMARC", 82, 50, 15,
                  (Architecture.X86, Architecture.ARM, Architecture.FPGA_SOC),
                  PerformanceClass.EMBEDDED, "314-pin MXM edge", 2012),
    ComFormFactor("COM-Express-Mini", 84, 55, 30,
                  (Architecture.X86,), PerformanceClass.LOW_POWER,
                  "220-pin AB", 2012),
    ComFormFactor("COM-Express-Compact", 95, 95, 58,
                  (Architecture.X86,), PerformanceClass.MID_RANGE,
                  "440-pin ABCD", 2010),
    ComFormFactor("COM-Express-Basic", 125, 95, 100,
                  (Architecture.X86,), PerformanceClass.MID_RANGE,
                  "440-pin ABCD", 2005),
    ComFormFactor("COM-HPC-Client", 120, 120, 150,
                  (Architecture.X86, Architecture.ARM),
                  PerformanceClass.HIGH_END, "2x 400-pin", 2020),
    ComFormFactor("COM-HPC-Server", 160, 160, 300,
                  (Architecture.X86, Architecture.ARM),
                  PerformanceClass.HIGH_END, "2x 400-pin", 2020),
):
    register_form_factor(_ff)


@dataclass(frozen=True)
class Microserver:
    """A populated module: a form factor carrying a compute device.

    ``accelerator`` names an entry in the accelerator catalog; its TDP must
    fit inside the form factor's power envelope (checked at construction).
    """

    name: str
    form_factor: str
    accelerator: str
    dram_gb: float = 4.0
    adaptor_pcb: bool = False

    def __post_init__(self) -> None:
        ff = get_form_factor(self.form_factor)
        spec = self.spec
        if spec.tdp_w > ff.max_power_w:
            raise ValueError(
                f"{self.name}: {spec.name} TDP {spec.tdp_w} W exceeds "
                f"{ff.name} envelope {ff.max_power_w} W"
            )

    @property
    def spec(self) -> AcceleratorSpec:
        return get_accelerator(self.accelerator)

    @property
    def form(self) -> ComFormFactor:
        return get_form_factor(self.form_factor)

    @property
    def tdp_w(self) -> float:
        return self.spec.tdp_w

    @property
    def idle_w(self) -> float:
        return self.spec.idle_w


# Reference microservers assembled from catalog parts — the populations the
# project actually deploys (paper Sec. II-A).
REFERENCE_MICROSERVERS: Tuple[Microserver, ...] = (
    Microserver("xeon-d-com-express", "COM-Express-Basic", "D1577", 32),
    Microserver("epyc-com-express", "COM-Express-Basic", "Epyc3451", 64),
    Microserver("xavier-nx-module", "Jetson-SODIMM", "XavierNX", 8),
    Microserver("tx2-module", "Jetson-SODIMM", "JetsonTX2", 8),
    Microserver("kria-k26-som", "Kria-SOM", "KriaK26", 4, adaptor_pcb=True),
    Microserver("rpi-cm4-module", "RaspberryPi-CM4", "RPi-CM4", 8,
                adaptor_pcb=True),
    Microserver("imx8m-smarc", "SMARC", "i.MX8M", 4),
    Microserver("zu3-smarc", "SMARC", "ZynqZU3", 2),
)


def reference_microserver(name: str) -> Microserver:
    for ms in REFERENCE_MICROSERVERS:
        if ms.name == name:
            return ms
    raise KeyError(f"unknown reference microserver {name!r}")
