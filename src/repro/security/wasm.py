"""A WebAssembly-like sandboxed runtime.

VEDLIoT builds trusted runtimes by executing WebAssembly inside TEEs
("an open-source WebAssembly runtime implementation to build a trusted
runtime environment", paper Sec. IV-C; the Twine system [17]).  This module
implements the sandbox half of that stack: a stack-based VM with linear
memory, structured control flow, host imports, and fuel accounting.  The
instruction set is a compact i32 subset of WebAssembly — enough to run real
algorithms (the Twine benchmark implements a key-value store in it).

Safety properties enforced: memory accesses are bounds-checked against the
module's linear memory, code cannot escape the sandbox except through
declared host imports, and execution is metered (fuel) so runaway guests
terminate deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

PAGE_SIZE = 65536
_MASK32 = 0xFFFFFFFF

Instr = Tuple  # ("op", *operands)


class WasmError(Exception):
    """Base class for VM errors."""


class TrapError(WasmError):
    """Guest trapped (out-of-bounds access, div by zero, unreachable...)."""


class OutOfFuelError(WasmError):
    """Fuel limit exhausted."""


class ValidationError(WasmError):
    """Module failed static checks."""


def _s32(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


@dataclass
class Function:
    """One guest function: parameter count, extra locals, body."""

    name: str
    num_params: int
    num_locals: int
    body: List[Instr]
    returns: int = 1


@dataclass
class Module:
    """A sandboxed module: functions plus linear memory size."""

    name: str
    functions: Dict[str, Function] = field(default_factory=dict)
    memory_pages: int = 1
    imports: Tuple[str, ...] = ()

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValidationError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def measurement_bytes(self) -> bytes:
        """Canonical encoding used to measure/attest the module."""
        parts: List[str] = [self.name, str(self.memory_pages)]
        for name in sorted(self.functions):
            fn = self.functions[name]
            parts.append(f"{name}/{fn.num_params}/{fn.num_locals}/{fn.returns}")
            parts.append(repr(fn.body))
        parts.extend(self.imports)
        return "|".join(parts).encode()


# Host import signature: (vm, args tuple) -> int result (or None).
HostFn = Callable[["Instance", Tuple[int, ...]], Optional[int]]


class _Branch(Exception):
    def __init__(self, depth: int) -> None:
        self.depth = depth


class _Return(Exception):
    pass


class Instance:
    """An instantiated module with its own linear memory and fuel meter."""

    def __init__(self, module: Module,
                 host: Optional[Dict[str, HostFn]] = None,
                 fuel: Optional[int] = None) -> None:
        host = host or {}
        missing = [imp for imp in module.imports if imp not in host]
        if missing:
            raise ValidationError(f"unresolved imports: {missing}")
        self.module = module
        self.host = host
        self.memory = bytearray(module.memory_pages * PAGE_SIZE)
        self.fuel = fuel
        self.instructions_executed = 0
        self.host_calls = 0

    # -- memory helpers -------------------------------------------------------

    def _check_bounds(self, address: int, size: int) -> None:
        if address < 0 or address + size > len(self.memory):
            raise TrapError(
                f"memory access out of bounds: {address}+{size} > "
                f"{len(self.memory)}"
            )

    def load32(self, address: int) -> int:
        self._check_bounds(address, 4)
        return int.from_bytes(self.memory[address:address + 4], "little")

    def store32(self, address: int, value: int) -> None:
        self._check_bounds(address, 4)
        self.memory[address:address + 4] = (value & _MASK32).to_bytes(4, "little")

    def load8(self, address: int) -> int:
        self._check_bounds(address, 1)
        return self.memory[address]

    def store8(self, address: int, value: int) -> None:
        self._check_bounds(address, 1)
        self.memory[address] = value & 0xFF

    def write_bytes(self, address: int, blob: bytes) -> None:
        self._check_bounds(address, len(blob))
        self.memory[address:address + len(blob)] = blob

    def read_bytes(self, address: int, size: int) -> bytes:
        self._check_bounds(address, size)
        return bytes(self.memory[address:address + size])

    # -- execution ----------------------------------------------------------------

    def invoke(self, name: str, *args: int) -> Optional[int]:
        """Call an exported function with i32 arguments."""
        fn = self.module.functions.get(name)
        if fn is None:
            raise WasmError(f"no function {name!r} in module {self.module.name!r}")
        if len(args) != fn.num_params:
            raise WasmError(
                f"{name} expects {fn.num_params} args, got {len(args)}"
            )
        stack: List[int] = []
        self._call(fn, [a & _MASK32 for a in args], stack)
        if fn.returns:
            return stack.pop() if stack else 0
        return None

    def _call(self, fn: Function, args: List[int], stack: List[int]) -> None:
        locals_ = args + [0] * fn.num_locals
        try:
            self._exec_block(fn.body, locals_, stack)
        except _Return:
            pass
        except _Branch:
            raise TrapError(f"branch out of function {fn.name!r}") from None

    def _exec_block(self, body: Sequence[Instr], locals_: List[int],
                    stack: List[int]) -> None:
        for instr in body:
            self.instructions_executed += 1
            if self.fuel is not None:
                self.fuel -= 1
                if self.fuel < 0:
                    raise OutOfFuelError(
                        f"module {self.module.name!r} ran out of fuel"
                    )
            op = instr[0]

            if op == "i32.const":
                stack.append(instr[1] & _MASK32)
            elif op == "local.get":
                stack.append(locals_[instr[1]])
            elif op == "local.set":
                locals_[instr[1]] = stack.pop()
            elif op == "local.tee":
                locals_[instr[1]] = stack[-1]
            elif op in _BINOPS:
                b = stack.pop()
                a = stack.pop()
                stack.append(_BINOPS[op](a, b))
            elif op in _UNOPS:
                stack.append(_UNOPS[op](stack.pop()))
            elif op == "i32.load":
                stack.append(self.load32(stack.pop() + instr[1]))
            elif op == "i32.store":
                value = stack.pop()
                self.store32(stack.pop() + instr[1], value)
            elif op == "i32.load8_u":
                stack.append(self.load8(stack.pop() + instr[1]))
            elif op == "i32.store8":
                value = stack.pop()
                self.store8(stack.pop() + instr[1], value)
            elif op == "block":
                try:
                    self._exec_block(instr[1], locals_, stack)
                except _Branch as branch:
                    if branch.depth:
                        raise _Branch(branch.depth - 1) from None
                    # br targeting a block exits it
            elif op == "loop":
                while True:
                    try:
                        self._exec_block(instr[1], locals_, stack)
                        break  # fall-through exits the loop
                    except _Branch as branch:
                        if branch.depth:
                            raise _Branch(branch.depth - 1) from None
                        continue  # br targeting a loop restarts it
            elif op == "if":
                condition = stack.pop()
                branch_body = instr[1] if condition else (
                    instr[2] if len(instr) > 2 else [])
                try:
                    self._exec_block(branch_body, locals_, stack)
                except _Branch as branch:
                    if branch.depth:
                        raise _Branch(branch.depth - 1) from None
            elif op == "br":
                raise _Branch(instr[1])
            elif op == "br_if":
                if stack.pop():
                    raise _Branch(instr[1])
            elif op == "return":
                raise _Return
            elif op == "call":
                callee = self.module.functions.get(instr[1])
                if callee is None:
                    raise TrapError(f"call to unknown function {instr[1]!r}")
                args = [stack.pop() for _ in range(callee.num_params)][::-1]
                self._call(callee, args, stack)
            elif op == "call_host":
                name = instr[1]
                arity = instr[2] if len(instr) > 2 else 0
                if name not in self.host:
                    raise TrapError(f"call to unknown host import {name!r}")
                args = tuple(stack.pop() for _ in range(arity))[::-1]
                self.host_calls += 1
                result = self.host[name](self, args)
                if result is not None:
                    stack.append(result & _MASK32)
            elif op == "drop":
                stack.pop()
            elif op == "nop":
                pass
            elif op == "unreachable":
                raise TrapError("unreachable executed")
            else:
                raise ValidationError(f"unknown instruction {op!r}")


def _div_s(a: int, b: int) -> int:
    sb = _s32(b)
    if sb == 0:
        raise TrapError("integer divide by zero")
    sa = _s32(a)
    if sa == -0x80000000 and sb == -1:
        raise TrapError("integer overflow in division")
    return int(sa / sb) & _MASK32


def _div_u(a: int, b: int) -> int:
    if b == 0:
        raise TrapError("integer divide by zero")
    return (a // b) & _MASK32


def _rem_u(a: int, b: int) -> int:
    if b == 0:
        raise TrapError("integer divide by zero")
    return (a % b) & _MASK32


_BINOPS: Dict[str, Callable[[int, int], int]] = {
    "i32.add": lambda a, b: (a + b) & _MASK32,
    "i32.sub": lambda a, b: (a - b) & _MASK32,
    "i32.mul": lambda a, b: (a * b) & _MASK32,
    "i32.div_s": _div_s,
    "i32.div_u": _div_u,
    "i32.rem_u": _rem_u,
    "i32.and": lambda a, b: a & b,
    "i32.or": lambda a, b: a | b,
    "i32.xor": lambda a, b: a ^ b,
    "i32.shl": lambda a, b: (a << (b & 31)) & _MASK32,
    "i32.shr_u": lambda a, b: a >> (b & 31),
    "i32.shr_s": lambda a, b: (_s32(a) >> (b & 31)) & _MASK32,
    "i32.eq": lambda a, b: int(a == b),
    "i32.ne": lambda a, b: int(a != b),
    "i32.lt_u": lambda a, b: int(a < b),
    "i32.lt_s": lambda a, b: int(_s32(a) < _s32(b)),
    "i32.gt_u": lambda a, b: int(a > b),
    "i32.gt_s": lambda a, b: int(_s32(a) > _s32(b)),
    "i32.le_u": lambda a, b: int(a <= b),
    "i32.ge_u": lambda a, b: int(a >= b),
    "i32.ge_s": lambda a, b: int(_s32(a) >= _s32(b)),
}

_UNOPS: Dict[str, Callable[[int], int]] = {
    "i32.eqz": lambda a: int(a == 0),
}
