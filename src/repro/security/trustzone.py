"""ARM TrustZone model: secure/normal worlds, OP-TEE-style trusted apps.

Paper Sec. IV-C: "TrustZone splits the operating system into two parts: the
normal and secure worlds.  Trusted applications can only run in the secure
world, and the operation necessary to change context between worlds is
rather complex and cannot be done at user-level …  The implementation is
based on a root-of-trust provided by the hardware and a secure boot
mechanism, preventing an attacker from substituting the trusted software."

The model captures exactly those mechanisms: a secure-boot chain that
verifies each image against the hardware root of trust before loading it,
a secure world that only accepts *verified* trusted applications, and an
SMC gate the normal world must use to invoke them (with a per-switch cost
counter, since world switches are expensive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from . import crypto
from .tee import Quote, TeeError, TrustedExecutionEnvironment

TrustedAppHandler = Callable[..., object]


@dataclass(frozen=True)
class SignedImage:
    """A boot-chain or trusted-app image with its vendor signature."""

    name: str
    payload: bytes
    signature: bytes

    @classmethod
    def create(cls, name: str, payload: bytes,
               vendor_key: crypto.SigningKey) -> "SignedImage":
        return cls(name, payload,
                   vendor_key.sign(crypto.measure(name.encode(), payload)))

    def verify(self, vendor_public: crypto.VerifyingKey) -> None:
        vendor_public.verify(crypto.measure(self.name.encode(), self.payload),
                             self.signature)


class SecureBootError(TeeError):
    """Raised when a boot-chain image fails verification."""


class SecureBoot:
    """Hardware root-of-trust boot chain.

    Each stage must verify before the next loads; a failed stage halts the
    chain, so an attacker cannot substitute the trusted OS (the property
    the paper's attestation relies on).
    """

    def __init__(self, vendor_public: crypto.VerifyingKey) -> None:
        self.vendor_public = vendor_public
        self.verified_stages: List[str] = []

    def boot_chain(self, images: List[SignedImage]) -> List[str]:
        self.verified_stages = []
        for image in images:
            try:
                image.verify(self.vendor_public)
            except crypto.SignatureError as exc:
                raise SecureBootError(
                    f"secure boot halted at stage {image.name!r}: {exc}"
                ) from exc
            self.verified_stages.append(image.name)
        return list(self.verified_stages)


@dataclass
class TrustedApp:
    """An OP-TEE-style trusted application: named commands in the secure world."""

    name: str
    code: bytes
    commands: Dict[str, TrustedAppHandler] = field(default_factory=dict)

    def measurement(self) -> bytes:
        return crypto.measure(b"trusted-app", self.name.encode(), self.code,
                              ",".join(sorted(self.commands)).encode())


class SecureWorld(TrustedExecutionEnvironment):
    """The TrustZone secure world running a trusted OS.

    Only boots if the secure-boot chain verified; trusted apps must be
    installed as signed images.  The world's measurement covers the boot
    chain and every installed app, so quotes attest the full secure stack.
    """

    def __init__(self, device_key: crypto.SigningKey,
                 secure_boot: SecureBoot) -> None:
        super().__init__(device_key)
        self.secure_boot = secure_boot
        self.apps: Dict[str, TrustedApp] = {}
        if not secure_boot.verified_stages:
            raise SecureBootError("secure world requires a verified boot chain")

    def install_app(self, image: SignedImage, app: TrustedApp) -> None:
        """Install a trusted app after verifying its image signature."""
        image.verify(self.secure_boot.vendor_public)
        if image.payload != app.code:
            raise TeeError(
                f"app {app.name!r} code does not match its signed image"
            )
        self.apps[app.name] = app

    def measurement(self) -> bytes:
        chain = ",".join(self.secure_boot.verified_stages).encode()
        app_digests = b"".join(
            self.apps[name].measurement() for name in sorted(self.apps)
        )
        return crypto.measure(b"secure-world", chain, app_digests)

    def _invoke(self, app_name: str, command: str, *args, **kwargs):
        app = self.apps.get(app_name)
        if app is None:
            raise TeeError(f"no trusted app {app_name!r}")
        handler = app.commands.get(command)
        if handler is None:
            raise TeeError(f"app {app_name!r} has no command {command!r}")
        return handler(*args, **kwargs)


class NormalWorld:
    """The rich OS side.  All secure services go through the SMC gate."""

    def __init__(self, secure_world: SecureWorld,
                 smc_cost_cycles: int = 3_500) -> None:
        self.secure_world = secure_world
        self.smc_cost_cycles = smc_cost_cycles
        self.world_switches = 0

    def smc(self, app_name: str, command: str, *args, **kwargs):
        """Secure Monitor Call: enter and leave the secure world (2 switches)."""
        self.world_switches += 2
        return self.secure_world._invoke(app_name, command, *args, **kwargs)

    def request_quote(self, nonce: bytes, user_data: bytes = b"") -> Quote:
        """Ask the secure world for an attestation quote (via SMC)."""
        self.world_switches += 2
        return self.secure_world.quote(nonce, user_data)

    @property
    def switch_overhead_cycles(self) -> int:
        return self.world_switches * self.smc_cost_cycles


def build_attested_device(
    vendor_key: crypto.SigningKey,
    device_key: crypto.SigningKey,
    apps: Optional[List[Tuple[TrustedApp, bytes]]] = None,
) -> Tuple[NormalWorld, SecureWorld]:
    """Boot a TrustZone device end to end: chain, secure world, apps.

    ``apps`` is a list of (app, code) pairs; each gets a vendor-signed
    image.  Returns the two worlds ready for SMC traffic.
    """
    boot_images = [
        SignedImage.create("bl1", b"first-stage-bootloader", vendor_key),
        SignedImage.create("bl2", b"second-stage-bootloader", vendor_key),
        SignedImage.create("optee-os", b"trusted-os-kernel", vendor_key),
    ]
    boot = SecureBoot(vendor_key.verifying_key())
    boot.boot_chain(boot_images)
    secure = SecureWorld(device_key, boot)
    for app, code in (apps or []):
        image = SignedImage.create(app.name, code, vendor_key)
        secure.install_app(image, app)
    return NormalWorld(secure), secure
