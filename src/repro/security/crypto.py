"""Cryptographic primitives for the security substrate.

Hashing and HMAC use :mod:`hashlib`/:mod:`hmac` (real constructions).
Asymmetric signatures are *simulated* with keyed MACs plus a key registry
standing in for PKI: a ``SigningKey`` holds secret material, and the
matching ``VerifyingKey`` can check tags.  This preserves the protocol
behaviour attestation needs (only the holder of the device key can produce
valid quotes; verifiers hold only public handles) without shipping an
asymmetric implementation — DESIGN.md records the substitution.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import os
from dataclasses import dataclass
from typing import Optional, Tuple

DIGEST_SIZE = 32


def sha256(data: bytes) -> bytes:
    """Plain SHA-256 digest."""
    return hashlib.sha256(data).digest()


def measure(*chunks: bytes) -> bytes:
    """Measurement over ordered chunks (length-prefixed to avoid splicing)."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(len(chunk).to_bytes(8, "little"))
        h.update(chunk)
    return h.digest()


def hmac(key: bytes, data: bytes) -> bytes:
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    return _hmac.compare_digest(a, b)


def random_bytes(n: int = 32) -> bytes:
    return os.urandom(n)


def kdf(master: bytes, label: str, context: bytes = b"") -> bytes:
    """Derive a subkey from ``master`` bound to ``label`` and ``context``."""
    return hmac(master, b"kdf|" + label.encode() + b"|" + context)


class SignatureError(ValueError):
    """Raised when signature verification fails."""


@dataclass(frozen=True)
class VerifyingKey:
    """Public handle capable of verifying signatures of one SigningKey."""

    key_id: bytes
    _mac_key: bytes  # shared with the signer; stands in for the public key

    def verify(self, message: bytes, signature: bytes) -> None:
        expected = hmac(self._mac_key, message)
        if not constant_time_equal(expected, signature):
            raise SignatureError("signature verification failed")


class SigningKey:
    """Secret signing key (simulated asymmetric keypair)."""

    def __init__(self, seed: Optional[bytes] = None) -> None:
        self._secret = seed if seed is not None else random_bytes()
        self.key_id = sha256(b"key-id|" + self._secret)[:16]

    def sign(self, message: bytes) -> bytes:
        return hmac(self._secret, message)

    def verifying_key(self) -> VerifyingKey:
        return VerifyingKey(self.key_id, self._secret)

    @classmethod
    def generate(cls) -> "SigningKey":
        return cls()


def generate_keypair(seed: Optional[bytes] = None
                     ) -> Tuple[SigningKey, VerifyingKey]:
    """Generate a (signing, verifying) pair."""
    sk = SigningKey(seed)
    return sk, sk.verifying_key()


class SealedBox:
    """Authenticated encryption bound to a key (stream-XOR + MAC, toy AEAD).

    Adequate for simulating sealed storage semantics: data sealed under one
    key cannot be read or undetectably modified under another.
    """

    def __init__(self, key: bytes) -> None:
        # Pre-hash the key: HMAC zero-pads short keys, which would make
        # keys differing only in trailing zero bytes equivalent.
        master = sha256(b"sealed-box|" + key)
        self._enc_key = kdf(master, "seal-enc")
        self._mac_key = kdf(master, "seal-mac")

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            out.extend(hmac(self._enc_key, nonce + counter.to_bytes(8, "little")))
            counter += 1
        return bytes(out[:length])

    def seal(self, plaintext: bytes) -> bytes:
        nonce = random_bytes(16)
        cipher = bytes(p ^ k for p, k in
                       zip(plaintext, self._keystream(nonce, len(plaintext))))
        tag = hmac(self._mac_key, nonce + cipher)
        return nonce + tag + cipher

    def unseal(self, blob: bytes) -> bytes:
        if len(blob) < 16 + DIGEST_SIZE:
            raise SignatureError("sealed blob too short")
        nonce, tag, cipher = blob[:16], blob[16:48], blob[48:]
        if not constant_time_equal(tag, hmac(self._mac_key, nonce + cipher)):
            raise SignatureError("sealed blob authentication failed")
        return bytes(c ^ k for c, k in
                     zip(cipher, self._keystream(nonce, len(cipher))))
