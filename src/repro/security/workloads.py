"""Guest workloads for the trusted-runtime evaluation (Twine, Txt-C).

The paper's evaluation runs SQLite inside an SGX enclave via WebAssembly
[17].  Our substitution (DESIGN.md) is a database-like workload we can
express in the Wasm subset: an open-addressing hash key-value store over
linear memory, with put/get/has/delete and linear probing — the inner loop
shape of a storage engine.  A native Python implementation of the *same*
algorithm over a bytearray provides the baseline, so the benchmark measures
runtime overhead (native vs. sandboxed vs. sandboxed-in-enclave), not
algorithmic differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .wasm import Function, Instance, Module

_HASH_MULT = 2654435761  # Knuth multiplicative hash constant
MISSING = 0xFFFFFFFF
_SLOT_BYTES = 12         # key(4) | value(4) | flag(4)
_BASE = 64               # slots start after a small scratch area


def build_kv_module(capacity_pow2: int = 12) -> Module:
    """Build the Wasm KV-store module with ``2**capacity_pow2`` slots."""
    capacity = 1 << capacity_pow2
    mask = capacity - 1
    table_bytes = _BASE + capacity * _SLOT_BYTES
    pages = -(-table_bytes // 65536)
    module = Module(name=f"kvstore-{capacity}", memory_pages=pages)

    def hash_to_idx(key_local: int, idx_local: int):
        return [
            ("local.get", key_local), ("i32.const", _HASH_MULT), ("i32.mul",),
            ("i32.const", mask), ("i32.and",), ("local.set", idx_local),
        ]

    def slot_addr(idx_local: int, addr_local: int):
        return [
            ("local.get", idx_local), ("i32.const", _SLOT_BYTES), ("i32.mul",),
            ("i32.const", _BASE), ("i32.add",), ("local.set", addr_local),
        ]

    def advance(idx_local: int, probe_local: int):
        """idx = (idx+1) & mask; probes += 1; continue loop while probes < cap."""
        return [
            ("local.get", idx_local), ("i32.const", 1), ("i32.add",),
            ("i32.const", mask), ("i32.and",), ("local.set", idx_local),
            ("local.get", probe_local), ("i32.const", 1), ("i32.add",),
            ("local.tee", probe_local),
            ("i32.const", capacity), ("i32.lt_u",), ("br_if", 0),
        ]

    # put(key, value) -> 1 stored / 0 table full
    # locals: 0=key 1=value 2=idx 3=probes 4=addr
    module.add_function(Function("put", num_params=2, num_locals=3, body=[
        *hash_to_idx(0, 2),
        ("i32.const", 0), ("local.set", 3),
        ("loop", [
            *slot_addr(2, 4),
            ("local.get", 4), ("i32.load", 8), ("i32.eqz",),
            ("if", [                                   # empty slot: claim it
                ("local.get", 4), ("local.get", 0), ("i32.store", 0),
                ("local.get", 4), ("local.get", 1), ("i32.store", 4),
                ("local.get", 4), ("i32.const", 1), ("i32.store", 8),
                ("i32.const", 1), ("return",),
            ]),
            ("local.get", 4), ("i32.load", 0), ("local.get", 0), ("i32.eq",),
            ("local.get", 4), ("i32.load", 8), ("i32.const", 1), ("i32.eq",),
            ("i32.and",),
            ("if", [                                   # live key match: update
                ("local.get", 4), ("local.get", 1), ("i32.store", 4),
                ("i32.const", 1), ("return",),
            ]),
            *advance(2, 3),
        ]),
        ("i32.const", 0),                              # table full
    ]))

    # get(key) -> value or MISSING
    # locals: 0=key 1=idx 2=probes 3=addr
    module.add_function(Function("get", num_params=1, num_locals=3, body=[
        *hash_to_idx(0, 1),
        ("i32.const", 0), ("local.set", 2),
        ("loop", [
            *slot_addr(1, 3),
            ("local.get", 3), ("i32.load", 8), ("i32.eqz",),
            ("if", [("i32.const", MISSING), ("return",)]),  # never-used slot
            ("local.get", 3), ("i32.load", 0), ("local.get", 0), ("i32.eq",),
            ("local.get", 3), ("i32.load", 8), ("i32.const", 1), ("i32.eq",),
            ("i32.and",),
            ("if", [("local.get", 3), ("i32.load", 4), ("return",)]),
            *advance(1, 2),
        ]),
        ("i32.const", MISSING),
    ]))

    # has(key) -> 0/1
    module.add_function(Function("has", num_params=1, num_locals=0, body=[
        ("local.get", 0), ("call", "get"),
        ("i32.const", MISSING), ("i32.ne",),
    ]))

    # delete(key) -> 1 removed / 0 missing (tombstone flag = 2)
    # locals: 0=key 1=idx 2=probes 3=addr
    module.add_function(Function("delete", num_params=1, num_locals=3, body=[
        *hash_to_idx(0, 1),
        ("i32.const", 0), ("local.set", 2),
        ("loop", [
            *slot_addr(1, 3),
            ("local.get", 3), ("i32.load", 8), ("i32.eqz",),
            ("if", [("i32.const", 0), ("return",)]),
            ("local.get", 3), ("i32.load", 0), ("local.get", 0), ("i32.eq",),
            ("local.get", 3), ("i32.load", 8), ("i32.const", 1), ("i32.eq",),
            ("i32.and",),
            ("if", [
                ("local.get", 3), ("i32.const", 2), ("i32.store", 8),
                ("i32.const", 1), ("return",),
            ]),
            *advance(1, 2),
        ]),
        ("i32.const", 0),
    ]))

    return module


class NativeKvStore:
    """The same open-addressing algorithm over a host bytearray.

    Mirrors the Wasm guest byte for byte so the Twine benchmark compares
    runtimes, not data structures.
    """

    def __init__(self, capacity_pow2: int = 12) -> None:
        self.capacity = 1 << capacity_pow2
        self.mask = self.capacity - 1
        self.memory = bytearray(_BASE + self.capacity * _SLOT_BYTES)

    def _load32(self, address: int) -> int:
        return int.from_bytes(self.memory[address:address + 4], "little")

    def _store32(self, address: int, value: int) -> None:
        self.memory[address:address + 4] = (value & 0xFFFFFFFF) \
            .to_bytes(4, "little")

    def put(self, key: int, value: int) -> int:
        idx = (key * _HASH_MULT) & self.mask
        for _ in range(self.capacity):
            addr = _BASE + idx * _SLOT_BYTES
            flag = self._load32(addr + 8)
            if flag == 0:
                self._store32(addr, key)
                self._store32(addr + 4, value)
                self._store32(addr + 8, 1)
                return 1
            if flag == 1 and self._load32(addr) == key:
                self._store32(addr + 4, value)
                return 1
            idx = (idx + 1) & self.mask
        return 0

    def get(self, key: int) -> int:
        idx = (key * _HASH_MULT) & self.mask
        for _ in range(self.capacity):
            addr = _BASE + idx * _SLOT_BYTES
            flag = self._load32(addr + 8)
            if flag == 0:
                return MISSING
            if flag == 1 and self._load32(addr) == key:
                return self._load32(addr + 4)
            idx = (idx + 1) & self.mask
        return MISSING

    def has(self, key: int) -> int:
        return int(self.get(key) != MISSING)

    def delete(self, key: int) -> int:
        idx = (key * _HASH_MULT) & self.mask
        for _ in range(self.capacity):
            addr = _BASE + idx * _SLOT_BYTES
            flag = self._load32(addr + 8)
            if flag == 0:
                return 0
            if flag == 1 and self._load32(addr) == key:
                self._store32(addr + 8, 2)
                return 1
            idx = (idx + 1) & self.mask
        return 0


@dataclass
class KvWorkloadResult:
    """Outcome of running the standard KV workload on some backend."""

    operations: int
    checksum: int
    wall_seconds: float


def run_kv_workload(backend, num_keys: int = 400, seed: int = 1) -> KvWorkloadResult:
    """Deterministic put/get/delete mix; returns an order-independent checksum.

    ``backend`` needs put/get/delete methods with the KV semantics above
    (NativeKvStore, a Wasm :class:`~repro.security.wasm.Instance` adapter,
    or a :class:`~repro.security.sgx.TrustedWasmRuntime` adapter).
    """
    import time

    state = seed & 0x7FFFFFFF
    keys = []
    for _ in range(num_keys):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        keys.append(state & 0xFFFFFF)
    start = time.perf_counter()
    checksum = 0
    operations = 0
    for i, key in enumerate(keys):
        backend.put(key, (key ^ 0xABCD) & 0xFFFFFFFF)
        operations += 1
    for key in keys:
        checksum = (checksum + backend.get(key)) & 0xFFFFFFFF
        operations += 1
    for key in keys[::3]:
        backend.delete(key)
        operations += 1
    for key in keys:
        checksum = (checksum ^ backend.get(key)) & 0xFFFFFFFF
        operations += 1
    wall = time.perf_counter() - start
    return KvWorkloadResult(operations, checksum, wall)


class WasmKvAdapter:
    """Adapts a Wasm instance (or trusted runtime) to the KV backend protocol."""

    def __init__(self, runtime) -> None:
        self._invoke = runtime.invoke

    def put(self, key: int, value: int) -> int:
        return self._invoke("put", key, value)

    def get(self, key: int) -> int:
        return self._invoke("get", key)

    def delete(self, key: int) -> int:
        return self._invoke("delete", key)
