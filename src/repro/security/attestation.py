"""Remote and distributed attestation.

Paper Sec. IV-C: "the project has focused on developing end-to-end trust
through a distributed attestation mechanism, secure execution and
communication of critical code (e.g. for monitors) on edge devices."

The verifier holds a registry of provisioned device keys and trusted code
measurements.  A challenge/response exchange (nonce -> quote) establishes
that a *specific* device runs *specific* code right now; replayed or
tampered quotes are rejected.  :class:`DistributedAttestation` chains the
primitive across a set of edge nodes so an application (e.g. the PAEB
offloading use case) can require that every node in its path is attested
before shipping sensor data to it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from . import crypto
from .tee import Quote, TrustedExecutionEnvironment


class AttestationError(RuntimeError):
    """Raised when a quote fails verification."""


@dataclass
class Challenge:
    """An outstanding verifier challenge."""

    nonce: bytes
    issued_at: float
    used: bool = False


class Verifier:
    """Holds trust anchors and verifies quotes against fresh challenges."""

    def __init__(self, max_challenge_age_s: float = 60.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.trusted_keys: Dict[bytes, crypto.VerifyingKey] = {}
        self.trusted_measurements: Set[bytes] = set()
        self.max_challenge_age_s = max_challenge_age_s
        self._clock = clock
        self._challenges: Dict[bytes, Challenge] = {}

    # -- provisioning ---------------------------------------------------------

    def trust_device(self, key: crypto.VerifyingKey) -> None:
        self.trusted_keys[key.key_id] = key

    def trust_measurement(self, measurement: bytes) -> None:
        self.trusted_measurements.add(measurement)

    # -- challenge/response -----------------------------------------------------

    def challenge(self) -> bytes:
        nonce = crypto.random_bytes(32)
        self._challenges[nonce] = Challenge(nonce, self._clock())
        return nonce

    def verify(self, quote: Quote) -> None:
        """Verify one quote; raises :class:`AttestationError` on any failure."""
        challenge = self._challenges.get(quote.nonce)
        if challenge is None:
            raise AttestationError("quote does not answer any known challenge")
        if challenge.used:
            raise AttestationError("challenge nonce already used (replay)")
        if self._clock() - challenge.issued_at > self.max_challenge_age_s:
            raise AttestationError("challenge expired")
        key = self.trusted_keys.get(quote.key_id)
        if key is None:
            raise AttestationError(
                f"quote signed by unknown device key {quote.key_id.hex()}"
            )
        try:
            key.verify(quote.signed_payload(), quote.signature)
        except crypto.SignatureError as exc:
            raise AttestationError(f"quote signature invalid: {exc}") from exc
        if quote.measurement not in self.trusted_measurements:
            raise AttestationError(
                f"measurement {quote.measurement.hex()[:16]}... is not trusted"
            )
        challenge.used = True

    def attest(self, tee: TrustedExecutionEnvironment,
               user_data: bytes = b"") -> Quote:
        """Full round-trip against a local TEE object (for tests/pipelines)."""
        nonce = self.challenge()
        quote = tee.quote(nonce, user_data)
        self.verify(quote)
        return quote


@dataclass
class NodeReport:
    """Attestation outcome for one node of a distributed system."""

    node: str
    ok: bool
    reason: str = ""


class DistributedAttestation:
    """End-to-end trust across a set of edge nodes.

    Each node exposes a TEE; the coordinator attests every node and yields
    the subset that verified.  Applications gate data distribution on this
    set (the automotive use case "integration of VEDLIoT's remote
    attestation approach", Sec. V-A).
    """

    def __init__(self, verifier: Verifier) -> None:
        self.verifier = verifier
        self.nodes: Dict[str, TrustedExecutionEnvironment] = {}

    def register_node(self, name: str,
                      tee: TrustedExecutionEnvironment) -> None:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already registered")
        self.nodes[name] = tee

    def attest_all(self) -> List[NodeReport]:
        reports: List[NodeReport] = []
        for name in sorted(self.nodes):
            try:
                self.verifier.attest(self.nodes[name], user_data=name.encode())
            except AttestationError as exc:
                reports.append(NodeReport(name, False, str(exc)))
            else:
                reports.append(NodeReport(name, True))
        return reports

    def trusted_nodes(self) -> List[str]:
        """Names of nodes that currently pass attestation."""
        return [report.node for report in self.attest_all() if report.ok]
