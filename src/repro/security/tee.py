"""Trusted Execution Environment abstractions.

Common interface for the two TEE families VEDLIoT targets (Sec. IV-C):
Intel SGX enclaves on x86 and TrustZone secure worlds on ARM, plus the
PMP-based isolation on RISC-V.  A TEE provides: a *measurement* of the
code it protects, *sealing* of data to that identity, and *quotes* —
signed statements binding a measurement to a challenge nonce, the building
block of remote attestation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from . import crypto


class TeeError(RuntimeError):
    """Raised on TEE lifecycle or security violations."""


@dataclass(frozen=True)
class Quote:
    """A signed attestation statement.

    ``measurement`` identifies the protected code, ``nonce`` binds the
    quote to one challenge (anti-replay), ``user_data`` lets the attested
    code bind application payloads (e.g. a session public key) into the
    quote, and ``signature`` is produced by the device's root-of-trust key.
    """

    measurement: bytes
    nonce: bytes
    user_data: bytes
    key_id: bytes
    signature: bytes

    def signed_payload(self) -> bytes:
        return crypto.measure(self.measurement, self.nonce, self.user_data)


class TrustedExecutionEnvironment(abc.ABC):
    """Base class for concrete TEEs."""

    def __init__(self, device_key: crypto.SigningKey) -> None:
        self._device_key = device_key

    @abc.abstractmethod
    def measurement(self) -> bytes:
        """Measurement (hash) of the protected code and initial data."""

    # -- attestation -------------------------------------------------------------

    def quote(self, nonce: bytes, user_data: bytes = b"") -> Quote:
        """Produce a quote over the current measurement.

        Signed with the device root-of-trust key — only provisioned
        hardware can produce acceptable quotes.
        """
        measurement = self.measurement()
        payload = crypto.measure(measurement, nonce, user_data)
        return Quote(
            measurement=measurement,
            nonce=nonce,
            user_data=user_data,
            key_id=self._device_key.key_id,
            signature=self._device_key.sign(payload),
        )

    # -- sealed storage -------------------------------------------------------------

    def _seal_key(self) -> bytes:
        """Sealing key bound to device and measurement (MRENCLAVE policy)."""
        return crypto.kdf(self._device_key.sign(b"seal-root"),
                          "seal", self.measurement())

    def seal(self, plaintext: bytes) -> bytes:
        """Seal data so only the same code on the same device can read it."""
        return crypto.SealedBox(self._seal_key()).seal(plaintext)

    def unseal(self, blob: bytes) -> bytes:
        try:
            return crypto.SealedBox(self._seal_key()).unseal(blob)
        except crypto.SignatureError as exc:
            raise TeeError(f"unseal failed: {exc}") from exc
