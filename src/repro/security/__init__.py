"""Security substrate: TEEs (SGX, TrustZone, PMP), attestation, Wasm sandbox."""

from .crypto import (
    SealedBox,
    SignatureError,
    SigningKey,
    VerifyingKey,
    generate_keypair,
    hmac,
    kdf,
    measure,
    random_bytes,
    sha256,
)
from .pmp import (
    PMP_L,
    PMP_R,
    PMP_W,
    PMP_X,
    AddressMatching,
    PmpEntry,
    PmpUnit,
    napot_addr,
)
from .tee import Quote, TeeError, TrustedExecutionEnvironment
from .sgx import (
    Enclave,
    EnclaveStats,
    TransitionCosts,
    TrustedWasmRuntime,
)
from .trustzone import (
    NormalWorld,
    SecureBoot,
    SecureBootError,
    SecureWorld,
    SignedImage,
    TrustedApp,
    build_attested_device,
)
from .attestation import (
    AttestationError,
    DistributedAttestation,
    NodeReport,
    Verifier,
)
from .wasm import (
    Function,
    Instance,
    Module,
    OutOfFuelError,
    TrapError,
    ValidationError,
    WasmError,
)

__all__ = [
    "SealedBox", "SignatureError", "SigningKey", "VerifyingKey",
    "generate_keypair", "hmac", "kdf", "measure", "random_bytes", "sha256",
    "PMP_L", "PMP_R", "PMP_W", "PMP_X", "AddressMatching", "PmpEntry",
    "PmpUnit", "napot_addr",
    "Quote", "TeeError", "TrustedExecutionEnvironment",
    "Enclave", "EnclaveStats", "TransitionCosts", "TrustedWasmRuntime",
    "NormalWorld", "SecureBoot", "SecureBootError", "SecureWorld",
    "SignedImage", "TrustedApp", "build_attested_device",
    "AttestationError", "DistributedAttestation", "NodeReport", "Verifier",
    "Function", "Instance", "Module", "OutOfFuelError", "TrapError",
    "ValidationError", "WasmError",
]
