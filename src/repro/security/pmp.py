"""RISC-V Physical Memory Protection (PMP) unit.

Reproduces the VEDLIoT security contribution described in Sec. IV-C: "a
highly optimized RISC-V Physical Memory Protection (PMP) unit that enables
secure processing by limiting the physical addresses accessible by
software … configurable in the highest privilege level (the machine mode)
and can be used to specify read, write and execute access privileges for a
specific memory region.  In small devices that only support machine mode
(M-mode) and user mode (U-mode), the PMP configurations can efficiently
ensure the secure execution of software."

Semantics follow the RISC-V privileged specification: OFF/TOR/NA4/NAPOT
address matching, lowest-numbered-entry priority, lock bits that bind
M-mode, and deny-by-default for U-mode when any entry is implemented.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Tuple

from ..simulator.memory import AccessType, AccessViolation, PrivilegeMode

PMP_R = 1 << 0
PMP_W = 1 << 1
PMP_X = 1 << 2
PMP_L = 1 << 7

_ACCESS_BITS = {
    AccessType.READ: PMP_R,
    AccessType.WRITE: PMP_W,
    AccessType.FETCH: PMP_X,
}


class AddressMatching(IntEnum):
    OFF = 0
    TOR = 1
    NA4 = 2
    NAPOT = 3


@dataclass
class PmpEntry:
    """One PMP entry: a cfg byte and an address register (word-granular)."""

    cfg: int = 0
    addr: int = 0  # pmpaddr value: physical address >> 2

    @property
    def matching(self) -> AddressMatching:
        return AddressMatching((self.cfg >> 3) & 0b11)

    @property
    def locked(self) -> bool:
        return bool(self.cfg & PMP_L)

    def permits(self, access: AccessType) -> bool:
        return bool(self.cfg & _ACCESS_BITS[access])

    def range(self, previous_addr: int) -> Optional[Tuple[int, int]]:
        """The [base, end) byte range this entry matches, or None if OFF."""
        mode = self.matching
        if mode is AddressMatching.OFF:
            return None
        if mode is AddressMatching.TOR:
            base = previous_addr << 2
            end = self.addr << 2
            return (base, end) if end > base else (0, 0)
        if mode is AddressMatching.NA4:
            base = self.addr << 2
            return (base, base + 4)
        # NAPOT: trailing ones encode the region size.
        trailing = 0
        value = self.addr
        while value & 1:
            trailing += 1
            value >>= 1
        size = 8 << trailing
        base = (self.addr & ~((1 << (trailing + 1)) - 1)) << 2
        return (base, base + size)


def napot_addr(base: int, size: int) -> int:
    """Encode a naturally-aligned power-of-two region into a pmpaddr value."""
    if size < 8 or size & (size - 1):
        raise ValueError("NAPOT size must be a power of two >= 8")
    if base % size:
        raise ValueError(f"base 0x{base:08x} not aligned to size 0x{size:x}")
    return (base >> 2) | ((size // 8) - 1)


class PmpUnit:
    """A bank of PMP entries with the priority/lock semantics of the spec."""

    def __init__(self, num_entries: int = 16) -> None:
        if num_entries not in (0, 16, 64):
            # Real implementations provide 0, 16 or 64; VexRiscv uses 16.
            raise ValueError("PMP banks come in 0, 16 or 64 entries")
        self.entries: List[PmpEntry] = [PmpEntry() for _ in range(num_entries)]
        self.denied_count = 0

    # -- configuration ---------------------------------------------------------

    def configure(self, index: int, cfg: int, addr: int) -> None:
        """Program one entry (M-mode only operation in hardware).

        Writes to locked entries are ignored, as are writes to the address
        register of an entry whose *successor* is a locked TOR entry.  The
        address is programmed before the cfg byte so that a cfg carrying
        the lock bit does not block its own address write.
        """
        entry = self._entry(index)
        self._write_addr(index, addr)
        if not entry.locked:
            entry.cfg = cfg & 0x9F  # WARL: reserved bits read as zero

    def write_addr(self, index: int, addr: int) -> None:
        self._write_addr(index, addr)

    def _write_addr(self, index: int, addr: int) -> None:
        entry = self._entry(index)
        if entry.locked:
            return
        successor = self.entries[index + 1] if index + 1 < len(self.entries) \
            else None
        if successor is not None and successor.locked and \
                successor.matching is AddressMatching.TOR:
            return
        entry.addr = addr & 0x3FFFFFFF

    def set_region(self, index: int, base: int, size: int,
                   permissions: int, lock: bool = False) -> None:
        """Convenience: program a NAPOT region with R/W/X permission bits."""
        cfg = (permissions & 0b111) | (AddressMatching.NAPOT << 3)
        if lock:
            cfg |= PMP_L
        self.configure(index, cfg, napot_addr(base, size))

    def _entry(self, index: int) -> PmpEntry:
        if not 0 <= index < len(self.entries):
            raise IndexError(f"PMP entry {index} out of range")
        return self.entries[index]

    # -- checking ------------------------------------------------------------------

    def check(self, address: int, size: int, access: AccessType,
              mode: PrivilegeMode) -> bool:
        """True if the access is permitted.

        Every byte of the access must be covered with permission; partial
        matches fail (matching the spec's requirement that an access
        matching only part of an entry is denied).
        """
        if not self.entries:
            return True
        for offset in range(0, size):
            if not self._check_byte(address + offset, access, mode):
                return False
        return True

    def _check_byte(self, address: int, access: AccessType,
                    mode: PrivilegeMode) -> bool:
        previous_addr = 0
        for entry in self.entries:
            rng = entry.range(previous_addr)
            previous_addr = entry.addr
            if rng is None:
                continue
            base, end = rng
            if base <= address < end:
                if mode is PrivilegeMode.MACHINE and not entry.locked:
                    return True
                return entry.permits(access)
        # No entry matched: M-mode default-allow, U-mode default-deny.
        return mode is PrivilegeMode.MACHINE

    def guard(self, address: int, size: int, access: AccessType,
              mode: PrivilegeMode) -> None:
        """Bus-guard adapter: raises :class:`AccessViolation` when denied."""
        if not self.check(address, size, access, mode):
            self.denied_count += 1
            raise AccessViolation(address, access, mode)
