"""SGX-style enclave model and the Twine-like trusted Wasm runtime.

Reproduces the paper's x86 security stack (Sec. IV-C): "The hardware
protection offered by Intel SGX enclaves is leveraged, and an open-source
WebAssembly runtime implementation to build a trusted runtime environment
… SQLite can be fully executed inside an SGX enclave via WebAssembly and
existing system interface, with small performance overheads."

The enclave model captures the SGX mechanisms that *cost* something:

* ECALL/OCALL world transitions (~8-12k cycles each on real SGX),
* EPC paging once the enclave working set exceeds the protected memory,
* measurement (MRENCLAVE) over the initial code/data,
* sealing bound to device + measurement (inherited from the TEE base).

:class:`TrustedWasmRuntime` is the Twine reproduction: a Wasm module runs
entirely inside the enclave; every host import the guest calls crosses the
boundary as an OCALL.  The benchmark (Txt-C) runs the same key-value-store
workload natively, in Wasm, and in Wasm-inside-enclave, and reports the
overhead factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from . import crypto
from .tee import TeeError, TrustedExecutionEnvironment
from .wasm import HostFn, Instance, Module

EcallHandler = Callable[..., object]
OcallHandler = Callable[..., object]


@dataclass(frozen=True)
class TransitionCosts:
    """Cycle costs of crossing the enclave boundary (real-SGX magnitudes)."""

    ecall_cycles: int = 8_000
    ocall_cycles: int = 8_400
    page_fault_cycles: int = 40_000
    clock_hz: float = 2.0e9


@dataclass
class EnclaveStats:
    """Counters the overhead model is computed from."""

    ecalls: int = 0
    ocalls: int = 0
    page_faults: int = 0

    def modeled_overhead_seconds(self, costs: TransitionCosts) -> float:
        cycles = (self.ecalls * costs.ecall_cycles
                  + self.ocalls * costs.ocall_cycles
                  + self.page_faults * costs.page_fault_cycles)
        return cycles / costs.clock_hz


class Enclave(TrustedExecutionEnvironment):
    """A protected execution compartment.

    Entry points (ECALLs) are registered at build time and included in the
    measurement; calling anything else is rejected.  Host services the
    enclave needs are OCALLs, also declared up front.
    """

    def __init__(self, name: str, code_measurement_input: bytes,
                 device_key: crypto.SigningKey,
                 epc_bytes: int = 96 * 1024 * 1024,
                 costs: TransitionCosts = TransitionCosts()) -> None:
        super().__init__(device_key)
        self.name = name
        self._code = code_measurement_input
        self.epc_bytes = epc_bytes
        self.costs = costs
        self.stats = EnclaveStats()
        self._ecalls: Dict[str, EcallHandler] = {}
        self._ocalls: Dict[str, OcallHandler] = {}
        self._heap_bytes = 0
        self._initialized = False
        self._destroyed = False

    # -- lifecycle ---------------------------------------------------------------

    def register_ecall(self, name: str, handler: EcallHandler) -> None:
        if self._initialized:
            raise TeeError("cannot add ECALLs after initialization "
                           "(they are part of the measurement)")
        self._ecalls[name] = handler

    def register_ocall(self, name: str, handler: OcallHandler) -> None:
        self._ocalls[name] = handler

    def initialize(self) -> bytes:
        """Finalize the enclave (EINIT); returns the measurement."""
        self._initialized = True
        return self.measurement()

    def destroy(self) -> None:
        self._destroyed = True

    def measurement(self) -> bytes:
        entries = ",".join(sorted(self._ecalls)).encode()
        return crypto.measure(b"sgx-enclave", self.name.encode(),
                              self._code, entries)

    # -- memory model -------------------------------------------------------------

    def touch_memory(self, nbytes: int) -> None:
        """Record enclave heap growth; beyond the EPC, pages fault in/out.

        SGX1 EPC paging costs tens of thousands of cycles per 4 KiB page;
        we charge one fault per page beyond the EPC limit.
        """
        self._heap_bytes += nbytes
        if self._heap_bytes > self.epc_bytes:
            overflow = self._heap_bytes - self.epc_bytes
            self.stats.page_faults += max(1, overflow // 4096)
            self._heap_bytes = self.epc_bytes

    # -- transitions ----------------------------------------------------------------

    def ecall(self, name: str, *args, **kwargs):
        """Enter the enclave through a registered entry point."""
        self._check_alive()
        if name not in self._ecalls:
            raise TeeError(f"enclave {self.name!r} has no ECALL {name!r}")
        self.stats.ecalls += 1
        return self._ecalls[name](*args, **kwargs)

    def ocall(self, name: str, *args, **kwargs):
        """Leave the enclave to run a host service."""
        self._check_alive()
        if name not in self._ocalls:
            raise TeeError(f"enclave {self.name!r} has no OCALL {name!r}")
        self.stats.ocalls += 1
        return self._ocalls[name](*args, **kwargs)

    def _check_alive(self) -> None:
        if not self._initialized:
            raise TeeError(f"enclave {self.name!r} is not initialized")
        if self._destroyed:
            raise TeeError(f"enclave {self.name!r} was destroyed")

    def modeled_overhead_seconds(self) -> float:
        return self.stats.modeled_overhead_seconds(self.costs)


class TrustedWasmRuntime:
    """Twine-style runtime: a Wasm module executing inside an enclave.

    The module's host imports become OCALLs; invoking a guest export is an
    ECALL.  The enclave measurement covers the module bytecode, so a remote
    verifier attests exactly the code that will run.
    """

    def __init__(self, module: Module, device_key: crypto.SigningKey,
                 host_imports: Optional[Dict[str, HostFn]] = None,
                 epc_bytes: int = 96 * 1024 * 1024,
                 costs: TransitionCosts = TransitionCosts(),
                 fuel: Optional[int] = None) -> None:
        self.module = module
        self.enclave = Enclave(
            name=f"twine:{module.name}",
            code_measurement_input=module.measurement_bytes(),
            device_key=device_key,
            epc_bytes=epc_bytes,
            costs=costs,
        )
        wrapped: Dict[str, HostFn] = {}
        for import_name in module.imports:
            handler = (host_imports or {}).get(import_name)
            if handler is None:
                raise TeeError(f"missing host import {import_name!r}")
            self.enclave.register_ocall(import_name, handler)
            wrapped[import_name] = self._make_ocall_bridge(import_name)
        self.instance = Instance(module, host=wrapped, fuel=fuel)
        self.enclave.touch_memory(len(self.instance.memory))
        for name in module.functions:
            self.enclave.register_ecall(name, self._make_ecall_bridge(name))
        self.enclave.initialize()

    def _make_ocall_bridge(self, name: str) -> HostFn:
        def bridge(instance: Instance, args: Tuple[int, ...]) -> Optional[int]:
            return self.enclave.ocall(name, instance, args)
        return bridge

    def _make_ecall_bridge(self, name: str):
        def bridge(*args: int):
            return self.instance.invoke(name, *args)
        return bridge

    # -- public API -------------------------------------------------------------------

    def invoke(self, function: str, *args: int):
        """Call a guest export through the enclave boundary."""
        return self.enclave.ecall(function, *args)

    def measurement(self) -> bytes:
        return self.enclave.measurement()

    def quote(self, nonce: bytes, user_data: bytes = b""):
        return self.enclave.quote(nonce, user_data)

    @property
    def stats(self) -> EnclaveStats:
        return self.enclave.stats

    def modeled_overhead_seconds(self) -> float:
        return self.enclave.modeled_overhead_seconds()
