"""repro: a full-stack reproduction of "VEDLIoT: Very Efficient Deep
Learning in IoT" (DATE 2022).

Subpackages
-----------
ir
    ONNX-like model graph IR, shape/cost inference, serialization, model zoo.
runtime
    Numpy reference executor, quantized kernels, profiler.
optim
    Optimizing toolchain: fusion, PTQ quantization, pruning, deep
    compression, hardware-aware search.
core
    Kenning-style deployment pipeline, training, measurements, reports.
hw
    Accelerator catalog (Fig. 3), roofline performance model (Fig. 4),
    COM form factors (Fig. 2), RECS chassis, interconnect, FPGA
    reconfiguration.
simulator
    Renode-style functional SoC simulation: RV32IM core, assembler, CFUs.
security
    TEEs (SGX-like enclaves, TrustZone, RISC-V PMP), remote attestation,
    Wasm sandbox, Twine-style trusted runtime.
safety
    Input-quality monitors, output robustness service, fault injection,
    architectural hybridization.
requirements
    The 2-D architectural framework for AIoT requirements engineering.
apps
    The three use cases: PAEB offloading, motor/arc monitoring, smart
    mirror.
datasets
    Synthetic data substrate (images, vibration, DC current, audio).
"""

__version__ = "1.0.0"

__all__ = [
    "ir", "runtime", "optim", "core", "hw", "simulator", "security",
    "safety", "requirements", "apps", "datasets",
]
