"""The VEDLIoT architectural framework for AIoT requirements engineering.

Paper Sec. IV-A: "The VEDLIoT architectural framework is organized by two
aspects: Clusters of concerns, and level of abstraction.  These aspects
form a 2-dimensional grid of architectural views … dependencies between the
architectural views only exist vertically between the views of the same
cluster of concern or horizontally between architectural views on the same
level of abstraction.  This reduces the complexity of the system design
challenge and allows for better traceability."

This module implements that grid: thirteen concern clusters x four
abstraction levels, architectural views placed on the grid, the
vertical-or-horizontal dependency rule (enforced — the framework's core
claim), requirements attached to views, and traceability/impact queries.
Middle-out engineering is supported: knowledge may be recorded at any level
at any time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class ConcernCluster(Enum):
    """The thirteen clusters of concerns the paper enumerates."""

    LOGICAL_BEHAVIOR = "logical behavior"
    PROCESS_BEHAVIOR = "process behavior"
    CONTEXT_AND_CONSTRAINTS = "context and constraints"
    LEARNING_SETTING = "learning setting"
    DEEP_LEARNING_MODEL = "deep learning model"
    HARDWARE = "hardware"
    INFORMATION = "information"
    COMMUNICATION = "communication"
    ETHICS = "ethical concerns"
    SAFETY = "safety"
    SECURITY = "security"
    PRIVACY = "privacy"
    ENERGY = "energy"


class AbstractionLevel(Enum):
    """The four levels of abstraction, top to bottom."""

    KNOWLEDGE = 0
    CONCEPTUAL = 1
    DESIGN = 2
    RUNTIME = 3


class DependencyRuleViolation(ValueError):
    """A dependency that is neither vertical nor horizontal."""


class FrameworkError(ValueError):
    """Structural errors (duplicate views, unknown ids, ...)."""


@dataclass
class Requirement:
    """A requirement owned by one architectural view."""

    req_id: str
    text: str
    status: str = "open"          # open | accepted | implemented | verified

    def __post_init__(self) -> None:
        if not self.req_id or not self.text:
            raise FrameworkError("requirement needs an id and text")


@dataclass
class ArchitecturalView:
    """One cell of the grid: a view on the system from (cluster, level)."""

    view_id: str
    cluster: ConcernCluster
    level: AbstractionLevel
    description: str = ""
    requirements: List[Requirement] = field(default_factory=list)
    knowledge_notes: List[str] = field(default_factory=list)

    def add_requirement(self, req_id: str, text: str) -> Requirement:
        if any(r.req_id == req_id for r in self.requirements):
            raise FrameworkError(f"duplicate requirement id {req_id!r}")
        requirement = Requirement(req_id, text)
        self.requirements.append(requirement)
        return requirement

    def record_knowledge(self, note: str) -> None:
        """Middle-out support: knowledge may arrive at any level, any time."""
        self.knowledge_notes.append(note)


@dataclass(frozen=True)
class Dependency:
    """A directed correspondence between two views, with rationale."""

    source: str
    target: str
    rationale: str = ""


class ArchitecturalFramework:
    """The 2-D grid with rule-checked dependencies and traceability."""

    def __init__(self, system_name: str) -> None:
        self.system_name = system_name
        self.views: Dict[str, ArchitecturalView] = {}
        self.dependencies: List[Dependency] = []

    # -- grid management --------------------------------------------------------

    def add_view(self, view_id: str, cluster: ConcernCluster,
                 level: AbstractionLevel,
                 description: str = "") -> ArchitecturalView:
        if view_id in self.views:
            raise FrameworkError(f"duplicate view id {view_id!r}")
        for existing in self.views.values():
            if existing.cluster is cluster and existing.level is level:
                raise FrameworkError(
                    f"grid cell ({cluster.value}, {level.name}) already "
                    f"holds view {existing.view_id!r}"
                )
        view = ArchitecturalView(view_id, cluster, level, description)
        self.views[view_id] = view
        return view

    def view(self, view_id: str) -> ArchitecturalView:
        try:
            return self.views[view_id]
        except KeyError:
            raise FrameworkError(f"unknown view {view_id!r}") from None

    def cell(self, cluster: ConcernCluster,
             level: AbstractionLevel) -> Optional[ArchitecturalView]:
        for view in self.views.values():
            if view.cluster is cluster and view.level is level:
                return view
        return None

    # -- the dependency rule -------------------------------------------------------

    def add_dependency(self, source_id: str, target_id: str,
                       rationale: str = "") -> Dependency:
        """Add a dependency; only vertical or horizontal ones are legal."""
        source = self.view(source_id)
        target = self.view(target_id)
        if source_id == target_id:
            raise DependencyRuleViolation("a view cannot depend on itself")
        vertical = source.cluster is target.cluster
        horizontal = source.level is target.level
        if not (vertical or horizontal):
            raise DependencyRuleViolation(
                f"dependency {source_id!r} -> {target_id!r} is diagonal: "
                f"({source.cluster.value}, {source.level.name}) -> "
                f"({target.cluster.value}, {target.level.name}); the "
                "framework only permits same-cluster (vertical) or "
                "same-level (horizontal) dependencies"
            )
        dependency = Dependency(source_id, target_id, rationale)
        self.dependencies.append(dependency)
        return dependency

    # -- traceability ------------------------------------------------------------------

    def dependents_of(self, view_id: str) -> List[str]:
        """Views that directly depend on ``view_id``."""
        self.view(view_id)
        return sorted(d.source for d in self.dependencies if d.target == view_id)

    def dependencies_of(self, view_id: str) -> List[str]:
        """Views that ``view_id`` directly depends on."""
        self.view(view_id)
        return sorted(d.target for d in self.dependencies if d.source == view_id)

    def impact_of_change(self, view_id: str) -> List[str]:
        """Transitive closure of views affected by changing ``view_id``."""
        self.view(view_id)
        affected: Set[str] = set()
        frontier = [view_id]
        while frontier:
            current = frontier.pop()
            for dep in self.dependencies:
                if dep.target == current and dep.source not in affected:
                    affected.add(dep.source)
                    frontier.append(dep.source)
        return sorted(affected)

    def trace_requirement(self, req_id: str) -> Tuple[str, List[str]]:
        """Locate a requirement and every view its realization can affect."""
        for view in self.views.values():
            if any(r.req_id == req_id for r in view.requirements):
                return view.view_id, self.impact_of_change(view.view_id)
        raise FrameworkError(f"requirement {req_id!r} not found in any view")

    def all_requirements(self) -> List[Tuple[str, Requirement]]:
        out: List[Tuple[str, Requirement]] = []
        for view in self.views.values():
            out.extend((view.view_id, r) for r in view.requirements)
        return out

    def unverified_requirements(self) -> List[Tuple[str, Requirement]]:
        return [(v, r) for v, r in self.all_requirements()
                if r.status != "verified"]

    # -- reporting -------------------------------------------------------------------------

    def grid_summary(self) -> str:
        """Textual rendering of the populated grid (the Fig. 1 style view)."""
        lines = [f"architectural framework for {self.system_name!r}: "
                 f"{len(self.views)} views, {len(self.dependencies)} dependencies"]
        for cluster in ConcernCluster:
            row = []
            for level in AbstractionLevel:
                view = self.cell(cluster, level)
                row.append(view.view_id if view else ".")
            if any(cell != "." for cell in row):
                lines.append(f"  {cluster.value:<24} " + " | ".join(
                    f"{cell:<18}" for cell in row))
        return "\n".join(lines)

    def validate(self) -> List[str]:
        """Consistency findings: dangling deps are impossible by construction;
        reports views with requirements but no dependencies (likely untraced)."""
        findings: List[str] = []
        linked = {d.source for d in self.dependencies} | \
                 {d.target for d in self.dependencies}
        for view in self.views.values():
            if view.requirements and view.view_id not in linked:
                findings.append(
                    f"view {view.view_id!r} holds requirements but is not "
                    "connected to any other view"
                )
        return findings
