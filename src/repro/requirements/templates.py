"""Prebuilt architectural frameworks for the VEDLIoT use cases.

These templates exercise the framework the way the project does: each use
case populates the concern/abstraction grid, wires the legal dependencies,
and attaches its driving requirements (the ones the paper states in
Sec. V).  The Fig. 1 benchmark renders these as the system-level view.
"""

from __future__ import annotations

from .framework import (
    AbstractionLevel,
    ArchitecturalFramework,
    ConcernCluster,
)


def build_paeb_framework() -> ArchitecturalFramework:
    """Architectural framework of the PAEB automotive use case (Sec. V-A)."""
    fw = ArchitecturalFramework("pedestrian-automatic-emergency-braking")

    logic = fw.add_view("paeb-function", ConcernCluster.LOGICAL_BEHAVIOR,
                        AbstractionLevel.CONCEPTUAL,
                        "detect pedestrians and decide braking")
    model = fw.add_view("detector-model", ConcernCluster.DEEP_LEARNING_MODEL,
                        AbstractionLevel.DESIGN,
                        "pedestrian detector network and its distribution")
    model_concept = fw.add_view("detection-approach",
                                ConcernCluster.DEEP_LEARNING_MODEL,
                                AbstractionLevel.CONCEPTUAL,
                                "camera-based DL detection")
    hardware = fw.add_view("oncar-edge-hw", ConcernCluster.HARDWARE,
                           AbstractionLevel.DESIGN,
                           "on-car accelerator plus edge station")
    comms = fw.add_view("mobile-network", ConcernCluster.COMMUNICATION,
                        AbstractionLevel.DESIGN,
                        "mobile network monitoring and offload transport")
    safety = fw.add_view("braking-safety", ConcernCluster.SAFETY,
                         AbstractionLevel.CONCEPTUAL,
                         "braking deadline and fail-safe behaviour")
    safety_design = fw.add_view("safety-kernel", ConcernCluster.SAFETY,
                                AbstractionLevel.DESIGN,
                                "hybrid kernel guarding the detector")
    security = fw.add_view("offload-security", ConcernCluster.SECURITY,
                           AbstractionLevel.DESIGN,
                           "remote attestation of edge nodes")
    energy = fw.add_view("energy-budget", ConcernCluster.ENERGY,
                         AbstractionLevel.DESIGN,
                         "on-car energy minimization")
    runtime = fw.add_view("offload-runtime", ConcernCluster.COMMUNICATION,
                          AbstractionLevel.RUNTIME,
                          "live offload decision engine")

    logic.add_requirement("PAEB-R1", "Brake before impact at up to 60 km/h")
    safety.add_requirement("PAEB-R2",
                           "End-to-end latency below the braking deadline")
    security.add_requirement(
        "PAEB-R3", "Raw sensor data leaves the car only to attested nodes")
    energy.add_requirement("PAEB-R4", "Minimize on-car energy consumption")

    # Vertical dependencies (same cluster, across levels).
    fw.add_dependency("detector-model", "detection-approach",
                      "design realizes the conceptual approach")
    fw.add_dependency("safety-kernel", "braking-safety",
                      "kernel enforces the conceptual safety envelope")
    fw.add_dependency("offload-runtime", "mobile-network",
                      "runtime decisions use the designed transport")
    # Horizontal dependencies (same level, across clusters).
    fw.add_dependency("detector-model", "oncar-edge-hw",
                      "model variants sized for the deployed accelerators")
    fw.add_dependency("detector-model", "mobile-network",
                      "distribution split depends on link quality")
    fw.add_dependency("energy-budget", "oncar-edge-hw",
                      "energy model of the selected hardware")
    fw.add_dependency("offload-security", "mobile-network",
                      "attestation rides the same transport")
    fw.add_dependency("braking-safety", "paeb-function",
                      "safety envelope constrains the function")
    return fw


def build_smart_mirror_framework() -> ArchitecturalFramework:
    """Architectural framework of the smart-mirror use case (Sec. V-C)."""
    fw = ArchitecturalFramework("smart-mirror")

    fw.add_view("interaction", ConcernCluster.LOGICAL_BEHAVIOR,
                AbstractionLevel.CONCEPTUAL,
                "gesture/face/object/speech interaction")
    fw.add_view("four-networks", ConcernCluster.DEEP_LEARNING_MODEL,
                AbstractionLevel.DESIGN,
                "four concurrent neural networks")
    fw.add_view("privacy-onsite", ConcernCluster.PRIVACY,
                AbstractionLevel.CONCEPTUAL,
                "no cloud: all processing on-site")
    fw.add_view("privacy-enforcement", ConcernCluster.PRIVACY,
                AbstractionLevel.DESIGN,
                "data-flow boundary keeps frames local")
    fw.add_view("embedded-platform", ConcernCluster.HARDWARE,
                AbstractionLevel.DESIGN,
                "uRECS-class embedded platform")
    fw.add_view("energy-envelope", ConcernCluster.ENERGY,
                AbstractionLevel.DESIGN, "low-power real-time budget")

    fw.view("privacy-onsite").add_requirement(
        "SM-R1", "No resident data is distributed to the cloud")
    fw.view("interaction").add_requirement(
        "SM-R2", "All four modalities respond in real time")
    fw.view("energy-envelope").add_requirement(
        "SM-R3", "Continuous operation within the embedded power budget")

    fw.add_dependency("privacy-enforcement", "privacy-onsite",
                      "design realizes the on-site constraint")
    fw.add_dependency("four-networks", "embedded-platform",
                      "networks sized for the platform")
    fw.add_dependency("four-networks", "privacy-enforcement",
                      "inference pipelines stay inside the boundary")
    fw.add_dependency("energy-envelope", "embedded-platform",
                      "budget allocated over platform components")
    return fw
