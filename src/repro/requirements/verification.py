"""Requirement verification: executable checks bound to the framework.

The paper couples "requirement engineering and verification techniques for
AIoT" (Sec. I) — requirements are not just recorded, they are *checked*.
A :class:`VerificationSuite` binds each requirement to executable checks
(plain callables returning truth), runs them, updates requirement statuses
in the architectural framework, and renders a compliance report.  The
use-case benchmarks use this to close the loop: e.g. PAEB-R2 ("end-to-end
latency below the braking deadline") is verified by running the offload
simulation and checking the miss count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .framework import ArchitecturalFramework, FrameworkError

Check = Callable[[], bool]


@dataclass
class CheckResult:
    """Outcome of one executed check."""

    requirement_id: str
    check_name: str
    passed: bool
    error: Optional[str] = None


class VerificationSuite:
    """Executable verification bound to a framework's requirements."""

    def __init__(self, framework: ArchitecturalFramework) -> None:
        self.framework = framework
        self._checks: Dict[str, List[Tuple[str, Check]]] = {}

    def add_check(self, requirement_id: str, name: str, check: Check) -> None:
        """Bind a check to a requirement; the requirement must exist."""
        self.framework.trace_requirement(requirement_id)  # existence check
        self._checks.setdefault(requirement_id, []).append((name, check))

    def coverage(self) -> Dict[str, int]:
        """Checks bound per requirement (0 entries are uncovered)."""
        counts = {req.req_id: 0
                  for _, req in self.framework.all_requirements()}
        for req_id, checks in self._checks.items():
            counts[req_id] = len(checks)
        return counts

    def uncovered_requirements(self) -> List[str]:
        return sorted(req_id for req_id, count in self.coverage().items()
                      if count == 0)

    def run(self) -> List[CheckResult]:
        """Execute every check and update requirement statuses.

        A requirement becomes ``verified`` only if *all* its checks pass;
        any failure marks it ``open`` again (regressions re-open).
        """
        results: List[CheckResult] = []
        for req_id, checks in sorted(self._checks.items()):
            all_passed = True
            for name, check in checks:
                try:
                    passed = bool(check())
                    error = None
                except Exception as exc:  # noqa: BLE001 - report, don't crash
                    passed = False
                    error = f"{type(exc).__name__}: {exc}"
                results.append(CheckResult(req_id, name, passed, error))
                all_passed = all_passed and passed
            self._set_status(req_id, "verified" if all_passed else "open")
        return results

    def _set_status(self, req_id: str, status: str) -> None:
        for _, requirement in self.framework.all_requirements():
            if requirement.req_id == req_id:
                requirement.status = status
                return
        raise FrameworkError(f"requirement {req_id!r} vanished")

    def compliance_report(self, results: List[CheckResult]) -> str:
        lines = [f"verification of {self.framework.system_name!r}:"]
        by_req: Dict[str, List[CheckResult]] = {}
        for result in results:
            by_req.setdefault(result.requirement_id, []).append(result)
        for req_id in sorted(by_req):
            outcomes = by_req[req_id]
            verdict = "VERIFIED" if all(r.passed for r in outcomes) \
                else "FAILED"
            lines.append(f"  {req_id:<10} {verdict}")
            for result in outcomes:
                mark = "pass" if result.passed else "FAIL"
                suffix = f" ({result.error})" if result.error else ""
                lines.append(f"    [{mark}] {result.check_name}{suffix}")
        uncovered = self.uncovered_requirements()
        if uncovered:
            lines.append(f"  uncovered requirements: {', '.join(uncovered)}")
        return "\n".join(lines)
