"""Requirements-engineering framework for AIoT systems (paper Sec. IV-A)."""

from .framework import (
    AbstractionLevel,
    ArchitecturalFramework,
    ArchitecturalView,
    ConcernCluster,
    Dependency,
    DependencyRuleViolation,
    FrameworkError,
    Requirement,
)
from .templates import build_paeb_framework, build_smart_mirror_framework
from .verification import CheckResult, VerificationSuite

__all__ = [
    "AbstractionLevel", "ArchitecturalFramework", "ArchitecturalView",
    "ConcernCluster", "Dependency", "DependencyRuleViolation",
    "FrameworkError", "Requirement",
    "build_paeb_framework", "build_smart_mirror_framework",
    "CheckResult", "VerificationSuite",
]
