"""Command-line interface: the toolchain's Kenning-style front end.

Subcommands:

    models                      list the model zoo with sizes and compute
    accelerators [--family F]   list the accelerator catalog (Fig. 3 data)
    predict                     roofline prediction of a model on a platform
    plan                        compile a model's execution plan + memory arena
    plan-cache                  inspect/clear/warm the persistent plan cache
    serve-bench                 benchmark the batched serving engine
    metrics                     run a short workload, export the registry
    trace                       export a Chrome/Perfetto trace of a run
                                (--replicas N merges the fleet's spans)
    flightrec                   dump the always-on serving event ring
    optimize                    run the deployment pipeline on a dataset
    simulate                    assemble and run a program on the RV32 SoC

Run ``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_models(args: argparse.Namespace) -> int:
    from .ir import available_models, build_model

    print(f"{'model':<22}{'params':>14}{'GMACs':>9}{'input':>20}")
    for name in available_models():
        if args.small and name in ("resnet50", "yolov4",
                                   "mobilenet_v3_large",
                                   "mobilenet_v3_small"):
            continue
        graph = build_model(name)
        cost = graph.total_cost()
        shape = "x".join(str(d) for d in graph.inputs[0].shape)
        print(f"{name:<22}{graph.num_parameters():>14,}"
              f"{cost.macs / 1e9:>9.3f}{shape:>20}")
    return 0


def _cmd_accelerators(args: argparse.Namespace) -> int:
    from .hw import DeviceFamily, catalog

    family = DeviceFamily(args.family) if args.family else None
    print(f"{'accelerator':<16}{'class':<7}{'peak GOPS':>11}{'prec':>6}"
          f"{'TDP W':>8}{'TOPS/W':>8}")
    for spec in sorted(catalog(family), key=lambda s: s.tdp_w):
        print(f"{spec.name:<16}{spec.family.value:<7}"
              f"{spec.peak_gops_best:>11,.0f}"
              f"{spec.best_precision.value:>6}{spec.tdp_w:>8.2f}"
              f"{spec.efficiency_tops_per_w:>8.2f}")
    return 0


def _measured_fps(graph, batch: int, repeat: int) -> float:
    """Measured host throughput: run ``repeat`` arena-backed inferences."""
    import time

    from .runtime import Executor
    from .serving.bench import sample_feeds

    batched = graph.with_batch(batch)
    feeds = {name: np.concatenate([array] * batch, axis=0) if batch > 1
             else array
             for name, array in sample_feeds(graph).items()}
    executor = Executor(batched, reuse_buffers=True)
    executor.recycle(executor.run(feeds))        # warmup
    start = time.perf_counter()
    for _ in range(repeat):
        executor.recycle(executor.run(feeds))
    elapsed = time.perf_counter() - start
    return repeat * batch / elapsed if elapsed > 0 else 0.0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .hw import RooflineModel, resolve_platform
    from .ir import build_model
    from .ir.tensor import DType

    graph = build_model(args.model)
    spec = resolve_platform(args.platform)
    model = RooflineModel(spec)
    dtype = DType(args.dtype) if args.dtype else None
    batches = [args.batch] if args.batch is not None else args.batches
    measured = args.repeat > 0
    print(f"{args.model} on {spec.name}:")
    header = (f"{'batch':>6}{'dtype':>7}{'lat ms':>9}{'GOPS':>8}{'W':>7}"
              f"{'mJ/inf':>9}{'fps':>8}")
    if measured:
        header += f"{'host fps':>10}"
    if args.slo_ms is not None:
        header += f"{'slo':>6}"
    print(header)
    for batch in batches:
        prediction = model.predict(graph, batch=batch, dtype=dtype)
        line = (f"{batch:>6}{prediction.dtype.value:>7}"
                f"{prediction.latency_s * 1e3:>9.2f}"
                f"{prediction.throughput_gops:>8.0f}"
                f"{prediction.avg_power_w:>7.1f}"
                f"{prediction.energy_per_inference_j * 1e3:>9.2f}"
                f"{prediction.fps:>8.1f}")
        if measured:
            line += f"{_measured_fps(graph, batch, args.repeat):>10.1f}"
        if args.slo_ms is not None:
            meets = prediction.latency_s * 1e3 <= args.slo_ms
            line += f"{'ok' if meets else 'MISS':>6}"
        print(line)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .ir import build_model
    from .optim import plan_memory
    from .runtime import compile_plan

    graph = build_model(args.model, batch=args.batch)
    plan = compile_plan(graph)
    memory = plan_memory(graph)
    if args.steps:
        print(plan.summary())
    else:
        print(f"execution plan for {graph.name!r}: {len(plan)} steps, "
              f"peak live {plan.peak_live_bytes / 1024:.1f} KiB")
        if plan.schedule is not None:
            print(f"  schedule depth {plan.schedule.depth} (critical "
                  f"path), max width {plan.schedule.max_width}")
    print(memory.report())
    if args.repeat > 0:
        import time

        from .runtime import Executor
        from .serving.bench import sample_feeds

        feeds = {name: np.concatenate([array] * args.batch, axis=0)
                 if args.batch > 1 else array
                 for name, array in sample_feeds(graph).items()}
        executor = Executor(graph, reuse_buffers=True, plan=plan,
                            num_threads=args.num_threads)
        executor.recycle(executor.run(feeds))            # warmup
        arena = executor.plan.arena
        baseline = arena.stats.snapshot()
        start = time.perf_counter()
        for _ in range(args.repeat):
            executor.recycle(executor.run(feeds))
        elapsed = time.perf_counter() - start
        steady = arena.stats.allocations - baseline.allocations
        per_batch_ms = elapsed / args.repeat * 1e3
        print(f"executed {args.repeat}x batch={args.batch}: "
              f"{per_batch_ms:.2f} ms/batch, "
              f"{args.repeat * args.batch / elapsed:.1f} samples/s, "
              f"{steady} steady-state allocations "
              f"({arena.stats.reuses - baseline.reuses} buffer reuses)")
    return 0


def _cmd_plan_cache(args: argparse.Namespace) -> int:
    import time

    from .runtime.plan_cache import PlanCache, load_or_build

    cache = PlanCache(args.cache_dir)
    if args.action == "stats":
        entries = cache.entries()
        print(f"plan cache at {cache.directory}: {len(entries)} entries")
        if entries:
            print(f"{'key':<16}{'model':<22}{'nodes':>7}{'packed':>8}"
                  f"{'size KiB':>10}")
            for entry in entries:
                print(f"{entry['key'][:12] + '…':<16}{entry['graph']:<22}"
                      f"{entry['nodes']:>7}{entry['packed_arrays']:>8}"
                      f"{entry['bytes'] / 1024:>10.1f}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    # warm <zoo-model>: specialize + compile + store (or confirm a hit).
    from .ir import build_model

    graph = build_model(args.model, batch=args.batch)
    start = time.perf_counter()
    model = load_or_build(graph, cache=cache)
    elapsed = (time.perf_counter() - start) * 1e3
    source = "cache hit" if model.from_cache else "cold build (stored)"
    packed = sum(len(p) for p in model.plan.packs.values())
    print(f"{args.model} batch={args.batch}: {source} in {elapsed:.1f} ms "
          f"({len(model.plan)} steps, {packed} prepacked arrays, "
          f"key {model.key[:12]}…)")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from .ir import build_model
    from .serving import render, run_bench
    from .telemetry import (
        Tracer,
        registry_to_json,
        traces_to_chrome,
        write_chrome_trace,
    )

    kwargs = {}
    if args.image_size:
        kwargs["image_size"] = args.image_size
    graph = build_model(args.model, **kwargs)
    if args.replicas:
        return _serve_bench_replicas(args, graph)
    if args.trace:
        return _serve_bench_trace(args, graph)
    configs = []
    for raw in args.configs:
        try:
            workers, max_batch = (int(part) for part in raw.split("x"))
        except ValueError:
            print(f"bad config {raw!r}: expected WORKERSxBATCH, e.g. 1x8",
                  file=sys.stderr)
            return 2
        configs.append((workers, max_batch))
    tracer = Tracer(sample_rate=args.trace_sample,
                    capacity=4096) if args.trace_out else None
    results = run_bench(graph, configs=configs, requests=args.requests,
                        clients=args.clients, warmup=args.warmup,
                        max_latency_ms=args.max_latency_ms,
                        num_threads=args.num_threads, tracer=tracer,
                        slow_request_ms=args.slow_request_ms)
    print(render(results, name=args.model))
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(registry_to_json(), handle, indent=2)
        print(f"metrics snapshot written to {args.metrics_json}")
    if args.trace_out:
        events = traces_to_chrome(tracer.traces())
        write_chrome_trace(args.trace_out, events)
        print(f"chrome trace with {len(events)} events "
              f"({tracer.sampled_count} sampled requests) written to "
              f"{args.trace_out}")
    return 0


def _serve_bench_trace(args: argparse.Namespace, graph) -> int:
    """Open-loop trace replay: ``serve-bench --trace bursty --slo-ms 25``.

    Replays a deterministic arrival trace against the fixed-knob and/or
    SLO-aware adaptive engine and reports per-mode goodput, shedding,
    and admitted-request percentiles.  With neither ``--adaptive`` nor
    ``--no-adaptive`` both modes run, so the table is the comparison.
    """
    from .serving import make_trace, render_trace_replay, run_trace_replay

    arrivals = make_trace(args.trace, rate_rps=args.rate,
                          duration_s=args.duration, seed=args.seed)
    modes = [args.adaptive] if args.adaptive is not None else [False, True]
    rows = []
    for adaptive in modes:
        rows.append(run_trace_replay(
            graph, arrivals, slo_ms=args.slo_ms, trace_name=args.trace,
            adaptive=adaptive, max_batch=args.max_batch,
            max_latency_ms=args.max_latency_ms,
            num_threads=args.num_threads, warmup=args.warmup))
    print(render_trace_replay(rows, name=args.model))
    return 0


def _serve_bench_replicas(args: argparse.Namespace, graph) -> int:
    import json

    from .serving import render_replicas, run_replica_bench
    from .telemetry import (
        Tracer,
        chrome_trace_processes,
        registry_to_json,
        traces_to_chrome,
        write_chrome_trace,
    )

    # Scrape inside the sweep, while the last tier (and its per-replica
    # labeled series) is still live.
    scraped = {}

    def _scrape(tier) -> None:
        scraped["payload"] = registry_to_json()

    tracer = Tracer(sample_rate=args.trace_sample,
                    capacity=4096) if args.trace_out else None
    results = run_replica_bench(
        graph, replica_counts=tuple(args.replicas),
        requests=args.requests, clients=args.clients,
        warmup=args.warmup, max_batch=args.max_batch,
        max_latency_ms=args.max_latency_ms,
        max_inflight=args.max_inflight, cache_dir=args.cache_dir,
        shm=args.shm,
        on_tier=_scrape if args.metrics_json else None,
        tracer=tracer, slow_request_ms=args.slow_request_ms)
    print(render_replicas(results, name=args.model))
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(scraped["payload"], handle, indent=2)
        print(f"metrics snapshot written to {args.metrics_json}")
    if args.trace_out:
        events = traces_to_chrome(tracer.traces())
        write_chrome_trace(args.trace_out, events)
        tracks = chrome_trace_processes(events)
        names = ", ".join(tracks[pid] for pid in sorted(tracks))
        print(f"fleet chrome trace with {len(events)} events "
              f"({tracer.sampled_count} sampled requests) across "
              f"{len(tracks)} process tracks [{names}] written to "
              f"{args.trace_out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .ir import build_model
    from .runtime.plan_cache import PlanCache
    from .serving import InferenceEngine
    from .serving.bench import sample_feeds
    from .telemetry import (
        registry_to_json,
        render_prometheus,
        render_summary,
    )

    graph = build_model(args.model)
    feeds = sample_feeds(graph)
    with tempfile.TemporaryDirectory(prefix="repro-metrics-") as scratch:
        cache = PlanCache(args.cache_dir if args.cache_dir else scratch)
        with InferenceEngine(graph, max_batch=args.max_batch,
                             plan_cache=cache,
                             num_threads=args.num_threads) as engine:
            engine.infer_many([feeds] * args.requests, timeout=60.0)
            # Scrape while the engine (and its queue gauge) is live.
            if args.format == "json":
                payload = json.dumps(registry_to_json(), indent=2)
            elif args.format == "summary":
                payload = render_summary()
            else:
                payload = render_prometheus()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload)
        print(f"metrics written to {args.output}")
    else:
        print(payload, end="")
    return 0


def _run_traced_tier(model: str, replicas: int, requests: int,
                     tracer, flight_recorder=None, shm=None):
    """Drive a short concurrent workload through a traced replica tier.

    Submissions overlap (the whole wave is enqueued before the first
    result is awaited) so batches spread across every replica and the
    merged trace shows real slot-wait / dispatch interleaving.
    """
    import tempfile

    from .ir import build_model
    from .serving.bench import sample_feeds
    from .serving.replicas import ReplicaEngine

    graph = build_model(model)
    feeds = sample_feeds(graph)
    with tempfile.TemporaryDirectory(prefix="repro-trace-") as scratch:
        with ReplicaEngine(graph, replicas=replicas, max_batch=4,
                           max_latency_ms=2.0, cache_dir=scratch,
                           shm=shm, tracer=tracer,
                           flight_recorder=flight_recorder) as tier:
            futures = [tier.infer(feeds) for _ in range(requests)]
            for future in futures:
                future.result(timeout=120.0)


def _trace_replicas(args: argparse.Namespace) -> int:
    """``repro trace --replicas N``: merged fleet trace of a live tier."""
    from .telemetry import (
        Tracer,
        chrome_trace_processes,
        traces_to_chrome,
        validate_chrome_trace,
        write_chrome_trace,
    )

    tracer = Tracer(sample_rate=1.0, capacity=4096)
    requests = max(args.runs, 1) * args.replicas * 8
    _run_traced_tier(args.model, args.replicas, requests, tracer)
    events = traces_to_chrome(tracer.traces())
    validate_chrome_trace({"traceEvents": events})
    write_chrome_trace(args.out, events)
    tracks = chrome_trace_processes(events)
    names = ", ".join(tracks[pid] for pid in sorted(tracks))
    print(f"{args.model} x{requests} requests over {args.replicas} "
          f"replicas: {len(events)} events on {len(tracks)} process "
          f"tracks [{names}] -> {args.out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import time

    from .ir import build_model
    from .runtime import Executor
    from .serving.bench import sample_feeds
    from .telemetry import timeline_to_chrome, write_chrome_trace

    if args.replicas:
        return _trace_replicas(args)
    graph = build_model(args.model, batch=args.batch)
    feeds = {name: np.concatenate([array] * args.batch, axis=0)
             if args.batch > 1 else array
             for name, array in sample_feeds(graph).items()}
    executor = Executor(graph, reuse_buffers=True,
                        num_threads=args.num_threads)
    executor.recycle(executor.run(feeds))            # warmup
    executor.record_timeline = True
    timelines = []
    offsets = []
    origin = time.perf_counter()
    try:
        for _ in range(args.runs):
            offsets.append(time.perf_counter() - origin)
            executor.recycle(executor.run(feeds))
            timelines.append(executor.last_timeline or [])
    finally:
        executor.record_timeline = False
    events = timeline_to_chrome(timelines, offsets_s=offsets)
    write_chrome_trace(args.out, events)
    tracks = {event["tid"] for event in events if event.get("ph") == "X"}
    print(f"{args.model} batch={args.batch} x{args.runs} runs at "
          f"{executor.num_threads} threads: {len(events)} events on "
          f"{len(tracks)} tracks -> {args.out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_flightrec(args: argparse.Namespace) -> int:
    """``repro flightrec dump``: capture a short replica workload into
    the flight recorder and write the versioned dump (+ Chrome trace
    sibling) for inspection."""
    from .telemetry import FlightRecorder, load_flightrec_dump

    recorder = FlightRecorder()
    _run_traced_tier(args.model, args.replicas, args.requests,
                     tracer=None, flight_recorder=recorder)
    path = recorder.dump("on-demand", path=args.out)
    payload = load_flightrec_dump(path)       # self-check before report
    kinds = {}
    for event in payload["events"]:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    summary = ", ".join(f"{kind}={count}"
                        for kind, count in sorted(kinds.items()))
    print(f"flight recorder dump v{payload['version']} with "
          f"{len(payload['events'])} events ({summary}) written to "
          f"{path}")
    print(f"chrome trace sibling: "
          f"{path.with_name(path.stem + '.trace.json')}")
    return 0


_DATASETS = ("shapes", "arc", "motor", "keywords")


def _load_dataset(name: str, seed: int):
    from . import datasets

    if name == "shapes":
        return datasets.make_shapes_dataset(240, image_size=32, seed=seed)
    if name == "arc":
        return datasets.make_arc_dataset(150, window=128, seed=seed)
    if name == "motor":
        return datasets.make_motor_dataset(60, window=256, seed=seed)
    if name == "keywords":
        from .datasets.audio import make_keyword_dataset

        return make_keyword_dataset(50, seed=seed)
    raise ValueError(f"unknown dataset {name!r}")


def _default_model_for(dataset: str, num_classes: int):
    from .ir import build_model

    if dataset == "shapes":
        return build_model("tiny_convnet", batch=8, image_size=32,
                           num_classes=num_classes)
    if dataset == "arc":
        return build_model("arc_net", batch=16, window=128)
    if dataset == "motor":
        return build_model("motor_net", batch=8, window=256)
    return build_model("mlp", batch=8, in_features=64, hidden=(128,),
                       num_classes=num_classes)


def _cmd_optimize(args: argparse.Namespace) -> int:
    from .core import DeploymentPipeline
    from .hw import resolve_platform

    dataset = _load_dataset(args.dataset, args.seed)
    graph = _default_model_for(args.dataset, dataset.num_classes)
    target = resolve_platform(args.platform) if args.platform else None
    pipeline = DeploymentPipeline(graph, dataset, target=target,
                                  optimizations=tuple(args.passes),
                                  profile_runs=1)
    report = pipeline.run(seed=args.seed)
    print(report.render())
    if args.confusion:
        final = args.passes[-1] if args.passes else "fp32"
        print()
        print(report.confusions[final].render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .simulator import Machine, SimdMacCfu

    machine = Machine(cfu=SimdMacCfu() if args.cfu else None)
    with open(args.program) as handle:
        machine.load_assembly(handle.read())
    result = machine.run(max_steps=args.max_steps)
    if result.uart_output:
        print(result.uart_output, end="")
        if not result.uart_output.endswith("\n"):
            print()
    state = "halted" if result.halted else "step budget exhausted"
    print(f"[{state}: {result.steps} steps, {result.cycles} cycles, "
          f"exit code {result.exit_code}]")
    if result.exit_code is None:
        return 2
    return int(result.exit_code)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VEDLIoT reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_models = sub.add_parser("models", help="list the model zoo")
    p_models.add_argument("--small", action="store_true",
                          help="skip the large reference models")
    p_models.set_defaults(fn=_cmd_models)

    p_accel = sub.add_parser("accelerators",
                             help="list the accelerator catalog")
    p_accel.add_argument("--family",
                         choices=[f.value for f in __import__(
                             "repro.hw", fromlist=["DeviceFamily"]
                         ).DeviceFamily],
                         help="filter by device class")
    p_accel.set_defaults(fn=_cmd_accelerators)

    p_pred = sub.add_parser("predict",
                            help="roofline prediction on a platform")
    p_pred.add_argument("--model", required=True)
    p_pred.add_argument("--platform", required=True,
                        help="catalog name, optionally NAME:MODE")
    p_pred.add_argument("--dtype", choices=("fp32", "fp16", "int8"))
    p_pred.add_argument("--batches", type=int, nargs="+",
                        default=[1, 4, 8])
    p_pred.add_argument("--batch", type=int, default=None,
                        help="predict a single batch size (overrides "
                             "--batches)")
    p_pred.add_argument("--slo-ms", type=float, default=None,
                        help="mark each batch size ok/MISS against this "
                             "per-inference latency SLO (the static "
                             "counterpart of serve-bench --slo-ms)")
    p_pred.add_argument("--repeat", type=int, default=0,
                        help="also measure host throughput over K "
                             "arena-backed runs per batch size")
    p_pred.set_defaults(fn=_cmd_predict)

    p_plan = sub.add_parser("plan",
                            help="compile an execution plan and arena layout")
    p_plan.add_argument("--model", required=True)
    p_plan.add_argument("--batch", type=int, default=1)
    p_plan.add_argument("--steps", action="store_true",
                        help="list every bound step with its release set")
    p_plan.add_argument("--repeat", type=int, default=0,
                        help="execute the compiled plan K times on the "
                             "scratch arena and report timing")
    p_plan.add_argument("--num-threads", type=int, default=None,
                        help="worker threads for plan execution "
                             "(default: $REPRO_NUM_THREADS or 1)")
    p_plan.set_defaults(fn=_cmd_plan)

    p_cache = sub.add_parser("plan-cache",
                             help="inspect or warm the persistent plan "
                                  "cache")
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    c_stats = cache_sub.add_parser("stats", help="list cached entries")
    c_clear = cache_sub.add_parser("clear", help="remove every entry")
    c_warm = cache_sub.add_parser(
        "warm", help="specialize + compile a zoo model into the cache")
    c_warm.add_argument("model", help="zoo model name")
    c_warm.add_argument("--batch", type=int, default=1)
    for sub_parser in (c_stats, c_clear, c_warm):
        sub_parser.add_argument("--cache-dir", default=None,
                                help="cache directory (default: "
                                     "$REPRO_PLAN_CACHE_DIR or "
                                     "~/.cache/repro/plan-cache)")
        sub_parser.set_defaults(fn=_cmd_plan_cache)

    p_serve = sub.add_parser("serve-bench",
                             help="benchmark the batched serving engine")
    p_serve.add_argument("--model", default="tiny_convnet")
    p_serve.add_argument("--image-size", type=int, default=None,
                         help="override the model's input resolution")
    p_serve.add_argument("--configs", nargs="+", default=["1x1", "1x8"],
                         help="WORKERSxBATCH configurations to sweep")
    p_serve.add_argument("--requests", type=int, default=64,
                         help="measured requests per configuration")
    p_serve.add_argument("--clients", type=int, default=None,
                         help="closed-loop client threads (default: "
                              "workers * max_batch)")
    p_serve.add_argument("--warmup", type=int, default=8)
    p_serve.add_argument("--max-latency-ms", type=float, default=2.0,
                         help="batching deadline for the oldest request")
    p_serve.add_argument("--num-threads", type=int, default=None,
                         help="threads per batch execution "
                              "(default: $REPRO_NUM_THREADS or 1)")
    p_serve.add_argument("--metrics-json", default=None, metavar="PATH",
                         help="write a JSON snapshot of the telemetry "
                              "registry after the sweep")
    p_serve.add_argument("--trace-out", default=None, metavar="PATH",
                         help="trace sampled requests and write a "
                              "Chrome/Perfetto trace file")
    p_serve.add_argument("--trace-sample", type=float, default=1.0,
                         help="request sampling rate for --trace-out "
                              "(default 1.0)")
    p_serve.add_argument("--slow-request-ms", type=float, default=None,
                         help="log requests slower than this threshold "
                              "on the repro.serving logger")
    p_serve.add_argument("--replicas", type=int, nargs="+", default=None,
                         metavar="N",
                         help="benchmark the multi-process replica tier "
                              "at each count instead of the in-process "
                              "WORKERSxBATCH sweep (a 1-worker "
                              "in-process baseline row is always "
                              "included)")
    p_serve.add_argument("--max-batch", type=int, default=8,
                         help="micro-batch size for --replicas mode "
                              "(in-process mode takes it from "
                              "--configs)")
    p_serve.add_argument("--max-inflight", type=int, default=2,
                         help="admission-control budget: batches in "
                              "flight per replica (--replicas mode)")
    p_serve.add_argument("--shm", default=None,
                         action=argparse.BooleanOptionalAction,
                         help="force the shared-memory data plane on "
                              "(--shm) or off (--no-shm) for --replicas "
                              "mode; default follows $REPRO_REPLICA_SHM "
                              "(on where supported)")
    p_serve.add_argument("--trace", default=None,
                         choices=("bursty", "diurnal", "poisson"),
                         help="replay a deterministic open-loop arrival "
                              "trace (SLO-aware mode) instead of the "
                              "closed-loop sweep")
    p_serve.add_argument("--slo-ms", type=float, default=25.0,
                         help="per-request completion SLO for --trace "
                              "replay (default 25)")
    p_serve.add_argument("--rate", type=float, default=2000.0,
                         help="mean arrival rate for --trace (req/s, "
                              "default 2000)")
    p_serve.add_argument("--duration", type=float, default=2.0,
                         help="trace length in seconds (default 2)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="trace arrival-process seed")
    p_serve.add_argument("--adaptive", default=None,
                         action=argparse.BooleanOptionalAction,
                         help="run only the adaptive (or with "
                              "--no-adaptive, only the fixed-knob) "
                              "engine in --trace replay; default runs "
                              "both and prints the comparison")
    p_serve.add_argument("--cache-dir", default=None,
                         help="plan-cache directory shared by the "
                              "replica processes (default: "
                              "$REPRO_PLAN_CACHE_DIR or "
                              "~/.cache/repro/plan-cache)")
    p_serve.set_defaults(fn=_cmd_serve_bench)

    p_metrics = sub.add_parser(
        "metrics",
        help="run a short serving workload and export the metrics "
             "registry")
    p_metrics.add_argument("--model", default="mlp")
    p_metrics.add_argument("--requests", type=int, default=32)
    p_metrics.add_argument("--max-batch", type=int, default=8)
    p_metrics.add_argument("--num-threads", type=int, default=None)
    p_metrics.add_argument("--format", choices=("prom", "json", "summary"),
                           default="prom",
                           help="Prometheus text exposition (default), "
                                "JSON snapshot, or a fixed-width "
                                "summary with interpolated p50/p95/p99 "
                                "columns for every histogram")
    p_metrics.add_argument("--output", default=None, metavar="PATH",
                           help="write to a file instead of stdout")
    p_metrics.add_argument("--cache-dir", default=None,
                           help="plan-cache directory for the workload "
                                "(default: a throwaway temp dir)")
    p_metrics.set_defaults(fn=_cmd_metrics)

    p_trace = sub.add_parser(
        "trace",
        help="execute a zoo model and export a Chrome/Perfetto trace "
             "of its per-step timeline")
    p_trace.add_argument("--model", default="wide_branch_net")
    p_trace.add_argument("--batch", type=int, default=1)
    p_trace.add_argument("--runs", type=int, default=3)
    p_trace.add_argument("--num-threads", type=int, default=None,
                         help="worker threads (default: "
                              "$REPRO_NUM_THREADS or 1); at >= 2 the "
                              "trace shows steps spread across worker "
                              "tracks")
    p_trace.add_argument("--replicas", type=int, default=None, metavar="N",
                         help="trace a live N-replica serving tier "
                              "instead of a single executor: the merged "
                              "fleet trace has one process track per "
                              "replica, clock-aligned onto the parent's "
                              "timeline")
    p_trace.add_argument("--out", default="trace.json", metavar="PATH")
    p_trace.set_defaults(fn=_cmd_trace)

    p_frec = sub.add_parser(
        "flightrec",
        help="inspect the always-on flight recorder (recent serving "
             "events ring)")
    frec_sub = p_frec.add_subparsers(dest="action", required=True)
    f_dump = frec_sub.add_parser(
        "dump",
        help="run a short replica workload and dump the event ring "
             "(versioned JSON + Chrome trace sibling)")
    f_dump.add_argument("--model", default="mlp")
    f_dump.add_argument("--replicas", type=int, default=2)
    f_dump.add_argument("--requests", type=int, default=32)
    f_dump.add_argument("--out", default=None, metavar="PATH",
                        help="dump file path (default: a timestamped "
                             "file under $REPRO_FLIGHTREC_DIR or "
                             "~/.cache/repro/flightrec)")
    f_dump.set_defaults(fn=_cmd_flightrec)

    p_opt = sub.add_parser("optimize",
                           help="run the deployment pipeline")
    p_opt.add_argument("--dataset", choices=_DATASETS, default="shapes")
    p_opt.add_argument("--passes", nargs="*", default=["fuse", "int8"],
                       help="optimization variants, e.g. fuse int8 "
                            "prune:0.25 fp16")
    p_opt.add_argument("--platform", help="optional target accelerator")
    p_opt.add_argument("--confusion", action="store_true",
                       help="print the final confusion matrix")
    p_opt.add_argument("--seed", type=int, default=0)
    p_opt.set_defaults(fn=_cmd_optimize)

    p_sim = sub.add_parser("simulate",
                           help="run an assembly program on the RV32 SoC")
    p_sim.add_argument("program", help="assembly source file")
    p_sim.add_argument("--cfu", action="store_true",
                       help="attach the SIMD MAC CFU")
    p_sim.add_argument("--max-steps", type=int, default=1_000_000)
    p_sim.set_defaults(fn=_cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
