"""Command-line interface: the toolchain's Kenning-style front end.

Subcommands:

    models                      list the model zoo with sizes and compute
    accelerators [--family F]   list the accelerator catalog (Fig. 3 data)
    predict                     roofline prediction of a model on a platform
    plan                        compile a model's execution plan + memory arena
    optimize                    run the deployment pipeline on a dataset
    simulate                    assemble and run a program on the RV32 SoC

Run ``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_models(args: argparse.Namespace) -> int:
    from .ir import available_models, build_model

    print(f"{'model':<22}{'params':>14}{'GMACs':>9}{'input':>20}")
    for name in available_models():
        if args.small and name in ("resnet50", "yolov4",
                                   "mobilenet_v3_large",
                                   "mobilenet_v3_small"):
            continue
        graph = build_model(name)
        cost = graph.total_cost()
        shape = "x".join(str(d) for d in graph.inputs[0].shape)
        print(f"{name:<22}{graph.num_parameters():>14,}"
              f"{cost.macs / 1e9:>9.3f}{shape:>20}")
    return 0


def _cmd_accelerators(args: argparse.Namespace) -> int:
    from .hw import DeviceFamily, catalog

    family = DeviceFamily(args.family) if args.family else None
    print(f"{'accelerator':<16}{'class':<7}{'peak GOPS':>11}{'prec':>6}"
          f"{'TDP W':>8}{'TOPS/W':>8}")
    for spec in sorted(catalog(family), key=lambda s: s.tdp_w):
        print(f"{spec.name:<16}{spec.family.value:<7}"
              f"{spec.peak_gops_best:>11,.0f}"
              f"{spec.best_precision.value:>6}{spec.tdp_w:>8.2f}"
              f"{spec.efficiency_tops_per_w:>8.2f}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .hw import RooflineModel, resolve_platform
    from .ir import build_model
    from .ir.tensor import DType

    graph = build_model(args.model)
    spec = resolve_platform(args.platform)
    model = RooflineModel(spec)
    dtype = DType(args.dtype) if args.dtype else None
    print(f"{args.model} on {spec.name}:")
    print(f"{'batch':>6}{'dtype':>7}{'lat ms':>9}{'GOPS':>8}{'W':>7}"
          f"{'mJ/inf':>9}{'fps':>8}")
    for batch in args.batches:
        prediction = model.predict(graph, batch=batch, dtype=dtype)
        print(f"{batch:>6}{prediction.dtype.value:>7}"
              f"{prediction.latency_s * 1e3:>9.2f}"
              f"{prediction.throughput_gops:>8.0f}"
              f"{prediction.avg_power_w:>7.1f}"
              f"{prediction.energy_per_inference_j * 1e3:>9.2f}"
              f"{prediction.fps:>8.1f}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .ir import build_model
    from .optim import plan_memory
    from .runtime import compile_plan

    graph = build_model(args.model, batch=args.batch)
    plan = compile_plan(graph)
    memory = plan_memory(graph)
    if args.steps:
        print(plan.summary())
    else:
        print(f"execution plan for {graph.name!r}: {len(plan)} steps, "
              f"peak live {plan.peak_live_bytes / 1024:.1f} KiB")
    print(memory.report())
    return 0


_DATASETS = ("shapes", "arc", "motor", "keywords")


def _load_dataset(name: str, seed: int):
    from . import datasets

    if name == "shapes":
        return datasets.make_shapes_dataset(240, image_size=32, seed=seed)
    if name == "arc":
        return datasets.make_arc_dataset(150, window=128, seed=seed)
    if name == "motor":
        return datasets.make_motor_dataset(60, window=256, seed=seed)
    if name == "keywords":
        from .datasets.audio import make_keyword_dataset

        return make_keyword_dataset(50, seed=seed)
    raise ValueError(f"unknown dataset {name!r}")


def _default_model_for(dataset: str, num_classes: int):
    from .ir import build_model

    if dataset == "shapes":
        return build_model("tiny_convnet", batch=8, image_size=32,
                           num_classes=num_classes)
    if dataset == "arc":
        return build_model("arc_net", batch=16, window=128)
    if dataset == "motor":
        return build_model("motor_net", batch=8, window=256)
    return build_model("mlp", batch=8, in_features=64, hidden=(128,),
                       num_classes=num_classes)


def _cmd_optimize(args: argparse.Namespace) -> int:
    from .core import DeploymentPipeline
    from .hw import resolve_platform

    dataset = _load_dataset(args.dataset, args.seed)
    graph = _default_model_for(args.dataset, dataset.num_classes)
    target = resolve_platform(args.platform) if args.platform else None
    pipeline = DeploymentPipeline(graph, dataset, target=target,
                                  optimizations=tuple(args.passes),
                                  profile_runs=1)
    report = pipeline.run(seed=args.seed)
    print(report.render())
    if args.confusion:
        final = args.passes[-1] if args.passes else "fp32"
        print()
        print(report.confusions[final].render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .simulator import Machine, SimdMacCfu

    machine = Machine(cfu=SimdMacCfu() if args.cfu else None)
    with open(args.program) as handle:
        machine.load_assembly(handle.read())
    result = machine.run(max_steps=args.max_steps)
    if result.uart_output:
        print(result.uart_output, end="")
        if not result.uart_output.endswith("\n"):
            print()
    state = "halted" if result.halted else "step budget exhausted"
    print(f"[{state}: {result.steps} steps, {result.cycles} cycles, "
          f"exit code {result.exit_code}]")
    if result.exit_code is None:
        return 2
    return int(result.exit_code)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VEDLIoT reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_models = sub.add_parser("models", help="list the model zoo")
    p_models.add_argument("--small", action="store_true",
                          help="skip the large reference models")
    p_models.set_defaults(fn=_cmd_models)

    p_accel = sub.add_parser("accelerators",
                             help="list the accelerator catalog")
    p_accel.add_argument("--family",
                         choices=[f.value for f in __import__(
                             "repro.hw", fromlist=["DeviceFamily"]
                         ).DeviceFamily],
                         help="filter by device class")
    p_accel.set_defaults(fn=_cmd_accelerators)

    p_pred = sub.add_parser("predict",
                            help="roofline prediction on a platform")
    p_pred.add_argument("--model", required=True)
    p_pred.add_argument("--platform", required=True,
                        help="catalog name, optionally NAME:MODE")
    p_pred.add_argument("--dtype", choices=("fp32", "fp16", "int8"))
    p_pred.add_argument("--batches", type=int, nargs="+",
                        default=[1, 4, 8])
    p_pred.set_defaults(fn=_cmd_predict)

    p_plan = sub.add_parser("plan",
                            help="compile an execution plan and arena layout")
    p_plan.add_argument("--model", required=True)
    p_plan.add_argument("--batch", type=int, default=1)
    p_plan.add_argument("--steps", action="store_true",
                        help="list every bound step with its release set")
    p_plan.set_defaults(fn=_cmd_plan)

    p_opt = sub.add_parser("optimize",
                           help="run the deployment pipeline")
    p_opt.add_argument("--dataset", choices=_DATASETS, default="shapes")
    p_opt.add_argument("--passes", nargs="*", default=["fuse", "int8"],
                       help="optimization variants, e.g. fuse int8 "
                            "prune:0.25 fp16")
    p_opt.add_argument("--platform", help="optional target accelerator")
    p_opt.add_argument("--confusion", action="store_true",
                       help="print the final confusion matrix")
    p_opt.add_argument("--seed", type=int, default=0)
    p_opt.set_defaults(fn=_cmd_optimize)

    p_sim = sub.add_parser("simulate",
                           help="run an assembly program on the RV32 SoC")
    p_sim.add_argument("program", help="assembly source file")
    p_sim.add_argument("--cfu", action="store_true",
                       help="attach the SIMD MAC CFU")
    p_sim.add_argument("--max-steps", type=int, default=1_000_000)
    p_sim.set_defaults(fn=_cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
