"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

The observability substrate the rest of the stack publishes into (the
continuous-monitoring leg of the deployment flow: the paper measures
what a deployment *does*, and the follow-up AIoT work keeps measuring it
in production).  Two publication styles coexist:

* **Direct instruments** — :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` obtained from a :class:`MetricsRegistry` by name
  (get-or-create, so independent subsystems aggregate into one series).
  Updates take one small per-family lock; suitable for per-batch or
  per-request events.
* **Collectors** — zero-argument callables registered with
  :meth:`MetricsRegistry.register_collector` that produce
  :class:`MetricFamily` values *at scrape time*.  Hot paths that already
  keep their own cheap local counters (the scratch arena, the worker
  pool, the plan cache) are exported this way and pay **zero**
  per-operation cost for telemetry; the registry only reads their stats
  when someone actually asks for a snapshot.

Naming follows Prometheus conventions: ``repro_<subsystem>_<what>``
with a ``_total`` suffix on counters and base units (seconds, bytes) in
histogram/gauge names.  Histograms use fixed log-scale buckets
(:func:`log_buckets`) so wildly different latency magnitudes — a 20 us
kernel step and a 50 ms batch — land in meaningful buckets without
per-deployment tuning.

Samples produced by different sources under the same (name, labels) are
summed at collection time, so five engines' recorders or fifty plan
instances' arenas read as one process-wide series.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]


def log_buckets(start: float, factor: float = 2.0,
                count: int = 16) -> Tuple[float, ...]:
    """``count`` log-scale histogram bounds: start, start*factor, ...

    The fixed-bucket scheme the ISSUE asks for: bounds are decided once
    at histogram creation and never rebalanced, so concurrent observers
    never disagree about bucket edges.
    """
    if start <= 0:
        raise ValueError("log_buckets start must be > 0")
    if factor <= 1.0:
        raise ValueError("log_buckets factor must be > 1")
    if count < 1:
        raise ValueError("log_buckets count must be >= 1")
    bounds = []
    edge = float(start)
    for _ in range(count):
        bounds.append(edge)
        edge *= factor
    return tuple(bounds)


# Seconds-scale latency bounds: 100 us .. ~3.3 s in x2 steps.
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-4, 2.0, 16)
# Size-ish quantities (batch sizes, counts): 1 .. 256 in x2 steps.
DEFAULT_SIZE_BUCKETS = log_buckets(1.0, 2.0, 9)


def quantile_from_buckets(bounds: Sequence[float],
                          counts: Sequence[int], q: float) -> float:
    """Estimate the ``q``-quantile (0..1) of a log-bucket histogram.

    ``counts`` is per-bucket (non-cumulative), one slot per finite bound
    plus the trailing +Inf slot, as returned by
    :meth:`Histogram.bucket_counts`.  The rank is located in its bucket
    and linearly interpolated between the bucket's edges — the standard
    Prometheus ``histogram_quantile`` estimator.  The first bucket
    interpolates from 0; a rank landing in the +Inf overflow bucket
    clamps to the largest finite bound (there is no upper edge to
    interpolate toward).  Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile q must be within [0, 1]")
    if len(counts) != len(bounds) + 1:
        raise ValueError("counts must have one slot per bound plus +Inf")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank:
            if index >= len(bounds):          # +Inf overflow bucket
                return float(bounds[-1])
            upper = bounds[index]
            lower = bounds[index - 1] if index > 0 else 0.0
            if count == 0:
                return float(upper)
            fraction = (rank - previous) / count
            return float(lower + (upper - lower) * fraction)
    return float(bounds[-1])


@dataclass(frozen=True)
class Sample:
    """One exposition line: a value under a label set."""

    name: str
    labels: LabelPairs
    value: float


@dataclass
class MetricFamily:
    """A named metric with its help text, kind, and current samples.

    ``kind`` is one of ``counter``, ``gauge``, ``histogram``.  Histogram
    families carry their samples pre-exploded into ``_bucket``/``_sum``/
    ``_count`` sample names (cumulative ``le`` buckets, Prometheus
    style), so exporters never need histogram-specific logic.
    """

    name: str
    kind: str
    help: str = ""
    samples: List[Sample] = field(default_factory=list)


def _label_pairs(labelnames: Sequence[str],
                 labelvalues: Sequence[str]) -> LabelPairs:
    return tuple(zip(labelnames, (str(v) for v in labelvalues)))


class _Family:
    """Shared get-or-create child machinery for labeled instruments."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            # Unlabeled family: the family proxies to one default child.
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, *values, **kwvalues):
        """The child instrument for one label-value combination."""
        if kwvalues:
            if values:
                raise ValueError("pass label values positionally or by "
                                 "keyword, not both")
            try:
                values = tuple(kwvalues[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc} for {self.name}")
            if len(kwvalues) != len(self.labelnames):
                extra = set(kwvalues) - set(self.labelnames)
                raise ValueError(f"unknown labels {sorted(extra)} for "
                                 f"{self.name}")
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label "
                f"values {self.labelnames}, got {len(values)}")
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; "
                "call .labels(...) first")
        return self._children[()]

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            children = list(self._children.items())
        for key, child in children:
            labels = _label_pairs(self.labelnames, key)
            family.samples.extend(child.samples(self.name, labels))
        return family


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self, name: str, labels: LabelPairs) -> List[Sample]:
        return [Sample(name, labels, self._value)]


class Counter(_Family):
    """A monotonically increasing value (events, bytes, requests)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def samples(self, name: str, labels: LabelPairs) -> List[Sample]:
        return [Sample(name, labels, self._value)]


class Gauge(_Family):
    """A value that can go up and down (queue depth, pool size)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        # Prometheus ``le`` semantics: a value equal to a bound counts
        # in that bound's bucket.
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf last."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile (0..1) of the observed values."""
        with self._lock:
            counts = list(self._counts)
        return quantile_from_buckets(self._bounds, counts, q)

    def samples(self, name: str, labels: LabelPairs) -> List[Sample]:
        with self._lock:
            counts = list(self._counts)
            total = self._sum
        out: List[Sample] = []
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            out.append(Sample(name + "_bucket",
                              labels + (("le", _format_bound(bound)),),
                              cumulative))
        cumulative += counts[-1]
        out.append(Sample(name + "_bucket", labels + (("le", "+Inf"),),
                          cumulative))
        out.append(Sample(name + "_sum", labels, total))
        out.append(Sample(name + "_count", labels, cumulative))
        return out


def _format_bound(bound: float) -> str:
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


class Histogram(_Family):
    """Distribution over fixed log-scale buckets (see :func:`log_buckets`)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum

    def bucket_counts(self) -> List[int]:
        return self._default().bucket_counts()

    def quantile(self, q: float) -> float:
        return self._default().quantile(q)


Collector = Callable[[], Iterable[MetricFamily]]


class MetricsRegistry:
    """Get-or-create instrument store plus scrape-time collectors.

    ``collect()`` merges everything into one family list: instruments
    first, then each registered collector's families; families sharing a
    name are merged, and samples sharing (name, labels) are **summed**
    (many instances, one series).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Family] = {}
        self._collectors: List[Collector] = []

    # -- instruments -------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> _Family:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                if tuple(labelnames) != existing.labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}")
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    # -- collectors --------------------------------------------------------

    def register_collector(self, collector: Collector
                           ) -> Callable[[], None]:
        """Add a scrape-time producer; returns an unregister callable."""
        with self._lock:
            self._collectors.append(collector)

        def unregister() -> None:
            with self._lock:
                try:
                    self._collectors.remove(collector)
                except ValueError:
                    pass
        return unregister

    # -- scraping ----------------------------------------------------------

    def collect(self) -> List[MetricFamily]:
        """Everything, merged and sorted by family name."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        families: List[MetricFamily] = [inst.collect()
                                        for inst in instruments]
        for collector in collectors:
            families.extend(collector())
        merged: Dict[str, MetricFamily] = {}
        for family in families:
            target = merged.get(family.name)
            if target is None:
                merged[family.name] = MetricFamily(
                    family.name, family.kind, family.help,
                    list(family.samples))
            else:
                target.samples.extend(family.samples)
        for family in merged.values():
            summed: Dict[Tuple[str, LabelPairs], float] = {}
            order: List[Tuple[str, LabelPairs]] = []
            for sample in family.samples:
                key = (sample.name, sample.labels)
                if key not in summed:
                    order.append(key)
                    summed[key] = 0.0
                summed[key] += sample.value
            family.samples = [Sample(name, labels, summed[(name, labels)])
                              for name, labels in order]
        return [merged[name] for name in sorted(merged)]

    def sample_value(self, name: str,
                     labels: Optional[Dict[str, str]] = None
                     ) -> Optional[float]:
        """Convenience lookup of one collected sample (None if absent)."""
        wanted = tuple(sorted((labels or {}).items()))
        for family in self.collect():
            for sample in family.samples:
                if sample.name == name and \
                        tuple(sorted(sample.labels)) == wanted:
                    return sample.value
        return None


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every subsystem publishes into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
