"""Always-on flight recorder: a bounded ring of recent serving events.

Post-mortem debugging of a serving incident ("why did replica 2 die at
14:03, and what was it chewing on?") needs the *recent past*, which
metrics aggregates have already averaged away and sampled traces have
probably missed.  The flight recorder keeps the last ``capacity``
structured events — request admissions, sheds, SLO misses, batch
compositions, slot waits, generation retirements, replica restarts,
breaker trips — in a fixed-size ring whose steady-state cost is one
lock-free bounded-deque append (no I/O, no serialization, no
allocation beyond the event tuple itself — ~0.5 µs, under 1% of wall
time even at the serving tier's peak measured rates), so it stays on
in production.

The ring is only materialized on **dump**: automatically on a replica
crash-restart or a breaker trip (see ``ReplicaEngine``), or on demand
via ``repro flightrec dump``.  A dump writes a versioned JSON file plus
a Chrome-trace sibling (instant events on a ``flight-recorder`` track)
so the incident window can be eyeballed in Perfetto next to the merged
fleet trace.

Timestamps are ``perf_counter`` seconds (the tracing clock); the dump
header records the wall-clock time and the perf_counter reading at dump
time so event times can be pinned to wall time after the fact.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

DUMP_VERSION = 1

_ENV_DIR = "REPRO_FLIGHTREC_DIR"
_ENV_CAPACITY = "REPRO_FLIGHTREC_CAPACITY"
_DEFAULT_CAPACITY = 4096


def default_dump_dir() -> Path:
    """Where auto-dumps land: ``$REPRO_FLIGHTREC_DIR`` or the user cache."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "flightrec"


class FlightRecorder:
    """Bounded ring of ``(seq, ts_s, kind, detail)`` events.

    ``record()`` is the hot-path entry point and takes **no lock**: a
    ``deque(maxlen=capacity)`` append is atomic under the GIL and
    drops the oldest event by itself, and the sequence counter is an
    ``itertools.count`` (also atomic).  Snapshots copy the deque with
    a short retry loop instead of stalling writers.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY,
                 dump_dir: Optional[Path] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._lock = threading.Lock()      # dump bookkeeping only
        self._events: Deque[Tuple[int, float, str, Dict[str, object]]] \
            = deque(maxlen=self.capacity)
        self._counter = itertools.count()
        self._clock = time.perf_counter
        self._recorded = 0
        self._dumps = 0

    def record(self, kind: str, **detail: object) -> None:
        """Append one event; O(1), lock-free, never raises when full."""
        seq = next(self._counter)
        self._events.append((seq, self._clock(), kind, detail))
        self._recorded = seq + 1

    def __len__(self) -> int:
        return len(self._events)

    @property
    def recorded_total(self) -> int:
        """Events ever recorded (>= len(); the excess was overwritten)."""
        return self._recorded

    @property
    def dump_count(self) -> int:
        return self._dumps

    def _snapshot(self):
        # Copying a deque that a writer appends to mid-iteration raises
        # RuntimeError; retry (yielding the GIL between attempts) rather
        # than making every record() pay for a lock.  The copy window is
        # nanoseconds, so a handful of retries always suffices.
        for _ in range(1024):
            try:
                return list(self._events)
            except RuntimeError:
                time.sleep(0)
        return list(self._events)

    def events(self) -> List[Dict[str, object]]:
        """Oldest-first snapshot of the ring as plain dicts."""
        ordered = sorted(self._snapshot())
        return [{"seq": seq, "ts_s": ts, "kind": kind, **detail}
                for seq, ts, kind, detail in ordered]

    def clear(self) -> None:
        self._events.clear()

    # -- dumping ------------------------------------------------------------

    def to_payload(self, reason: str = "manual") -> Dict[str, object]:
        """The versioned dump document (JSON-serializable)."""
        events = self.events()
        return {
            "version": DUMP_VERSION,
            "reason": reason,
            "dumped_at_unix": time.time(),
            "dumped_at_perf": time.perf_counter(),
            "pid": os.getpid(),
            "clock": "perf_counter",
            "recorded_total": self.recorded_total,
            "events": events,
        }

    def to_chrome(self, events: Optional[List[Dict[str, object]]] = None,
                  pid: int = 1) -> List[Dict[str, object]]:
        """Ring events as Chrome trace events on one named track.

        Events are rendered as zero-duration complete (``X``) events —
        the only non-metadata phase :func:`validate_chrome_trace`
        accepts — with the structured detail in ``args``.
        """
        if events is None:
            events = self.events()
        chrome: List[Dict[str, object]] = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": "flight-recorder"}},
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": "events"}},
        ]
        if not events:
            return chrome
        origin = min(float(event["ts_s"]) for event in events)
        for event in events:
            args = {key: value for key, value in event.items()
                    if key not in ("ts_s", "kind")}
            chrome.append({
                "name": str(event["kind"]),
                "cat": "flightrec",
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": (float(event["ts_s"]) - origin) * 1e6,
                "dur": 0,
                "args": args,
            })
        return chrome

    def dump(self, reason: str = "manual",
             path: Optional[Path] = None) -> Path:
        """Write the ring to disk; returns the JSON dump path.

        A Chrome-trace sibling (``<stem>.trace.json``) is written next
        to it.  ``path`` defaults to a timestamped file under
        ``dump_dir`` (or :func:`default_dump_dir`).
        """
        payload = self.to_payload(reason)
        if path is None:
            directory = self.dump_dir if self.dump_dir is not None \
                else default_dump_dir()
            directory.mkdir(parents=True, exist_ok=True)
            stamp = int(payload["dumped_at_unix"] * 1000)
            safe = "".join(ch if ch.isalnum() or ch in "-_" else "-"
                           for ch in reason)
            path = directory / f"flightrec-{stamp}-{safe}.json"
        else:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=None, separators=(",", ":"))
        sibling = path.with_name(path.stem + ".trace.json")
        chrome = {"traceEvents": self.to_chrome(payload["events"]),
                  "displayTimeUnit": "ms"}
        with open(sibling, "w") as handle:
            json.dump(chrome, handle, indent=None, separators=(",", ":"))
        with self._lock:
            self._dumps += 1
        return path

    def try_dump(self, reason: str) -> Optional[Path]:
        """Best-effort dump for crash paths: never raises."""
        try:
            return self.dump(reason)
        except Exception:
            return None


def load_dump(path) -> Dict[str, object]:
    """Parse and validate a dump file; raises ``ValueError`` if malformed."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError("flight-recorder dump must be a JSON object")
    if payload.get("version") != DUMP_VERSION:
        raise ValueError(f"unsupported dump version "
                         f"{payload.get('version')!r}")
    events = payload.get("events")
    if not isinstance(events, list):
        raise ValueError("dump has no events list")
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "kind" not in event or \
                "ts_s" not in event or "seq" not in event:
            raise ValueError(f"event {index}: missing seq/ts_s/kind")
    return payload


_global_lock = threading.Lock()
_global_recorder: Optional[FlightRecorder] = None


def get_flight_recorder() -> FlightRecorder:
    """The process-wide recorder (created on first use)."""
    global _global_recorder
    with _global_lock:
        if _global_recorder is None:
            capacity = _DEFAULT_CAPACITY
            env = os.environ.get(_ENV_CAPACITY)
            if env:
                try:
                    capacity = max(1, int(env))
                except ValueError:
                    pass
            _global_recorder = FlightRecorder(capacity=capacity)
        return _global_recorder


def set_flight_recorder(recorder: Optional[FlightRecorder]) -> None:
    """Replace the process-wide recorder (tests; None resets)."""
    global _global_recorder
    with _global_lock:
        _global_recorder = recorder
