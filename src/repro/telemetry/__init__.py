"""Unified telemetry: metrics registry, request tracing, exporters.

One observability layer for the whole stack (the continuous-monitoring
requirement of the AIoT deployment flow):

* :mod:`repro.telemetry.registry` — process-wide counters, gauges, and
  fixed log-bucket histograms, plus scrape-time collectors;
* :mod:`repro.telemetry.collectors` — the runtime subsystems (arena,
  worker pool, plan cache, serving engines, safety pipelines) publishing
  their existing cheap stats with zero hot-path overhead;
* :mod:`repro.telemetry.tracing` — per-request span trees (queue-wait /
  dispatch-wait / batch-assembly / execute / per-step kernels) behind a
  deterministic sampler that is off by default;
* :mod:`repro.telemetry.export` — Prometheus text exposition, JSON
  snapshots, and Perfetto-loadable Chrome trace-event files (including
  the multi-process fleet merger for the replica tier);
* :mod:`repro.telemetry.clock` — min-RTT midpoint clock alignment so
  spans recorded in replica processes merge monotonically onto the
  parent's perf_counter axis;
* :mod:`repro.telemetry.flightrec` — the always-on bounded ring of
  recent serving events, auto-dumped on crash-restart or breaker trip.

Surfaced via ``repro metrics``, ``repro trace [--replicas N]``,
``repro flightrec dump``, and ``serve-bench
--metrics-json/--trace-out``.
"""

from .clock import ClockSample, ClockSync, handshake as clock_handshake
from .export import (
    chrome_trace_processes,
    parse_prometheus,
    registry_to_json,
    render_prometheus,
    render_summary,
    timeline_to_chrome,
    traces_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from .flightrec import (
    FlightRecorder,
    get_flight_recorder,
    load_dump as load_flightrec_dump,
    set_flight_recorder,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    get_registry,
    log_buckets,
    quantile_from_buckets,
    set_registry,
)
from .tracing import RequestTrace, Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry",
    "Sample", "DEFAULT_LATENCY_BUCKETS", "DEFAULT_SIZE_BUCKETS",
    "get_registry", "set_registry", "log_buckets",
    "quantile_from_buckets",
    "RequestTrace", "Span", "Tracer",
    "ClockSample", "ClockSync", "clock_handshake",
    "FlightRecorder", "get_flight_recorder", "set_flight_recorder",
    "load_flightrec_dump",
    "chrome_trace_processes",
    "parse_prometheus", "registry_to_json", "render_prometheus",
    "render_summary",
    "timeline_to_chrome", "traces_to_chrome", "validate_chrome_trace",
    "write_chrome_trace",
]
