"""Unified telemetry: metrics registry, request tracing, exporters.

One observability layer for the whole stack (the continuous-monitoring
requirement of the AIoT deployment flow):

* :mod:`repro.telemetry.registry` — process-wide counters, gauges, and
  fixed log-bucket histograms, plus scrape-time collectors;
* :mod:`repro.telemetry.collectors` — the runtime subsystems (arena,
  worker pool, plan cache, serving engines, safety pipelines) publishing
  their existing cheap stats with zero hot-path overhead;
* :mod:`repro.telemetry.tracing` — per-request span trees (queue-wait /
  dispatch-wait / batch-assembly / execute / per-step kernels) behind a
  deterministic sampler that is off by default;
* :mod:`repro.telemetry.export` — Prometheus text exposition, JSON
  snapshots, and Perfetto-loadable Chrome trace-event files.

Surfaced via ``repro metrics``, ``repro trace``, and ``serve-bench
--metrics-json/--trace-out``.
"""

from .export import (
    parse_prometheus,
    registry_to_json,
    render_prometheus,
    render_summary,
    timeline_to_chrome,
    traces_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    get_registry,
    log_buckets,
    quantile_from_buckets,
    set_registry,
)
from .tracing import RequestTrace, Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry",
    "Sample", "DEFAULT_LATENCY_BUCKETS", "DEFAULT_SIZE_BUCKETS",
    "get_registry", "set_registry", "log_buckets",
    "quantile_from_buckets",
    "RequestTrace", "Span", "Tracer",
    "parse_prometheus", "registry_to_json", "render_prometheus",
    "render_summary",
    "timeline_to_chrome", "traces_to_chrome", "validate_chrome_trace",
    "write_chrome_trace",
]
