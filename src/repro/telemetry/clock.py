"""Cross-process clock alignment for merged traces.

Every process stamps trace times with ``time.perf_counter()``, whose
zero point is arbitrary *per process*: a replica's span timestamps live
in a clock domain unrelated to the parent's.  To merge child spans onto
the parent's timeline we estimate the constant offset between the two
domains with the classic min-RTT midpoint probe (the NTP/Cristian
estimate):

    parent sends a probe at ``t_send`` (parent clock), the child
    answers with its own clock reading ``t_child``, the parent receives
    the answer at ``t_recv``.  Assuming the outbound and return legs are
    symmetric, ``t_child`` was read at parent time ``(t_send+t_recv)/2``,
    so ``offset = (t_send+t_recv)/2 - t_child`` maps child readings into
    the parent domain via ``t_parent = t_child + offset``.

The asymmetry error is bounded by half the round-trip time, so the probe
with the **lowest RTT** wins: :class:`ClockSync` keeps the best estimate
seen and only replaces it with a lower-RTT sample (or any sample once
the estimate has aged past ``max_age_s``, so slow drift between the two
domains is periodically corrected).  A spawn-time handshake of a few
probes over a just-idle pipe typically lands an offset good to a few
microseconds — far below the span durations being aligned.

This module is deliberately transport-agnostic: the replica protocol in
:mod:`repro.serving.replicas` owns the probe frames and feeds
``(t_send, t_child, t_recv)`` triples into :meth:`ClockSync.observe`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

DEFAULT_HANDSHAKE_PROBES = 5
DEFAULT_RESYNC_S = 30.0


@dataclass(frozen=True)
class ClockSample:
    """One accepted probe: the offset estimate and its quality bound."""

    offset_s: float      # t_parent = t_child + offset_s
    rtt_s: float         # round-trip time of the probe (error <= rtt/2)
    synced_at_s: float   # parent perf_counter when the probe landed


class ClockSync:
    """Best-of-N offset estimate between a remote clock and ours.

    Not thread-safe by itself; callers serialize :meth:`observe` (the
    replica tier calls it only from its receive loop and the spawn-time
    handshake, which never overlap).
    """

    def __init__(self, max_age_s: float = DEFAULT_RESYNC_S * 10) -> None:
        if max_age_s <= 0:
            raise ValueError("max_age_s must be positive")
        self.max_age_s = float(max_age_s)
        self._best: Optional[ClockSample] = None

    def observe(self, t_send: float, t_child: float,
                t_recv: float) -> ClockSample:
        """Fold one probe into the estimate; returns the accepted sample."""
        rtt = max(0.0, t_recv - t_send)
        sample = ClockSample(offset_s=(t_send + t_recv) / 2.0 - t_child,
                             rtt_s=rtt, synced_at_s=t_recv)
        best = self._best
        if best is None or rtt <= best.rtt_s or \
                t_recv - best.synced_at_s > self.max_age_s:
            self._best = sample
        return sample

    @property
    def synced(self) -> bool:
        return self._best is not None

    @property
    def offset_s(self) -> float:
        """Current child->parent offset (0.0 until the first probe)."""
        return self._best.offset_s if self._best is not None else 0.0

    @property
    def rtt_s(self) -> float:
        return self._best.rtt_s if self._best is not None else float("inf")

    def to_parent(self, t_child: float) -> float:
        """Map a child-domain perf_counter reading onto the parent axis."""
        return t_child + self.offset_s

    def stale(self, now: Optional[float] = None,
              resync_s: float = DEFAULT_RESYNC_S) -> bool:
        """True when a fresh probe is due (never synced, or aged out)."""
        if self._best is None:
            return True
        if now is None:
            now = time.perf_counter()
        return now - self._best.synced_at_s >= resync_s


def handshake(probe: Callable[[], float],
              probes: int = DEFAULT_HANDSHAKE_PROBES,
              sync: Optional[ClockSync] = None) -> ClockSync:
    """Run a blocking spawn-time handshake of ``probes`` round trips.

    ``probe()`` must perform one round trip and return the child's clock
    reading; this helper stamps ``t_send``/``t_recv`` around the call and
    keeps the min-RTT estimate.  Used by the replica tier right after the
    READY frame, while the parent still owns the pipe exclusively.
    """
    if probes < 1:
        raise ValueError("probes must be >= 1")
    sync = sync if sync is not None else ClockSync()
    for _ in range(probes):
        t_send = time.perf_counter()
        t_child = probe()
        t_recv = time.perf_counter()
        sync.observe(t_send, t_child, t_recv)
    return sync
