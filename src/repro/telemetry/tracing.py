"""Structured request tracing: span trees for end-to-end serving latency.

A sampled serving request carries a :class:`RequestTrace` from the
moment ``infer()`` accepts it.  The engine stamps wall-clock *marks* at
each pipeline boundary (enqueue, dequeue, batch-task start, batch
assembled, execute start/end, completion) and attaches the executor's
per-step timeline; :meth:`RequestTrace.build_spans` then decomposes the
request's total latency into a span tree::

    request
    ├── queue_wait        submit -> dispatcher pops the batch
    ├── dispatch_wait     batch popped -> batch task starts on the pool
    ├── batch_assembly    feed concatenation along the batch axis
    ├── execute           the plan run
    │   ├── <step 0>      per-step kernel spans (executor timeline)
    │   └── ...
    └── finalize          splitting the batch into per-request copies

Sampling is **off by default** and deterministic: a rate of ``r`` traces
every ``1/r``-th accepted request (rate 1.0 traces everything), so the
untraced hot path pays exactly one branch per request.  Finished traces
land in the :class:`Tracer`'s bounded ring buffer, from which
:mod:`repro.telemetry.export` renders Chrome trace-event JSON that loads
directly in Perfetto / ``chrome://tracing``.

All trace timestamps use ``time.perf_counter()`` — the same clock as the
executor's step timeline — so step spans nest exactly inside their
batch's execute span.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

_trace_ids = itertools.count(1)


@dataclass
class Span:
    """One timed operation; ``start_s``/``end_s`` are perf_counter seconds.

    ``process`` names the process track a span belongs to in a merged
    multi-process trace (``None`` means the parent/serving process; the
    replica tier stamps remote spans ``replica-<index>``).  All times are
    expected to be on the *parent's* perf_counter axis by the time a
    span reaches the exporter — cross-process alignment happens where
    spans are merged (see :mod:`repro.telemetry.clock`).
    """

    name: str
    category: str
    start_s: float
    end_s: float
    thread: int = 0
    args: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    process: Optional[str] = None

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class RequestTrace:
    """Per-request mark sheet that renders into a span tree.

    Engine code calls :meth:`mark` with well-known keys (cheap: one
    perf_counter read and a dict store); span construction is deferred
    to :meth:`build_spans`, which runs once, off the hot path, after the
    request completes.
    """

    __slots__ = ("trace_id", "name", "marks", "steps", "batch_size",
                 "children", "_root")

    # (span name, begin mark key, end mark key) in pipeline order.
    # Subclasses override to describe a different pipeline (the replica
    # tier's TierRequestTrace swaps in IPC phases).
    _PHASES: Tuple[Tuple[str, str, str], ...] = (
        ("queue_wait", "enqueued", "dequeued"),
        ("dispatch_wait", "dequeued", "task_start"),
        ("batch_assembly", "task_start", "assembled"),
        ("execute", "assembled", "executed"),
        ("finalize", "executed", "completed"),
    )
    # The phase that hosts executor step spans / attached child spans.
    _STEPS_PHASE = "execute"

    def __init__(self, name: str = "request") -> None:
        self.trace_id = next(_trace_ids)
        self.name = name
        self.marks: Dict[str, float] = {}
        # Executor step timeline entries (dicts with name/op/start/end/
        # thread, start/end relative to the run's own t0).
        self.steps: List[Dict[str, object]] = []
        self.batch_size: int = 0
        # Pre-built child spans (absolute parent-clock times) adopted
        # into a named phase — how remote replica spans join the tree.
        self.children: Dict[str, List[Span]] = {}
        self._root: Optional[Span] = None

    def mark(self, key: str, at: Optional[float] = None) -> None:
        self.marks[key] = time.perf_counter() if at is None else at

    def attach_steps(self, timeline: List[Dict[str, object]]) -> None:
        """Adopt an executor timeline (run-relative times) for this trace."""
        self.steps = list(timeline)

    def attach_children(self, phase: str, spans: List[Span]) -> None:
        """Adopt finished spans (absolute times) under a named phase."""
        self.children.setdefault(phase, []).extend(spans)

    def build_spans(self) -> Optional[Span]:
        """The request's span tree, or None if the trace never started."""
        if self._root is not None:
            return self._root
        marks = self.marks
        start = marks.get("enqueued")
        end = marks.get("completed", marks.get("executed"))
        if start is None or end is None:
            return None
        root = Span(self.name, "request", start, end,
                    args={"trace_id": self.trace_id,
                          "batch_size": self.batch_size})
        for span_name, begin_key, end_key in self._PHASES:
            begin = marks.get(begin_key)
            finish = marks.get(end_key)
            if begin is None or finish is None:
                continue
            phase = Span(span_name, "serving", begin, finish)
            if span_name == self._STEPS_PHASE and self.steps:
                execute_t0 = marks.get("execute_t0", begin)
                for entry in self.steps:
                    phase.children.append(Span(
                        str(entry["name"]), str(entry.get("op", "step")),
                        execute_t0 + float(entry["start"]),
                        execute_t0 + float(entry["end"]),
                        thread=int(entry.get("thread", 0)),
                        args={"rows": entry["rows"]}
                        if "rows" in entry else {},
                    ))
            phase.children.extend(self.children.get(span_name, ()))
            root.children.append(phase)
        self._root = root
        return root

    def phase_durations_ms(self) -> Dict[str, float]:
        """Span name -> milliseconds, for the slow-request log line."""
        root = self.build_spans()
        if root is None:
            return {}
        durations = {child.name: child.duration_s * 1e3
                     for child in root.children}
        durations["total"] = root.duration_s * 1e3
        return durations


class Tracer:
    """Sampling decision + bounded store of finished request traces.

    ``sample_rate`` of 0.0 (the default) disables tracing entirely; the
    serving hot path then pays a single ``is None`` / ``enabled`` branch
    per request.  Sampling is deterministic (an accumulator, not a RNG):
    rate 0.25 traces exactly every 4th request, which keeps tests and CI
    smoke runs reproducible.
    """

    def __init__(self, sample_rate: float = 0.0,
                 capacity: int = 256) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample_rate = float(sample_rate)
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self._sampled = 0
        self._finished: Deque[RequestTrace] = deque(maxlen=capacity)

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def sample(self) -> bool:
        """Decide whether the next request is traced (thread-safe)."""
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            with self._lock:
                self._sampled += 1
            return True
        with self._lock:
            self._accumulator += self.sample_rate
            if self._accumulator >= 1.0:
                self._accumulator -= 1.0
                self._sampled += 1
                return True
            return False

    def finish(self, trace: RequestTrace) -> None:
        trace.build_spans()
        with self._lock:
            self._finished.append(trace)

    def traces(self) -> List[RequestTrace]:
        with self._lock:
            return list(self._finished)

    @property
    def sampled_count(self) -> int:
        return self._sampled

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
