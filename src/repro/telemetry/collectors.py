"""Scrape-time collectors for the runtime's existing cheap counters.

The arena, worker pool, plan cache, serving recorder/engine, and safety
monitor pipeline all keep small local stats already (they predate this
module).  Rather than threading registry handles through every hot path,
each instance registers itself here at construction — a single
``WeakSet.add`` — and one collector per subsystem reads the live
instances' stats when the registry is scraped.  Hot paths therefore pay
**nothing** for telemetry; dead instances drop out of the weak sets and
their contribution simply stops accumulating.

Series produced (all prefixed ``repro_``):

========================  =========  =====================================
arena                     counters   allocations/allocated_bytes/
                                     large_allocations/reuses/reused_bytes/
                                     releases (``_total``)
                          gauges     pooled_bytes, instances
kernel workspace          counters   allocations/allocated_bytes/hits
                                     (``_total``)
                          gauges     bytes, peak_bytes, instances
plan cache                counters   hits/misses/stores (``_total``)
worker pool               counters   tasks_submitted/tasks_completed
                          gauges     workers, tasks_pending
serving (per recorder)    counters   requests/batches/failures (``_total``)
                          gauges     queue_depth, latency p50/p95/p99 ms,
                                     throughput window rps, failure ratio
replica tier              counters   replica requests/failures and child
                                     arena allocations (labeled
                                     ``replica="N"``), tier restarts/shed,
                                     shm requests/fallbacks
                          gauges     live replicas, per-replica inflight,
                                     shm bytes inflight
safety pipeline           counters   samples{action=...}, anomalies{kind=...}
========================  =========  =====================================

The collectors are installed on the **default** registry the first time
any instance registers; :func:`install_runtime_collectors` installs the
same set on a custom registry (tests do this to scrape in isolation).
"""

from __future__ import annotations

import threading
import weakref
from typing import Iterable, List

from .registry import MetricFamily, MetricsRegistry, Sample, get_registry

_arenas: "weakref.WeakSet" = weakref.WeakSet()
_workspaces: "weakref.WeakSet" = weakref.WeakSet()
_pools: "weakref.WeakSet" = weakref.WeakSet()
_plan_caches: "weakref.WeakSet" = weakref.WeakSet()
_engines: "weakref.WeakSet" = weakref.WeakSet()
_pipelines: "weakref.WeakSet" = weakref.WeakSet()
_replica_tiers: "weakref.WeakSet" = weakref.WeakSet()

_install_lock = threading.Lock()
_installed_default = False


def track_arena(arena) -> None:
    _ensure_default_installed()
    _arenas.add(arena)


def track_workspace(workspace) -> None:
    _ensure_default_installed()
    _workspaces.add(workspace)


def track_pool(pool) -> None:
    _ensure_default_installed()
    _pools.add(pool)


def track_plan_cache(cache) -> None:
    _ensure_default_installed()
    _plan_caches.add(cache)


def track_engine(engine) -> None:
    _ensure_default_installed()
    _engines.add(engine)


def track_pipeline(pipeline) -> None:
    _ensure_default_installed()
    _pipelines.add(pipeline)


def track_replica_tier(tier) -> None:
    _ensure_default_installed()
    _replica_tiers.add(tier)


def _ensure_default_installed() -> None:
    global _installed_default
    if _installed_default:
        return
    with _install_lock:
        if not _installed_default:
            install_runtime_collectors(get_registry())
            _installed_default = True


def install_runtime_collectors(registry: MetricsRegistry) -> List:
    """Register every subsystem collector on ``registry``.

    Returns the unregister callables (tests use them to detach).
    """
    return [
        registry.register_collector(_collect_arenas),
        registry.register_collector(_collect_workspaces),
        registry.register_collector(_collect_pools),
        registry.register_collector(_collect_plan_caches),
        registry.register_collector(_collect_engines),
        registry.register_collector(_collect_pipelines),
        registry.register_collector(_collect_replica_tiers),
    ]


def _counter_family(name: str, help: str, value: float
                    ) -> MetricFamily:
    return MetricFamily(name, "counter", help,
                        [Sample(name, (), float(value))])


def _gauge_family(name: str, help: str, value: float) -> MetricFamily:
    return MetricFamily(name, "gauge", help,
                        [Sample(name, (), float(value))])


def _collect_arenas() -> Iterable[MetricFamily]:
    allocations = allocated = large = reuses = reused = releases = 0
    pooled = instances = outstanding = peak = 0
    for arena in list(_arenas):
        stats = arena.stats
        allocations += stats.allocations
        allocated += stats.allocated_bytes
        large += stats.large_allocations
        reuses += stats.reuses
        reused += stats.reused_bytes
        releases += stats.releases
        pooled += arena.pooled_bytes()
        outstanding += stats.outstanding_bytes
        peak += stats.peak_bytes
        instances += 1
    yield _counter_family(
        "repro_arena_allocations_total",
        "Heap allocations performed by scratch arenas (misses of the "
        "free pool)", allocations)
    yield _counter_family(
        "repro_arena_allocated_bytes_total",
        "Bytes obtained from the heap by scratch arenas", allocated)
    yield _counter_family(
        "repro_arena_large_allocations_total",
        "Arena allocations above the large-buffer threshold", large)
    yield _counter_family(
        "repro_arena_reuses_total",
        "Buffer requests served from arena free pools", reuses)
    yield _counter_family(
        "repro_arena_reused_bytes_total",
        "Bytes served from arena free pools", reused)
    yield _counter_family(
        "repro_arena_releases_total",
        "Buffers returned to arena free pools", releases)
    yield _gauge_family(
        "repro_arena_pooled_bytes",
        "Bytes currently parked in arena free pools", pooled)
    yield _gauge_family(
        "repro_arena_outstanding_bytes",
        "Bytes currently checked out of scratch arenas", outstanding)
    yield _gauge_family(
        "repro_arena_peak_bytes",
        "High-water mark of arena live bytes (outstanding + pooled)",
        peak)
    yield _gauge_family(
        "repro_arena_instances",
        "Live scratch arena instances", instances)


def _collect_workspaces() -> Iterable[MetricFamily]:
    allocations = allocated = hits = 0
    resident = peak = instances = 0
    for workspace in list(_workspaces):
        allocations += workspace.allocations
        allocated += workspace.allocated_bytes
        hits += workspace.hits
        resident += workspace.nbytes()
        peak += workspace.peak_bytes
        instances += 1
    yield _counter_family(
        "repro_workspace_allocations_total",
        "Scratch buffers created by kernel workspaces", allocations)
    yield _counter_family(
        "repro_workspace_allocated_bytes_total",
        "Bytes allocated for kernel workspace scratch buffers", allocated)
    yield _counter_family(
        "repro_workspace_hits_total",
        "Workspace buffer requests served by an existing buffer", hits)
    yield _gauge_family(
        "repro_workspace_bytes",
        "Bytes currently resident in kernel workspaces", resident)
    yield _gauge_family(
        "repro_workspace_peak_bytes",
        "Summed per-workspace high-water scratch bytes", peak)
    yield _gauge_family(
        "repro_workspace_instances", "Live kernel workspaces", instances)


def _collect_pools() -> Iterable[MetricFamily]:
    workers = pending = submitted = completed = 0
    for pool in list(_pools):
        workers += pool.size
        pending += pool.pending()
        submitted += pool.tasks_submitted
        completed += pool.tasks_completed
    yield _gauge_family(
        "repro_pool_workers", "Threads in the shared worker pools",
        workers)
    yield _gauge_family(
        "repro_pool_tasks_pending",
        "Tasks queued on the worker pools, not yet started", pending)
    yield _counter_family(
        "repro_pool_tasks_submitted_total",
        "Tasks ever submitted to the worker pools", submitted)
    yield _counter_family(
        "repro_pool_tasks_completed_total",
        "Tasks the worker pools finished running", completed)


def _collect_plan_caches() -> Iterable[MetricFamily]:
    hits = misses = stores = 0
    for cache in list(_plan_caches):
        hits += cache.stats.hits
        misses += cache.stats.misses
        stores += cache.stats.stores
    yield _counter_family(
        "repro_plan_cache_hits_total",
        "Plan-cache lookups served from disk", hits)
    yield _counter_family(
        "repro_plan_cache_misses_total",
        "Plan-cache lookups that fell back to a cold build", misses)
    yield _counter_family(
        "repro_plan_cache_stores_total",
        "Plan-cache entries written", stores)


def _collect_engines() -> Iterable[MetricFamily]:
    requests = batches = failures = slow = 0
    shed = slo_misses = 0
    depth = 0
    p50 = p95 = p99 = window_rps = failure_rate = 0.0
    goodput = miss_rate = 0.0
    live = 0
    for engine in list(_engines):
        snapshot = engine.recorder.snapshot(
            queue_depth=engine.queue.depth())
        requests += snapshot.requests
        batches += snapshot.batches
        failures += snapshot.failures
        shed += snapshot.shed
        slo_misses += snapshot.slo_misses
        slow += engine.slow_requests
        depth += snapshot.queue_depth
        p50 = max(p50, snapshot.p50_ms)
        p95 = max(p95, snapshot.p95_ms)
        p99 = max(p99, snapshot.p99_ms)
        window_rps += snapshot.throughput_rps
        goodput += snapshot.goodput_rps
        failure_rate = max(failure_rate, snapshot.failure_rate)
        miss_rate = max(miss_rate, snapshot.miss_rate)
        live += 1
    yield _counter_family(
        "repro_serving_requests_total",
        "Requests completed by serving engines", requests)
    yield _counter_family(
        "repro_serving_batches_total",
        "Batches executed by serving engines", batches)
    yield _counter_family(
        "repro_serving_failures_total",
        "Requests failed by serving engines", failures)
    yield _counter_family(
        "repro_serving_slow_requests_total",
        "Requests that exceeded the engine slow-request threshold", slow)
    yield _gauge_family(
        "repro_serving_queue_depth",
        "Requests waiting in serving batch queues", depth)
    yield _gauge_family(
        "repro_serving_engines", "Live serving engines", live)
    yield _gauge_family(
        "repro_serving_latency_p50_ms",
        "Worst per-engine windowed p50 latency", p50)
    yield _gauge_family(
        "repro_serving_latency_p95_ms",
        "Worst per-engine windowed p95 latency", p95)
    yield _gauge_family(
        "repro_serving_latency_p99_ms",
        "Worst per-engine windowed p99 latency", p99)
    yield _gauge_family(
        "repro_serving_window_rps",
        "Summed sliding-window throughput across engines", window_rps)
    yield _gauge_family(
        "repro_serving_failure_rate",
        "Worst per-engine windowed failure rate", failure_rate)
    yield _counter_family(
        "repro_serving_shed_total",
        "Requests shed by SLO-aware admission control before execution",
        shed)
    yield _counter_family(
        "repro_serving_slo_misses_total",
        "Completed requests that finished after their deadline",
        slo_misses)
    yield _gauge_family(
        "repro_serving_goodput_rps",
        "Summed sliding-window SLO-met throughput across engines",
        goodput)
    yield _gauge_family(
        "repro_serving_miss_rate",
        "Worst per-engine windowed share of bad outcomes "
        "(failures + sheds + deadline misses)", miss_rate)
    yield _burn_rate_family()


def _burn_rate_family() -> MetricFamily:
    """Worst error-budget burn across every engine *and* replica tier
    (both publish through a ``MetricsRecorder``), one sample per
    window.  Lazy import: serving.metrics itself imports telemetry."""
    from ..serving.metrics import BURN_WINDOWS

    family = MetricFamily(
        "repro_serving_error_budget_burn", "gauge",
        "Worst per-engine SLO error-budget burn rate (bad-outcome share "
        "over the window divided by the SLO's error budget; 1.0 spends "
        "the budget exactly as fast as it accrues)")
    for label, window_s in BURN_WINDOWS:
        burn = 0.0
        for owner in list(_engines) + list(_replica_tiers):
            recorder = getattr(owner, "recorder", None)
            if recorder is not None:
                burn = max(burn, recorder.error_budget_burn(window_s))
        family.samples.append(Sample(
            family.name, (("window", label),), burn))
    return family


def _collect_replica_tiers() -> Iterable[MetricFamily]:
    """One registry view of every replica tier: per-replica series are
    labeled ``replica="N"`` so a single scrape shows the whole tier."""
    requests_family = MetricFamily(
        "repro_replica_requests_total", "counter",
        "Requests completed per replica process")
    failures_family = MetricFamily(
        "repro_replica_failures_total", "counter",
        "Requests failed per replica process (crashes included)")
    inflight_family = MetricFamily(
        "repro_replica_inflight", "gauge",
        "Batches currently in flight per replica process")
    arena_family = MetricFamily(
        "repro_replica_arena_allocations_total", "counter",
        "Scratch-arena heap allocations inside each replica process")
    live = restarts = shed = slow = 0
    shm_bytes = shm_requests = shm_fallbacks = 0
    for tier in list(_replica_tiers):
        shm_bytes += tier.shm_bytes_inflight
        shm_requests += tier.shm_requests
        shm_fallbacks += tier.shm_fallbacks
        slow += getattr(tier, "slow_requests", 0)
        for stats in tier.replica_stats():
            labels = (("replica", str(stats.index)),)
            requests_family.samples.append(Sample(
                requests_family.name, labels,
                float(stats.completed_requests)))
            failures_family.samples.append(Sample(
                failures_family.name, labels,
                float(stats.failed_requests)))
            inflight_family.samples.append(Sample(
                inflight_family.name, labels, float(stats.inflight)))
            arena_family.samples.append(Sample(
                arena_family.name, labels,
                float(stats.child_arena_allocations)))
            live += int(stats.alive)
        restarts += tier.restarts
        shed += tier.shed_requests
    for family in (requests_family, failures_family, inflight_family,
                   arena_family):
        if not family.samples:
            family.samples.append(Sample(
                family.name, (("replica", "none"),), 0.0))
        yield family
    yield _gauge_family(
        "repro_replicas_live", "Live replica processes across tiers",
        live)
    yield _counter_family(
        "repro_replica_tier_restarts_total",
        "Replica processes restarted after a crash", restarts)
    yield _counter_family(
        "repro_replica_tier_shed_total",
        "Requests shed by replica-tier admission control", shed)
    yield _counter_family(
        "repro_replica_tier_slow_requests_total",
        "Tier requests that exceeded the slow-request threshold", slow)
    yield _gauge_family(
        "repro_replica_shm_bytes_inflight",
        "Request payload bytes currently parked in shared-memory ring "
        "slots across replica tiers", shm_bytes)
    yield _counter_family(
        "repro_replica_shm_requests_total",
        "Batches whose payload crossed the replica data plane via a "
        "shared-memory slot", shm_requests)
    yield _counter_family(
        "repro_replica_shm_fallbacks_total",
        "Frames that fell back to the pipe codec while shared memory "
        "was enabled (oversize payload or no free slot)", shm_fallbacks)


def _collect_pipelines() -> Iterable[MetricFamily]:
    actions = {"passed": 0, "corrected": 0, "rejected": 0}
    observed = 0
    kinds: dict = {}
    for pipeline in list(_pipelines):
        stats = pipeline.stats
        observed += stats.observed
        actions["passed"] += stats.passed
        actions["corrected"] += stats.corrected
        actions["rejected"] += stats.rejected
        for kind, count in stats.anomalies_by_kind.items():
            kinds[kind] = kinds.get(kind, 0) + count
    yield _counter_family(
        "repro_safety_observed_total",
        "Samples inspected by safety monitor pipelines", observed)
    samples_family = MetricFamily(
        "repro_safety_samples_total", "counter",
        "Monitor pipeline decisions by action")
    for action, count in sorted(actions.items()):
        samples_family.samples.append(Sample(
            "repro_safety_samples_total", (("action", action),),
            float(count)))
    yield samples_family
    anomalies_family = MetricFamily(
        "repro_safety_anomalies_total", "counter",
        "Anomalies detected by monitor pipelines, by kind")
    for kind, count in sorted(kinds.items()):
        anomalies_family.samples.append(Sample(
            "repro_safety_anomalies_total", (("kind", kind),),
            float(count)))
    if not kinds:
        anomalies_family.samples.append(Sample(
            "repro_safety_anomalies_total", (("kind", "none"),), 0.0))
    yield anomalies_family
