"""Exporters: Prometheus text, JSON snapshots, Chrome trace-event JSON.

Three ways telemetry leaves the process:

* :func:`render_prometheus` — the text exposition format every
  Prometheus-compatible scraper understands (``# HELP``/``# TYPE``
  headers, escaped label values, cumulative histogram buckets).
  :func:`parse_prometheus` is the deliberately tiny inverse used by the
  CI smoke job to prove the output is well-formed.
* :func:`registry_to_json` — one nested dict for dashboards and the
  ``serve-bench --metrics-json`` artifact.
* :func:`timeline_to_chrome` / :func:`traces_to_chrome` — Chrome
  trace-event JSON (the format Perfetto and ``chrome://tracing`` load)
  built from executor step timelines and finished request traces.
  Worker threads become named tracks; every event is a complete ``X``
  event with microsecond ``ts``/``dur``.  :func:`validate_chrome_trace`
  re-checks an exported file's invariants (valid JSON, non-negative
  monotonically consistent times) without any browser involved.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .registry import MetricFamily, MetricsRegistry, get_registry
from .tracing import RequestTrace, Span

# -- Prometheus text exposition ---------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry's current state in Prometheus text exposition format."""
    registry = registry or get_registry()
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} "
                         f"{_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            if sample.labels:
                rendered = ",".join(
                    f'{key}="{_escape_label(value)}"'
                    for key, value in sample.labels)
                lines.append(f"{sample.name}{{{rendered}}} "
                             f"{_format_value(sample.value)}")
            else:
                lines.append(f"{sample.name} "
                             f"{_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Tiny exposition-format parser (the CI validity check).

    Returns ``{family_name: {"type": kind, "samples": {(sample_name,
    labels_tuple): value}}}``.  Raises ``ValueError`` on any malformed
    line, which is the point: feeding it :func:`render_prometheus`
    output proves the exposition is parseable.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family_for(sample_name: str) -> Optional[Dict[str, object]]:
        for suffix in ("", "_bucket", "_sum", "_count"):
            base = sample_name[:-len(suffix)] if suffix and \
                sample_name.endswith(suffix) else (
                    sample_name if not suffix else None)
            if base and base in families:
                return families[base]
        return None

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP")
            families.setdefault(parts[2], {"type": None, "samples": {}})
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "untyped"):
                raise ValueError(f"line {lineno}: malformed TYPE")
            entry = families.setdefault(parts[2],
                                        {"type": None, "samples": {}})
            entry["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _parse_sample_line(line, lineno)
        entry = family_for(name)
        if entry is None:
            entry = families.setdefault(name, {"type": None, "samples": {}})
        entry["samples"][(name, labels)] = value
    return families


def _parse_sample_line(line: str, lineno: int):
    brace = line.find("{")
    if brace != -1:
        close = line.rfind("}")
        if close == -1 or close < brace:
            raise ValueError(f"line {lineno}: unbalanced braces")
        name = line[:brace]
        label_text = line[brace + 1:close]
        rest = line[close + 1:].strip()
        labels = []
        for chunk in _split_labels(label_text, lineno):
            key, _, raw = chunk.partition("=")
            if not raw.startswith('"') or not raw.endswith('"'):
                raise ValueError(f"line {lineno}: unquoted label value")
            value = raw[1:-1].replace('\\"', '"') \
                .replace("\\n", "\n").replace("\\\\", "\\")
            labels.append((key, value))
        labels_key = tuple(labels)
    else:
        name, _, rest = line.partition(" ")
        rest = rest.strip()
        labels_key = ()
    if not name or not name.replace("_", "").replace(":", "").isalnum():
        raise ValueError(f"line {lineno}: bad metric name {name!r}")
    token = rest.split(" ")[0] if rest else ""
    try:
        value = float(token.replace("+Inf", "inf"))
    except ValueError:
        raise ValueError(f"line {lineno}: bad sample value {token!r}")
    return name, labels_key, value


def _split_labels(text: str, lineno: int) -> List[str]:
    chunks: List[str] = []
    current = []
    in_quotes = False
    escaped = False
    for ch in text:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\" and in_quotes:
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            chunks.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label quote")
    if current:
        chunks.append("".join(current))
    return [chunk for chunk in chunks if chunk]


# -- Human-readable summary -------------------------------------------------


def render_summary(registry: Optional[MetricsRegistry] = None) -> str:
    """Fixed-width operator summary of the registry.

    Counters and gauges print one ``name value`` line.  Histogram
    families get count/sum/p50/p95/p99 columns, with the percentiles
    estimated from the log buckets via
    :func:`repro.telemetry.registry.quantile_from_buckets` (linear
    interpolation within a bucket, Prometheus
    ``histogram_quantile``-style) — no raw samples are retained, so
    the estimate is exact only at bucket boundaries.
    """
    from .registry import quantile_from_buckets

    registry = registry or get_registry()
    scalar_lines: List[str] = []
    histogram_rows: List[tuple] = []
    for family in registry.collect():
        if family.kind != "histogram":
            for sample in family.samples:
                label = sample.name
                if sample.labels:
                    rendered = ",".join(f"{key}={value}" for key, value
                                        in sample.labels)
                    label = f"{sample.name}{{{rendered}}}"
                scalar_lines.append(
                    f"{label:<52} {_format_value(sample.value):>12}")
            continue
        # Regroup the exploded _bucket/_sum/_count samples per label
        # set and de-cumulate the buckets for the quantile estimator.
        grouped: Dict[tuple, Dict[str, object]] = {}
        for sample in family.samples:
            plain = tuple((key, value) for key, value in sample.labels
                          if key != "le")
            entry = grouped.setdefault(
                plain, {"bounds": [], "cumulative": [], "sum": 0.0,
                        "count": 0})
            if sample.name.endswith("_bucket"):
                bound = dict(sample.labels)["le"]
                if bound != "+Inf":
                    entry["bounds"].append(float(bound))
                entry["cumulative"].append(int(sample.value))
            elif sample.name.endswith("_sum"):
                entry["sum"] = sample.value
            elif sample.name.endswith("_count"):
                entry["count"] = int(sample.value)
        for plain, entry in grouped.items():
            cumulative = entry["cumulative"]
            counts = [cumulative[0]] + [
                cumulative[index] - cumulative[index - 1]
                for index in range(1, len(cumulative))]
            label = family.name
            if plain:
                rendered = ",".join(f"{key}={value}"
                                    for key, value in plain)
                label = f"{family.name}{{{rendered}}}"
            quantiles = [quantile_from_buckets(entry["bounds"], counts, q)
                         for q in (0.5, 0.95, 0.99)]
            histogram_rows.append(
                (label, entry["count"], entry["sum"], *quantiles))
    lines = scalar_lines
    if histogram_rows:
        if lines:
            lines.append("")
        lines.append(f"{'histogram':<52} {'count':>8} {'sum':>12} "
                     f"{'p50':>10} {'p95':>10} {'p99':>10}")
        for label, count, total, p50, p95, p99 in histogram_rows:
            lines.append(f"{label:<52} {count:>8} {total:>12.4f} "
                         f"{p50:>10.5f} {p95:>10.5f} {p99:>10.5f}")
    return "\n".join(lines) + "\n"


# -- JSON snapshot ----------------------------------------------------------


def registry_to_json(registry: Optional[MetricsRegistry] = None) -> Dict:
    """A JSON-serializable snapshot of every family and sample."""
    registry = registry or get_registry()
    families = []
    for family in registry.collect():
        families.append({
            "name": family.name,
            "type": family.kind,
            "help": family.help,
            "samples": [
                {"name": sample.name,
                 "labels": dict(sample.labels),
                 "value": sample.value}
                for sample in family.samples
            ],
        })
    return {"version": 1, "families": families}


# -- Chrome trace events ----------------------------------------------------

_SECONDS_TO_US = 1e6


def _thread_tracks(thread_ids: Sequence[int]) -> Dict[int, int]:
    """Stable compact tid assignment: caller thread first, then workers."""
    order: List[int] = []
    for ident in thread_ids:
        if ident not in order:
            order.append(ident)
    return {ident: index for index, ident in enumerate(order)}


def _metadata_events(tracks: Mapping[int, int], pid: int,
                     process: str = "repro") -> List[Dict]:
    events = []
    events.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                   "args": {"name": process}})
    for ident, tid in sorted(tracks.items(), key=lambda kv: kv[1]):
        label = "caller" if tid == 0 else f"worker-{tid}"
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": label,
                                            "ident": ident}})
    return events


def timeline_to_chrome(timelines: Sequence[Sequence[Mapping[str, object]]],
                       pid: int = 1,
                       offsets_s: Optional[Sequence[float]] = None
                       ) -> List[Dict]:
    """Chrome events from executor step timelines (one list per run).

    Each timeline entry is the executor's span dict (``name``/``op``/
    ``start``/``end``/``thread``/optional ``rows``) with run-relative
    seconds; ``offsets_s`` places each run on the global time axis
    (defaults to laying runs end to end with a small gap).
    """
    if offsets_s is not None and len(offsets_s) != len(timelines):
        raise ValueError("offsets_s must match the number of timelines")
    idents: List[int] = []
    for timeline in timelines:
        idents.extend(int(entry.get("thread", 0)) for entry in timeline)
    tracks = _thread_tracks(idents)
    events = _metadata_events(tracks, pid)
    cursor = 0.0
    for run, timeline in enumerate(timelines):
        if offsets_s is not None:
            offset = float(offsets_s[run])
        else:
            offset = cursor
            if timeline:
                cursor = offset + max(float(entry["end"])
                                      for entry in timeline) + 1e-4
        for entry in timeline:
            start = offset + float(entry["start"])
            duration = max(0.0, float(entry["end"]) - float(entry["start"]))
            event = {
                "name": str(entry["name"]),
                "cat": str(entry.get("op", "step")),
                "ph": "X",
                "pid": pid,
                "tid": tracks[int(entry.get("thread", 0))],
                "ts": start * _SECONDS_TO_US,
                "dur": duration * _SECONDS_TO_US,
                "args": {"run": run},
            }
            if "rows" in entry:
                event["args"]["rows"] = list(entry["rows"])
            events.append(event)
    return events


def traces_to_chrome(traces: Iterable[RequestTrace],
                     pid: int = 1) -> List[Dict]:
    """Chrome events from finished request traces (span trees).

    The serving phases of one request render on a per-request track;
    per-step execute children render on their worker-thread tracks, so a
    4-thread run shows kernel spans spread across worker rows.

    Spans carrying a ``process`` name (the replica tier stamps remote
    spans ``replica-<index>``) render in their own Chrome *process*
    track: each distinct name gets a fresh pid (``pid+1`` onward, sorted
    by name for stability) with ``process_name``/``thread_name``
    metadata, and the replica's worker threads become compact
    ``worker-M`` rows inside it.  All span times must already be on one
    clock axis (see :mod:`repro.telemetry.clock`); the merged fleet
    trace then shows parent dispatch windows with the child execute
    spans nested inside them.
    """
    spans: List[Span] = []
    roots: List[Span] = []
    for trace in traces:
        root = trace.build_spans()
        if root is None:
            continue
        roots.append(root)
        spans.extend(root.walk())
    if not roots:
        return []
    origin = min(span.start_s for span in roots)
    step_idents = [span.thread for span in spans
                   if span.process is None and span.thread and
                   span.category not in ("request", "serving")]
    tracks = _thread_tracks(step_idents)
    step_base = 1000  # keep worker tracks clear of request tracks
    events: List[Dict] = _metadata_events(
        {ident: step_base + tid for ident, tid in tracks.items()}, pid,
        process="parent")
    # One Chrome process per remote process name, threads compacted
    # within it (tid 0 is the replica's serve loop).
    remote_threads: Dict[str, List[int]] = {}
    for span in spans:
        if span.process is not None:
            remote_threads.setdefault(span.process, []).append(span.thread)
    remote_pids: Dict[str, int] = {}
    remote_tracks: Dict[str, Dict[int, int]] = {}
    for offset, name in enumerate(sorted(remote_threads)):
        remote_pid = pid + 1 + offset
        remote_pids[name] = remote_pid
        track = _thread_tracks([0] + remote_threads[name])
        remote_tracks[name] = track
        events.append({"name": "process_name", "ph": "M",
                       "pid": remote_pid, "tid": 0,
                       "args": {"name": name}})
        for ident, tid in sorted(track.items(), key=lambda kv: kv[1]):
            label = "main" if tid == 0 else f"worker-{tid}"
            events.append({"name": "thread_name", "ph": "M",
                           "pid": remote_pid, "tid": tid,
                           "args": {"name": label, "ident": ident}})
    for index, root in enumerate(roots):
        request_tid = index % 100
        for span in root.walk():
            if span.process is not None:
                span_pid = remote_pids[span.process]
                tid = remote_tracks[span.process].get(span.thread, 0)
            elif span.category in ("request", "serving"):
                span_pid, tid = pid, request_tid
            else:
                span_pid = pid
                tid = step_base + tracks.get(span.thread, 0)
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": span_pid,
                "tid": tid,
                "ts": (span.start_s - origin) * _SECONDS_TO_US,
                "dur": span.duration_s * _SECONDS_TO_US,
                "args": dict(span.args),
            })
    return events


def chrome_trace_processes(payload) -> Dict[int, str]:
    """``pid -> process name`` from a trace's metadata events.

    Accepts the parsed JSON object, a raw string, or a bare event list;
    used by tests and the CI smoke job to assert a merged fleet trace
    really carries parent + per-replica tracks.
    """
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    events = payload.get("traceEvents", []) if isinstance(payload, dict) \
        else payload
    names: Dict[int, str] = {}
    for event in events:
        if isinstance(event, dict) and event.get("ph") == "M" and \
                event.get("name") == "process_name":
            names[int(event["pid"])] = str(event["args"]["name"])
    return names


def write_chrome_trace(path, events: Sequence[Mapping]) -> None:
    """Write a Perfetto-loadable trace file (JSON object format)."""
    payload = {"traceEvents": list(events), "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))


def validate_chrome_trace(payload) -> List[Dict]:
    """Check trace-event invariants; returns the complete events.

    Accepts the parsed JSON object (or a raw string) and raises
    ``ValueError`` unless every ``X`` event has non-negative ``ts`` and
    ``dur`` (monotonic consistency: ``ts + dur`` never precedes ``ts``),
    a name, and integer ``pid``/``tid``; metadata (``M``) events naming
    process/thread tracks must carry a string ``args.name``, and no two
    ``process_name`` events may claim the same pid with different
    names.  Used by the CI smoke job on the uploaded artifact.
    """
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("traceEvents"), list):
        raise ValueError("trace must be an object with a traceEvents list")
    complete: List[Dict] = []
    process_names: Dict[int, str] = {}
    for index, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"event {index}: not a trace event object")
        if event["ph"] == "M":
            if event.get("name") in ("process_name", "thread_name"):
                if not isinstance(event.get("pid"), int):
                    raise ValueError(f"event {index}: metadata pid "
                                     "must be an int")
                label = event.get("args", {}).get("name") \
                    if isinstance(event.get("args"), dict) else None
                if not isinstance(label, str) or not label:
                    raise ValueError(f"event {index}: metadata track "
                                     "needs a string args.name")
                if event["name"] == "process_name":
                    pid = event["pid"]
                    if process_names.get(pid, label) != label:
                        raise ValueError(
                            f"event {index}: pid {pid} named both "
                            f"{process_names[pid]!r} and {label!r}")
                    process_names[pid] = label
            continue
        if event["ph"] != "X":
            raise ValueError(f"event {index}: unsupported phase "
                             f"{event['ph']!r}")
        if not event.get("name"):
            raise ValueError(f"event {index}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"event {index}: {key} must be an int")
        ts, dur = event.get("ts"), event.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {index}: bad ts {ts!r}")
        if not isinstance(dur, (int, float)) or dur < 0:
            raise ValueError(f"event {index}: bad dur {dur!r}")
        complete.append(event)
    if not complete:
        raise ValueError("trace contains no complete (ph=X) events")
    return complete
