"""ONNX-like model intermediate representation.

The IR is the interchange format of the reproduction's toolchain, playing
the role ONNX plays in VEDLIoT (paper Sec. III): a static dataflow graph
with typed tensors, shape inference, cost accounting, and bit-exact
serialization, plus a zoo of the reference models used in the evaluation.
"""

from .tensor import (
    DType,
    ShapeError,
    TensorSpec,
    broadcast_shapes,
    conv2d_output_shape,
    pool2d_output_shape,
)
from .ops import OpCost, OpSchema, get_op, register_op, registered_ops
from .graph import Graph, GraphError, Node
from .builder import GraphBuilder
from .serialization import (
    SerializationError,
    canonical_dumps,
    dumps,
    graph_fingerprint,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    loads,
    save_graph,
)
from .model_zoo import available_models, build_model, register_model

__all__ = [
    "DType", "ShapeError", "TensorSpec", "broadcast_shapes",
    "conv2d_output_shape", "pool2d_output_shape",
    "OpCost", "OpSchema", "get_op", "register_op", "registered_ops",
    "Graph", "GraphError", "Node", "GraphBuilder",
    "SerializationError", "canonical_dumps", "dumps", "graph_fingerprint",
    "graph_from_dict", "graph_to_dict",
    "load_graph", "loads", "save_graph",
    "available_models", "build_model", "register_model",
]
