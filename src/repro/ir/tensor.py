"""Tensor types for the ONNX-like model IR.

The VEDLIoT toolchain exchanges models in an open interchange format and
optimizes them for targets whose native precision ranges from FP32 down to
binary weights (paper, Sec. II-C and III).  This module defines the dtype
lattice and the static tensor specification used throughout the IR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

import numpy as np


class DType(Enum):
    """Numeric types supported by the IR and the hardware catalog."""

    FP32 = "fp32"
    FP16 = "fp16"
    INT32 = "int32"
    INT8 = "int8"
    UINT8 = "uint8"
    BINARY = "binary"
    BOOL = "bool"

    @property
    def bits(self) -> int:
        """Storage width in bits of one element."""
        return _DTYPE_BITS[self]

    @property
    def is_float(self) -> bool:
        return self in (DType.FP32, DType.FP16)

    @property
    def is_quantized(self) -> bool:
        """True for integer types used as quantized representations."""
        return self in (DType.INT8, DType.UINT8, DType.BINARY)

    def to_numpy(self) -> np.dtype:
        """The numpy dtype used to *store* values of this type.

        BINARY is stored as int8 holding {-1, +1}; FP16 is stored natively.
        """
        return _DTYPE_NUMPY[self]

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DType":
        dtype = np.dtype(dtype)
        for dt, np_dt in _DTYPE_NUMPY.items():
            if dt is DType.BINARY:
                continue
            if np.dtype(np_dt) == dtype:
                return dt
        raise ValueError(f"no IR dtype for numpy dtype {dtype}")


_DTYPE_BITS = {
    DType.FP32: 32,
    DType.FP16: 16,
    DType.INT32: 32,
    DType.INT8: 8,
    DType.UINT8: 8,
    DType.BINARY: 1,
    DType.BOOL: 8,
}

_DTYPE_NUMPY = {
    DType.FP32: np.dtype(np.float32),
    DType.FP16: np.dtype(np.float16),
    DType.INT32: np.dtype(np.int32),
    DType.INT8: np.dtype(np.int8),
    DType.UINT8: np.dtype(np.uint8),
    DType.BINARY: np.dtype(np.int8),
    DType.BOOL: np.dtype(np.bool_),
}


class ShapeError(ValueError):
    """Raised when shapes are inconsistent during inference or validation."""


@dataclass(frozen=True)
class TensorSpec:
    """Static description of a tensor: name, shape, and element type.

    Shapes are fully static: the toolchain compiles for fixed batch sizes
    (the paper sweeps batch 1/4/8 explicitly rather than using dynamic
    batching, Sec. II-C).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        shape = tuple(int(d) for d in self.shape)
        if any(d < 0 for d in shape):
            raise ShapeError(f"negative dimension in shape {shape}")
        object.__setattr__(self, "shape", shape)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def size_bits(self) -> int:
        """Total storage footprint in bits."""
        return self.num_elements * self.dtype.bits

    @property
    def size_bytes(self) -> int:
        """Total storage footprint in bytes, rounded up."""
        return math.ceil(self.size_bits / 8)

    def with_name(self, name: str) -> "TensorSpec":
        return TensorSpec(name, self.shape, self.dtype)

    def with_dtype(self, dtype: DType) -> "TensorSpec":
        return TensorSpec(self.name, self.shape, dtype)

    def with_batch(self, batch: int) -> "TensorSpec":
        """Return a copy with the leading dimension replaced by ``batch``."""
        if not self.shape:
            raise ShapeError("scalar tensor has no batch dimension")
        return TensorSpec(self.name, (batch,) + self.shape[1:], self.dtype)

    def zeros(self) -> np.ndarray:
        """Allocate a zero-filled numpy array matching this spec."""
        return np.zeros(self.shape, dtype=self.dtype.to_numpy())


def broadcast_shapes(
    a: Sequence[int], b: Sequence[int], op: Optional[str] = None
) -> Tuple[int, ...]:
    """Numpy-style broadcasting of two static shapes.

    Raises :class:`ShapeError` with the offending op name when incompatible.
    """
    try:
        return tuple(int(d) for d in np.broadcast_shapes(tuple(a), tuple(b)))
    except ValueError as exc:
        where = f" in {op}" if op else ""
        raise ShapeError(f"cannot broadcast {tuple(a)} with {tuple(b)}{where}") from exc


def conv2d_output_shape(
    input_shape: Sequence[int],
    out_channels: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int, int, int]:
    """Output shape of a 2-D convolution in NCHW layout."""
    if len(input_shape) != 4:
        raise ShapeError(f"conv2d expects NCHW input, got shape {tuple(input_shape)}")
    n, _, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"conv2d produces empty output: input {tuple(input_shape)}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return (n, out_channels, oh, ow)


def pool2d_output_shape(
    input_shape: Sequence[int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int] = (0, 0),
) -> Tuple[int, int, int, int]:
    """Output shape of a 2-D pooling window in NCHW layout."""
    if len(input_shape) != 4:
        raise ShapeError(f"pool2d expects NCHW input, got shape {tuple(input_shape)}")
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"pool2d produces empty output: input {tuple(input_shape)}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return (n, c, oh, ow)
