"""Computational graph for the ONNX-like IR.

A :class:`Graph` holds a list of :class:`Node` objects in topological order,
named input/output tensors, and initializers (weights, as numpy arrays).
The graph knows how to validate itself, infer every intermediate tensor
spec, and total the arithmetic/parameter/memory cost of one inference —
the quantities the VEDLIoT toolchain optimizes (Sec. III) and the hardware
performance model consumes (Sec. II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .ops import Attrs, OpCost, get_op
from .tensor import DType, ShapeError, TensorSpec


class GraphError(ValueError):
    """Raised when a graph is structurally invalid."""


@dataclass
class Node:
    """One operator instance in the graph."""

    name: str
    op_type: str
    inputs: List[str]
    outputs: List[str]
    attrs: Attrs = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("node name must be non-empty")
        if not self.outputs:
            raise GraphError(f"node {self.name!r} must produce at least one output")
        # Validates op existence, arity, and required attributes eagerly so
        # malformed nodes fail at construction, not deep inside a pass.
        schema = get_op(self.op_type)
        schema.check_arity(len(self.inputs))
        schema.check_attrs(self.attrs)

    @property
    def schema(self):
        return get_op(self.op_type)


class Graph:
    """A static dataflow graph over named tensors.

    Nodes must be added in topological order (every input either a graph
    input, an initializer, or an output of an earlier node); :meth:`validate`
    enforces this invariant, and the mutation helpers preserve it.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.inputs: List[TensorSpec] = []
        self.output_names: List[str] = []
        self.nodes: List[Node] = []
        self.initializers: Dict[str, np.ndarray] = {}
        # Optional dtype override for initializers whose storage dtype
        # differs from their logical dtype (e.g. BINARY stored as int8).
        self.initializer_dtypes: Dict[str, DType] = {}
        self.metadata: Dict[str, Any] = {}

    # -- construction ------------------------------------------------------

    def add_input(self, spec: TensorSpec) -> TensorSpec:
        if any(existing.name == spec.name for existing in self.inputs):
            raise GraphError(f"duplicate graph input {spec.name!r}")
        self.inputs.append(spec)
        return spec

    def add_initializer(
        self, name: str, value: np.ndarray, dtype: Optional[DType] = None
    ) -> str:
        if name in self.initializers:
            raise GraphError(f"duplicate initializer {name!r}")
        value = np.asarray(value)
        if dtype is None:
            dtype = DType.from_numpy(value.dtype)
        self.initializers[name] = value.astype(dtype.to_numpy(), copy=False)
        self.initializer_dtypes[name] = dtype
        return name

    def add_node(
        self,
        op_type: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        name: Optional[str] = None,
        **attrs: Any,
    ) -> Node:
        node = Node(
            name=name or f"{op_type}_{len(self.nodes)}",
            op_type=op_type,
            inputs=list(inputs),
            outputs=list(outputs),
            attrs=attrs,
        )
        if any(existing.name == node.name for existing in self.nodes):
            raise GraphError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)
        return node

    def set_outputs(self, names: Sequence[str]) -> None:
        self.output_names = list(names)

    # -- structure queries --------------------------------------------------

    def input_names(self) -> List[str]:
        return [spec.name for spec in self.inputs]

    def producer_map(self) -> Dict[str, Node]:
        """Map from tensor name to the node that produces it."""
        producers: Dict[str, Node] = {}
        for node in self.nodes:
            for out in node.outputs:
                if out in producers:
                    raise GraphError(f"tensor {out!r} produced twice")
                producers[out] = node
        return producers

    def consumer_map(self) -> Dict[str, List[Node]]:
        """Map from tensor name to the nodes that consume it."""
        consumers: Dict[str, List[Node]] = {}
        for node in self.nodes:
            for inp in node.inputs:
                consumers.setdefault(inp, []).append(node)
        return consumers

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- validation and inference -------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` on failure."""
        if not self.inputs:
            raise GraphError(f"graph {self.name!r} has no inputs")
        if not self.output_names:
            raise GraphError(f"graph {self.name!r} has no outputs")
        available: Set[str] = set(self.input_names()) | set(self.initializers)
        overlap = set(self.input_names()) & set(self.initializers)
        if overlap:
            raise GraphError(f"names are both inputs and initializers: {overlap}")
        seen_nodes: Set[str] = set()
        for node in self.nodes:
            if node.name in seen_nodes:
                raise GraphError(f"duplicate node name {node.name!r}")
            seen_nodes.add(node.name)
            for inp in node.inputs:
                if inp not in available:
                    raise GraphError(
                        f"node {node.name!r} reads {inp!r} before it is produced "
                        "(graph is not in topological order, or tensor is missing)"
                    )
            for out in node.outputs:
                if out in available:
                    raise GraphError(
                        f"node {node.name!r} redefines tensor {out!r}"
                    )
                available.add(out)
        for out in self.output_names:
            if out not in available:
                raise GraphError(f"graph output {out!r} is never produced")
        self.infer_specs()

    def infer_specs(self) -> Dict[str, TensorSpec]:
        """Infer the spec of every tensor in the graph.

        Returns a map from tensor name to :class:`TensorSpec`; raises
        :class:`ShapeError` if any node's inputs are inconsistent.
        """
        specs: Dict[str, TensorSpec] = {spec.name: spec for spec in self.inputs}
        for name, value in self.initializers.items():
            dtype = self.initializer_dtypes.get(name, DType.from_numpy(value.dtype))
            specs[name] = TensorSpec(name, value.shape, dtype)
        for node in self.nodes:
            try:
                in_specs = [specs[i] for i in node.inputs]
            except KeyError as exc:
                raise GraphError(
                    f"node {node.name!r} reads unknown tensor {exc.args[0]!r}"
                ) from None
            try:
                out_specs = node.schema.infer(in_specs, node.attrs)
            except ShapeError as exc:
                raise ShapeError(f"in node {node.name!r}: {exc}") from None
            if len(out_specs) != len(node.outputs):
                raise GraphError(
                    f"node {node.name!r} declares {len(node.outputs)} outputs but "
                    f"schema inferred {len(out_specs)}"
                )
            for tensor_name, spec in zip(node.outputs, out_specs):
                specs[tensor_name] = spec.with_name(tensor_name)
        return specs

    # -- cost accounting -----------------------------------------------------

    def node_cost(self, node: Node, specs: Optional[Dict[str, TensorSpec]] = None) -> OpCost:
        specs = specs or self.infer_specs()
        in_specs = [specs[i] for i in node.inputs]
        out_specs = [specs[o] for o in node.outputs]
        return node.schema.cost(in_specs, out_specs, node.attrs)

    def total_cost(self) -> OpCost:
        """Aggregate cost of one inference over the whole graph."""
        specs = self.infer_specs()
        total = OpCost()
        for node in self.nodes:
            total = total + self.node_cost(node, specs)
        return total

    def per_node_cost(self) -> List[Tuple[Node, OpCost]]:
        specs = self.infer_specs()
        return [(node, self.node_cost(node, specs)) for node in self.nodes]

    def num_parameters(self) -> int:
        return int(sum(v.size for v in self.initializers.values()))

    def parameter_bytes(self) -> int:
        specs = self.infer_specs()
        return sum(specs[name].size_bytes for name in self.initializers)

    # -- mutation helpers for optimizer passes --------------------------------

    def remove_node(self, node: Node) -> None:
        """Remove ``node``; callers must have rewired its consumers first."""
        self.nodes.remove(node)

    def remove_initializer(self, name: str) -> np.ndarray:
        self.initializer_dtypes.pop(name, None)
        return self.initializers.pop(name)

    def rename_tensor(self, old: str, new: str) -> None:
        """Rewire every use of tensor ``old`` to ``new``."""
        for node in self.nodes:
            node.inputs = [new if t == old else t for t in node.inputs]
        self.output_names = [new if t == old else t for t in self.output_names]

    def prune_dead_nodes(self) -> int:
        """Drop nodes whose outputs reach no graph output; return count removed."""
        needed: Set[str] = set(self.output_names)
        keep: List[Node] = []
        for node in reversed(self.nodes):
            if any(out in needed for out in node.outputs):
                keep.append(node)
                needed.update(node.inputs)
        keep.reverse()
        removed = len(self.nodes) - len(keep)
        self.nodes = keep
        for name in [n for n in self.initializers if n not in needed]:
            self.remove_initializer(name)
        return removed

    def copy(self) -> "Graph":
        """Deep-copy the graph (weights are copied, not aliased)."""
        g = Graph(self.name)
        g.inputs = list(self.inputs)
        g.output_names = list(self.output_names)
        g.metadata = dict(self.metadata)
        g.initializers = {k: v.copy() for k, v in self.initializers.items()}
        g.initializer_dtypes = dict(self.initializer_dtypes)
        g.nodes = [
            Node(n.name, n.op_type, list(n.inputs), list(n.outputs), dict(n.attrs))
            for n in self.nodes
        ]
        return g

    def with_batch(self, batch: int) -> "Graph":
        """Copy of the graph with every input's leading dimension rebatched.

        All registered ops infer shapes from their inputs, so rebatching
        the graph inputs is sufficient (graphs using ``reshape`` with a
        hard-coded batch dimension would need rebuilding instead; the
        model zoo avoids that).  Validates the result.
        """
        g = self.copy()
        g.inputs = [spec.with_batch(batch) for spec in g.inputs]
        g.validate()
        return g

    def summary(self) -> str:
        """Human-readable one-line-per-node description."""
        specs = self.infer_specs()
        lines = [f"graph {self.name!r}: {len(self.nodes)} nodes, "
                 f"{self.num_parameters():,} params"]
        for node in self.nodes:
            outs = ", ".join(
                f"{o}{list(specs[o].shape)}" for o in node.outputs
            )
            lines.append(f"  {node.name:<28} {node.op_type:<16} -> {outs}")
        return "\n".join(lines)
