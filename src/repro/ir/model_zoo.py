"""Reference models used throughout the VEDLIoT evaluation.

The paper (Sec. II-C) benchmarks accelerators with ResNet50, MobileNetV3 and
YoloV4.  This module builds faithful-topology IR graphs for those networks
(randomly initialized — the evaluation measures compute behaviour, not task
accuracy) plus several small networks sized for the reference executor and
the use-case applications (motor monitoring, arc detection, smart mirror).

All builders accept a ``batch`` argument because the paper sweeps batch
size 1/4/8 explicitly (Fig. 4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .builder import GraphBuilder
from .graph import Graph

ModelFactory = Callable[..., Graph]

_ZOO: Dict[str, ModelFactory] = {}


def register_model(name: str):
    """Decorator registering a model factory under ``name``."""

    def deco(fn: ModelFactory) -> ModelFactory:
        if name in _ZOO:
            raise ValueError(f"model {name!r} already registered")
        _ZOO[name] = fn
        return fn

    return deco


def available_models() -> List[str]:
    return sorted(_ZOO)


def build_model(name: str, **kwargs) -> Graph:
    """Instantiate a registered model by name."""
    try:
        factory = _ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    return factory(**kwargs)


# ---------------------------------------------------------------------------
# ResNet50
# ---------------------------------------------------------------------------

def _bottleneck(b: GraphBuilder, x: str, mid: int, out: int,
                stride: int, name: str) -> str:
    """ResNet bottleneck: 1x1 -> 3x3 -> 1x1 with projection shortcut."""
    identity = x
    in_channels = b.spec(x).shape[1]
    y = b.conv_bn_act(x, mid, 1, name=f"{name}_a")
    y = b.conv_bn_act(y, mid, 3, stride=stride, padding=1, name=f"{name}_b")
    y = b.conv_bn_act(y, out, 1, act="identity", name=f"{name}_c")
    if stride != 1 or in_channels != out:
        identity = b.conv_bn_act(x, out, 1, stride=stride, act="identity",
                                 name=f"{name}_proj")
    y = b.add(y, identity, name=f"{name}_add")
    return b.relu(y, name=f"{name}_relu")


@register_model("resnet50")
def resnet50(batch: int = 1, image_size: int = 224, num_classes: int = 1000,
             seed: int = 0) -> Graph:
    """ResNet50 (He et al.) — ~25.5 M parameters at 1000 classes."""
    b = GraphBuilder("resnet50", seed=seed)
    x = b.input("input", (batch, 3, image_size, image_size))
    x = b.conv_bn_act(x, 64, 7, stride=2, padding=3, name="stem")
    x = b.maxpool2d(x, 3, stride=2, padding=1, name="stem_pool")
    stage_cfg = [
        # (blocks, mid channels, out channels, first stride)
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ]
    for stage, (blocks, mid, out, stride) in enumerate(stage_cfg, start=1):
        for block in range(blocks):
            x = _bottleneck(b, x, mid, out, stride if block == 0 else 1,
                            name=f"s{stage}_b{block}")
    x = b.global_avgpool2d(x, name="gap")
    x = b.flatten(x, name="flat")
    x = b.dense(x, num_classes, name="fc")
    x = b.softmax(x, name="probs")
    g = b.finish(x)
    g.metadata.update(model="resnet50", task="classification",
                      image_size=image_size, num_classes=num_classes)
    return g


# ---------------------------------------------------------------------------
# MobileNetV3
# ---------------------------------------------------------------------------

def _se_block(b: GraphBuilder, x: str, name: str) -> str:
    """Squeeze-and-excitation: global pool -> 1x1 reduce -> 1x1 expand -> scale."""
    channels = b.spec(x).shape[1]
    squeeze = max(8, channels // 4)
    s = b.global_avgpool2d(x, name=f"{name}_gap")
    s = b.conv2d(s, squeeze, 1, name=f"{name}_fc1")
    s = b.relu(s, name=f"{name}_relu")
    s = b.conv2d(s, channels, 1, name=f"{name}_fc2")
    s = b.activation(s, "hardsigmoid", name=f"{name}_gate")
    return b.mul(x, s, name=f"{name}_scale")


def _inverted_residual(b: GraphBuilder, x: str, expand: int, out: int,
                       kernel: int, stride: int, use_se: bool, act: str,
                       name: str) -> str:
    in_channels = b.spec(x).shape[1]
    identity = x
    y = x
    if expand != in_channels:
        y = b.conv_bn_act(y, expand, 1, act=act, name=f"{name}_expand")
    y = b.conv_bn_act(y, expand, kernel, stride=stride,
                      padding=kernel // 2, groups=expand, act=act,
                      name=f"{name}_dw")
    if use_se:
        y = _se_block(b, y, name=f"{name}_se")
    y = b.conv_bn_act(y, out, 1, act="identity", name=f"{name}_project")
    if stride == 1 and in_channels == out:
        y = b.add(y, identity, name=f"{name}_add")
    return y


# MobileNetV3-Large configuration (Howard et al., Table 1):
# kernel, expansion, out channels, SE, activation, stride
_MOBILENETV3_LARGE = [
    (3, 16, 16, False, "relu", 1),
    (3, 64, 24, False, "relu", 2),
    (3, 72, 24, False, "relu", 1),
    (5, 72, 40, True, "relu", 2),
    (5, 120, 40, True, "relu", 1),
    (5, 120, 40, True, "relu", 1),
    (3, 240, 80, False, "hardswish", 2),
    (3, 200, 80, False, "hardswish", 1),
    (3, 184, 80, False, "hardswish", 1),
    (3, 184, 80, False, "hardswish", 1),
    (3, 480, 112, True, "hardswish", 1),
    (3, 672, 112, True, "hardswish", 1),
    (5, 672, 160, True, "hardswish", 2),
    (5, 960, 160, True, "hardswish", 1),
    (5, 960, 160, True, "hardswish", 1),
]

_MOBILENETV3_SMALL = [
    (3, 16, 16, True, "relu", 2),
    (3, 72, 24, False, "relu", 2),
    (3, 88, 24, False, "relu", 1),
    (5, 96, 40, True, "hardswish", 2),
    (5, 240, 40, True, "hardswish", 1),
    (5, 240, 40, True, "hardswish", 1),
    (5, 120, 48, True, "hardswish", 1),
    (5, 144, 48, True, "hardswish", 1),
    (5, 288, 96, True, "hardswish", 2),
    (5, 576, 96, True, "hardswish", 1),
    (5, 576, 96, True, "hardswish", 1),
]


def _mobilenet_v3(name: str, cfg, last_conv: int, classifier_hidden: int,
                  batch: int, image_size: int, num_classes: int,
                  seed: int) -> Graph:
    b = GraphBuilder(name, seed=seed)
    x = b.input("input", (batch, 3, image_size, image_size))
    x = b.conv_bn_act(x, 16, 3, stride=2, padding=1, act="hardswish",
                      name="stem")
    for i, (kernel, expand, out, use_se, act, stride) in enumerate(cfg):
        x = _inverted_residual(b, x, expand, out, kernel, stride, use_se, act,
                               name=f"ir{i}")
    x = b.conv_bn_act(x, last_conv, 1, act="hardswish", name="head_conv")
    x = b.global_avgpool2d(x, name="gap")
    x = b.flatten(x, name="flat")
    x = b.dense(x, classifier_hidden, name="head_fc1")
    x = b.activation(x, "hardswish", name="head_hs")
    x = b.dense(x, num_classes, name="head_fc2")
    x = b.softmax(x, name="probs")
    g = b.finish(x)
    g.metadata.update(model=name, task="classification",
                      image_size=image_size, num_classes=num_classes)
    return g


@register_model("mobilenet_v3_large")
def mobilenet_v3_large(batch: int = 1, image_size: int = 224,
                       num_classes: int = 1000, seed: int = 0) -> Graph:
    """MobileNetV3-Large — ~5.4 M parameters at 1000 classes."""
    return _mobilenet_v3("mobilenet_v3_large", _MOBILENETV3_LARGE, 960, 1280,
                         batch, image_size, num_classes, seed)


@register_model("mobilenet_v3_small")
def mobilenet_v3_small(batch: int = 1, image_size: int = 224,
                       num_classes: int = 1000, seed: int = 0) -> Graph:
    """MobileNetV3-Small — ~2.5 M parameters at 1000 classes."""
    return _mobilenet_v3("mobilenet_v3_small", _MOBILENETV3_SMALL, 576, 1024,
                         batch, image_size, num_classes, seed)


# ---------------------------------------------------------------------------
# YoloV4
# ---------------------------------------------------------------------------

def _csp_stage(b: GraphBuilder, x: str, out: int, blocks: int,
               first: bool, name: str) -> str:
    """CSPDarknet53 stage: downsample then cross-stage-partial residual blocks."""
    x = b.conv_bn_act(x, out, 3, stride=2, padding=1, act="mish",
                      name=f"{name}_down")
    split = out if first else out // 2
    route = b.conv_bn_act(x, split, 1, act="mish", name=f"{name}_route")
    y = b.conv_bn_act(x, split, 1, act="mish", name=f"{name}_main")
    hidden = out // 2 if first else split
    for i in range(blocks):
        identity = y
        z = b.conv_bn_act(y, hidden, 1, act="mish", name=f"{name}_r{i}_a")
        z = b.conv_bn_act(z, split, 3, padding=1, act="mish",
                          name=f"{name}_r{i}_b")
        y = b.add(z, identity, name=f"{name}_r{i}_add")
    y = b.conv_bn_act(y, split, 1, act="mish", name=f"{name}_post")
    merged = b.concat([y, route], axis=1, name=f"{name}_csp")
    return b.conv_bn_act(merged, out, 1, act="mish", name=f"{name}_out")


def _conv_set5(b: GraphBuilder, x: str, channels: int, name: str) -> str:
    """Five alternating 1x1/3x3 leaky convolutions (YOLO neck block)."""
    x = b.conv_bn_act(x, channels, 1, act="leaky_relu", name=f"{name}_c1")
    x = b.conv_bn_act(x, channels * 2, 3, padding=1, act="leaky_relu",
                      name=f"{name}_c2")
    x = b.conv_bn_act(x, channels, 1, act="leaky_relu", name=f"{name}_c3")
    x = b.conv_bn_act(x, channels * 2, 3, padding=1, act="leaky_relu",
                      name=f"{name}_c4")
    x = b.conv_bn_act(x, channels, 1, act="leaky_relu", name=f"{name}_c5")
    return x


@register_model("yolov4")
def yolov4(batch: int = 1, image_size: int = 416, num_classes: int = 80,
           seed: int = 0) -> Graph:
    """YoloV4 (Bochkovskiy et al.): CSPDarknet53 + SPP + PANet + 3 heads.

    ~64 M parameters at 80 classes; three detection outputs at strides
    8, 16 and 32, each with ``3 * (5 + num_classes)`` channels.
    """
    if image_size % 32:
        raise ValueError("yolov4 input size must be a multiple of 32")
    b = GraphBuilder("yolov4", seed=seed)
    x = b.input("input", (batch, 3, image_size, image_size))
    x = b.conv_bn_act(x, 32, 3, padding=1, act="mish", name="stem")
    x = _csp_stage(b, x, 64, 1, True, "csp1")
    x = _csp_stage(b, x, 128, 2, False, "csp2")
    c3 = _csp_stage(b, x, 256, 8, False, "csp3")    # stride 8
    c4 = _csp_stage(b, c3, 512, 8, False, "csp4")   # stride 16
    c5 = _csp_stage(b, c4, 1024, 4, False, "csp5")  # stride 32

    # SPP on the deepest feature map.
    y = b.conv_bn_act(c5, 512, 1, act="leaky_relu", name="spp_pre1")
    y = b.conv_bn_act(y, 1024, 3, padding=1, act="leaky_relu", name="spp_pre2")
    y = b.conv_bn_act(y, 512, 1, act="leaky_relu", name="spp_pre3")
    p5 = b.maxpool2d(y, 5, stride=1, padding=2, name="spp_p5")
    p9 = b.maxpool2d(y, 9, stride=1, padding=4, name="spp_p9")
    p13 = b.maxpool2d(y, 13, stride=1, padding=6, name="spp_p13")
    y = b.concat([p13, p9, p5, y], axis=1, name="spp_cat")
    y = b.conv_bn_act(y, 512, 1, act="leaky_relu", name="spp_post1")
    y = b.conv_bn_act(y, 1024, 3, padding=1, act="leaky_relu", name="spp_post2")
    n5 = b.conv_bn_act(y, 512, 1, act="leaky_relu", name="spp_post3")

    # PANet top-down path.
    up4 = b.conv_bn_act(n5, 256, 1, act="leaky_relu", name="td4_reduce")
    up4 = b.upsample2d(up4, 2, name="td4_up")
    lat4 = b.conv_bn_act(c4, 256, 1, act="leaky_relu", name="td4_lateral")
    n4 = b.concat([lat4, up4], axis=1, name="td4_cat")
    n4 = _conv_set5(b, n4, 256, "td4_set")

    up3 = b.conv_bn_act(n4, 128, 1, act="leaky_relu", name="td3_reduce")
    up3 = b.upsample2d(up3, 2, name="td3_up")
    lat3 = b.conv_bn_act(c3, 128, 1, act="leaky_relu", name="td3_lateral")
    n3 = b.concat([lat3, up3], axis=1, name="td3_cat")
    n3 = _conv_set5(b, n3, 128, "td3_set")

    # Heads + bottom-up path.
    anchors_per_cell = 3
    head_channels = anchors_per_cell * (5 + num_classes)

    h3 = b.conv_bn_act(n3, 256, 3, padding=1, act="leaky_relu", name="head3_conv")
    out3 = b.conv2d(h3, head_channels, 1, name="head3_out")

    d4 = b.conv_bn_act(n3, 256, 3, stride=2, padding=1, act="leaky_relu",
                       name="bu4_down")
    n4 = b.concat([d4, n4], axis=1, name="bu4_cat")
    n4 = _conv_set5(b, n4, 256, "bu4_set")
    h4 = b.conv_bn_act(n4, 512, 3, padding=1, act="leaky_relu", name="head4_conv")
    out4 = b.conv2d(h4, head_channels, 1, name="head4_out")

    d5 = b.conv_bn_act(n4, 512, 3, stride=2, padding=1, act="leaky_relu",
                       name="bu5_down")
    n5 = b.concat([d5, n5], axis=1, name="bu5_cat")
    n5 = _conv_set5(b, n5, 512, "bu5_set")
    h5 = b.conv_bn_act(n5, 1024, 3, padding=1, act="leaky_relu", name="head5_conv")
    out5 = b.conv2d(h5, head_channels, 1, name="head5_out")

    g = b.finish([out3, out4, out5])
    g.metadata.update(model="yolov4", task="detection",
                      image_size=image_size, num_classes=num_classes,
                      strides=[8, 16, 32])
    return g


# ---------------------------------------------------------------------------
# Small executable networks for tests and use cases
# ---------------------------------------------------------------------------

@register_model("tiny_convnet")
def tiny_convnet(batch: int = 1, image_size: int = 32, channels: int = 3,
                 num_classes: int = 10, seed: int = 0) -> Graph:
    """Small conv classifier runnable on the reference executor in ~ms."""
    b = GraphBuilder("tiny_convnet", seed=seed)
    x = b.input("input", (batch, channels, image_size, image_size))
    x = b.conv_bn_act(x, 16, 3, padding=1, name="c1")
    x = b.maxpool2d(x, 2, name="p1")
    x = b.conv_bn_act(x, 32, 3, padding=1, name="c2")
    x = b.maxpool2d(x, 2, name="p2")
    x = b.conv_bn_act(x, 64, 3, padding=1, name="c3")
    x = b.avgpool2d(x, 2, name="p3")
    x = b.flatten(x, name="flat")
    x = b.dense(x, num_classes, name="fc")
    x = b.softmax(x, name="probs")
    g = b.finish(x)
    g.metadata.update(model="tiny_convnet", task="classification",
                      image_size=image_size, num_classes=num_classes)
    return g


@register_model("wide_branch_net")
def wide_branch_net(batch: int = 1, image_size: int = 32, channels: int = 3,
                    branches: int = 4, branch_channels: int = 16,
                    num_classes: int = 10, seed: int = 0) -> Graph:
    """Inception-style classifier with ``branches`` independent conv
    branches off a shared stem, merged by concat.

    The branches have no data dependencies on each other, so the plan
    schedule is wide (max width == ``branches``) — the workload the
    parallel executor's inter-op scheduling exists for, and the model
    the thread-scaling benchmark measures.
    """
    b = GraphBuilder("wide_branch_net", seed=seed)
    x = b.input("input", (batch, channels, image_size, image_size))
    stem = b.conv_bn_act(x, branch_channels, 3, padding=1, name="stem")
    arms = []
    for i in range(branches):
        y = b.conv_bn_act(stem, branch_channels, 3, padding=1,
                          name=f"br{i}_a")
        y = b.conv_bn_act(y, branch_channels, 3, padding=1,
                          name=f"br{i}_b")
        arms.append(y)
    x = b.concat(arms, axis=1, name="merge")
    x = b.conv_bn_act(x, branch_channels * 2, 1, name="fuse")
    x = b.global_avgpool2d(x, name="gap")
    x = b.flatten(x, name="flat")
    x = b.dense(x, num_classes, name="fc")
    x = b.softmax(x, name="probs")
    g = b.finish(x)
    g.metadata.update(model="wide_branch_net", task="classification",
                      image_size=image_size, num_classes=num_classes,
                      branches=branches)
    return g


@register_model("tiny_yolo")
def tiny_yolo(batch: int = 1, image_size: int = 96, num_classes: int = 4,
              seed: int = 0) -> Graph:
    """Miniature single-head detector used by the executable detection tests."""
    if image_size % 32:
        raise ValueError("tiny_yolo input size must be a multiple of 32")
    b = GraphBuilder("tiny_yolo", seed=seed)
    x = b.input("input", (batch, 3, image_size, image_size))
    channels = 16
    for i in range(5):
        x = b.conv_bn_act(x, channels, 3, padding=1, act="leaky_relu",
                          name=f"c{i}")
        x = b.maxpool2d(x, 2, name=f"p{i}")
        channels = min(channels * 2, 256)
    x = b.conv_bn_act(x, 256, 3, padding=1, act="leaky_relu", name="neck")
    out = b.conv2d(x, 3 * (5 + num_classes), 1, name="head")
    g = b.finish(out)
    g.metadata.update(model="tiny_yolo", task="detection",
                      image_size=image_size, num_classes=num_classes,
                      strides=[32])
    return g


@register_model("mlp")
def mlp(batch: int = 1, in_features: int = 64,
        hidden: Sequence[int] = (128, 64), num_classes: int = 8,
        seed: int = 0) -> Graph:
    """Plain multilayer perceptron for 1-D signals and quick tests."""
    b = GraphBuilder("mlp", seed=seed)
    x = b.input("input", (batch, in_features))
    for i, width in enumerate(hidden):
        x = b.dense(x, width, name=f"fc{i}")
        x = b.relu(x, name=f"relu{i}")
    x = b.dense(x, num_classes, name="fc_out")
    x = b.softmax(x, name="probs")
    g = b.finish(x)
    g.metadata.update(model="mlp", task="classification",
                      in_features=in_features, num_classes=num_classes)
    return g


@register_model("motor_net")
def motor_net(batch: int = 1, window: int = 256, num_classes: int = 4,
              seed: int = 0) -> Graph:
    """Small CNN over folded vibration spectra (motor use case).

    Input is a (batch, 1, 8, window/16) folded magnitude spectrum — the
    layout :func:`repro.datasets.timeseries.vibration_features` produces
    for a raw window of ``window`` samples.  Four condition classes:
    healthy, bearing fault, imbalance, overheat.
    """
    if window % 16:
        raise ValueError("window must be divisible by 16")
    b = GraphBuilder("motor_net", seed=seed)
    x = b.input("input", (batch, 1, 8, window // 16))
    x = b.conv_bn_act(x, 8, 3, padding=1, name="c1")
    x = b.maxpool2d(x, 2, name="p1")
    x = b.conv_bn_act(x, 16, 3, padding=1, name="c2")
    x = b.flatten(x, name="flat")
    x = b.dense(x, num_classes, name="fc")
    x = b.softmax(x, name="probs")
    g = b.finish(x)
    g.metadata.update(model="motor_net", task="classification",
                      window=window, num_classes=num_classes)
    return g


@register_model("arc_net")
def arc_net(batch: int = 1, window: int = 128, seed: int = 0) -> Graph:
    """Binary arc/no-arc classifier over spectral features of current windows.

    Input is the length ``window//2`` feature vector produced by
    :func:`repro.datasets.timeseries.arc_features` from a raw window of
    ``window`` samples.  Sized for very low latency (the use case requires
    first-spark-to-inference latency far below the protection deadline,
    Sec. V-B).
    """
    if window % 2:
        raise ValueError("window must be even")
    b = GraphBuilder("arc_net", seed=seed)
    x = b.input("input", (batch, window // 2))
    x = b.dense(x, 128, name="fc1")
    x = b.relu(x, name="relu1")
    x = b.dense(x, 2, name="fc_out")
    x = b.softmax(x, name="probs")
    g = b.finish(x)
    g.metadata.update(model="arc_net", task="classification",
                      window=window, num_classes=2)
    return g
