"""Operator schemas for the IR: arity, attributes, shape inference, and cost.

Each operator registered here knows how to infer its output spec from its
input specs and how to count the work it performs (multiply-accumulates,
total floating/integer operations, parameter count, and memory traffic).
These counts drive both the optimizer (Sec. III: "theoretical speed-ups
based on metrics, e.g. number of operations") and the hardware performance
model that reproduces Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from .tensor import (
    DType,
    ShapeError,
    TensorSpec,
    broadcast_shapes,
    conv2d_output_shape,
    pool2d_output_shape,
)

Attrs = Dict[str, Any]
InferFn = Callable[[Sequence[TensorSpec], Attrs], List[TensorSpec]]
CostFn = Callable[[Sequence[TensorSpec], Sequence[TensorSpec], Attrs], "OpCost"]


@dataclass(frozen=True)
class OpCost:
    """Work performed by one node evaluation.

    macs
        Multiply-accumulate count (the unit vendors quote; 1 MAC = 2 ops).
    ops
        Total arithmetic operations.  For MAC-dominated layers this is
        ``2 * macs``; element-wise layers contribute their element count.
    params
        Number of learned parameters consumed by the node.
    activation_bytes
        Bytes of activations read plus written (memory traffic excluding
        weights), assuming each input is read once and each output written
        once.
    weight_bytes
        Bytes of parameters streamed from memory.
    """

    macs: int = 0
    ops: int = 0
    params: int = 0
    activation_bytes: int = 0
    weight_bytes: int = 0

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            self.macs + other.macs,
            self.ops + other.ops,
            self.params + other.params,
            self.activation_bytes + other.activation_bytes,
            self.weight_bytes + other.weight_bytes,
        )

    @property
    def total_bytes(self) -> int:
        return self.activation_bytes + self.weight_bytes


@dataclass(frozen=True)
class OpSchema:
    """Static description of an operator kind."""

    name: str
    min_inputs: int
    max_inputs: int
    infer: InferFn
    cost: CostFn
    required_attrs: Tuple[str, ...] = ()
    elementwise: bool = False
    activation: bool = False

    def check_arity(self, num_inputs: int) -> None:
        if not (self.min_inputs <= num_inputs <= self.max_inputs):
            raise ShapeError(
                f"{self.name} expects between {self.min_inputs} and "
                f"{self.max_inputs} inputs, got {num_inputs}"
            )

    def check_attrs(self, attrs: Attrs) -> None:
        missing = [a for a in self.required_attrs if a not in attrs]
        if missing:
            raise ValueError(f"{self.name} missing required attrs: {missing}")


_REGISTRY: Dict[str, OpSchema] = {}


def register_op(schema: OpSchema) -> OpSchema:
    if schema.name in _REGISTRY:
        raise ValueError(f"operator {schema.name!r} already registered")
    _REGISTRY[schema.name] = schema
    return schema


def get_op(name: str) -> OpSchema:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown operator {name!r}") from None


def registered_ops() -> List[str]:
    return sorted(_REGISTRY)


def _act_bytes(inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> int:
    return sum(t.size_bytes for t in inputs) + sum(t.size_bytes for t in outputs)


def _pair(value: Any) -> Tuple[int, int]:
    """Normalize an int-or-pair attribute to a pair."""
    if isinstance(value, (tuple, list)):
        a, b = value
        return int(a), int(b)
    return int(value), int(value)


# --------------------------------------------------------------------------
# Convolution family
# --------------------------------------------------------------------------

def _infer_conv2d(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data, weight = inputs[0], inputs[1]
    if weight.rank != 4:
        raise ShapeError(f"conv2d weight must be OIHW, got shape {weight.shape}")
    out_c, in_c, kh, kw = weight.shape
    # The layout pass tags nodes whose *activations* flow NHWC; weights
    # stay OIHW.  Inference maps through the equivalent NCHW shapes.
    nhwc = attrs.get("layout") == "NHWC"
    data_shape = data.shape
    if nhwc:
        if data.rank != 4:
            raise ShapeError(f"NHWC conv2d expects rank-4 input, got {data.shape}")
        n, h, w, c = data_shape
        data_shape = (n, c, h, w)
    groups = int(attrs.get("groups", 1))
    if data_shape[1] != in_c * groups:
        raise ShapeError(
            f"conv2d channel mismatch: input has {data_shape[1]} channels, "
            f"weight expects {in_c * groups} (groups={groups})"
        )
    if len(inputs) == 3 and inputs[2].shape != (out_c,):
        raise ShapeError(
            f"conv2d bias shape {inputs[2].shape} != ({out_c},)"
        )
    shape = conv2d_output_shape(
        data_shape,
        out_c,
        (kh, kw),
        _pair(attrs.get("stride", 1)),
        _pair(attrs.get("padding", 0)),
    )
    if nhwc:
        shape = (shape[0], shape[2], shape[3], shape[1])
    return [TensorSpec("out", shape, data.dtype)]


def _cost_conv2d(
    inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec], attrs: Attrs
) -> OpCost:
    weight = inputs[1]
    out = outputs[0]
    out_c, in_c, kh, kw = weight.shape
    macs = int(np.prod(out.shape, dtype=np.int64)) * in_c * kh * kw
    params = weight.num_elements + (inputs[2].num_elements if len(inputs) > 2 else 0)
    weight_bytes = sum(t.size_bytes for t in inputs[1:])
    acts = inputs[0].size_bytes + out.size_bytes
    return OpCost(macs=macs, ops=2 * macs, params=params,
                  activation_bytes=acts, weight_bytes=weight_bytes)


register_op(OpSchema(
    name="conv2d", min_inputs=2, max_inputs=3,
    infer=_infer_conv2d, cost=_cost_conv2d,
))


def _infer_dense(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data, weight = inputs[0], inputs[1]
    if weight.rank != 2:
        raise ShapeError(f"dense weight must be 2-D (out, in), got {weight.shape}")
    out_f, in_f = weight.shape
    if data.shape[-1] != in_f:
        raise ShapeError(
            f"dense feature mismatch: input {data.shape} vs weight {weight.shape}"
        )
    if len(inputs) == 3 and inputs[2].shape != (out_f,):
        raise ShapeError(f"dense bias shape {inputs[2].shape} != ({out_f},)")
    shape = data.shape[:-1] + (out_f,)
    return [TensorSpec("out", shape, data.dtype)]


def _cost_dense(
    inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec], attrs: Attrs
) -> OpCost:
    weight = inputs[1]
    out = outputs[0]
    out_f, in_f = weight.shape
    batch = out.num_elements // out_f
    macs = batch * out_f * in_f
    params = weight.num_elements + (inputs[2].num_elements if len(inputs) > 2 else 0)
    return OpCost(
        macs=macs, ops=2 * macs, params=params,
        activation_bytes=inputs[0].size_bytes + out.size_bytes,
        weight_bytes=sum(t.size_bytes for t in inputs[1:]),
    )


register_op(OpSchema(
    name="dense", min_inputs=2, max_inputs=3,
    infer=_infer_dense, cost=_cost_dense,
))


def _infer_batchnorm(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data = inputs[0]
    channels = data.shape[1] if data.rank >= 2 else data.shape[-1]
    for param in inputs[1:]:
        if param.shape != (channels,):
            raise ShapeError(
                f"batchnorm parameter shape {param.shape} != ({channels},)"
            )
    return [TensorSpec("out", data.shape, data.dtype)]


def _cost_elementwise_like(
    inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec], attrs: Attrs
) -> OpCost:
    n = outputs[0].num_elements
    params = sum(t.num_elements for t in inputs[1:])
    return OpCost(
        macs=0, ops=n, params=params,
        activation_bytes=inputs[0].size_bytes + outputs[0].size_bytes,
        weight_bytes=sum(t.size_bytes for t in inputs[1:]),
    )


register_op(OpSchema(
    name="batchnorm", min_inputs=5, max_inputs=5,
    infer=_infer_batchnorm, cost=_cost_elementwise_like,
))


# --------------------------------------------------------------------------
# Activations and element-wise ops
# --------------------------------------------------------------------------

def _infer_unary(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    return [TensorSpec("out", inputs[0].shape, inputs[0].dtype)]


def _register_activation(name: str) -> None:
    register_op(OpSchema(
        name=name, min_inputs=1, max_inputs=1,
        infer=_infer_unary, cost=_cost_elementwise_like,
        elementwise=True, activation=True,
    ))


for _name in ("relu", "relu6", "leaky_relu", "sigmoid", "tanh",
              "hardswish", "hardsigmoid", "mish", "identity"):
    _register_activation(_name)


register_op(OpSchema(
    name="softmax", min_inputs=1, max_inputs=1,
    infer=_infer_unary, cost=_cost_elementwise_like, elementwise=True,
))


def _infer_binary(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    a, b = inputs
    if a.dtype != b.dtype:
        raise ShapeError(f"binary op dtype mismatch: {a.dtype} vs {b.dtype}")
    shape = broadcast_shapes(a.shape, b.shape, op="binary op")
    return [TensorSpec("out", shape, a.dtype)]


def _cost_binary(
    inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec], attrs: Attrs
) -> OpCost:
    return OpCost(
        ops=outputs[0].num_elements,
        activation_bytes=_act_bytes(inputs, outputs),
    )


for _name in ("add", "sub", "mul", "maximum"):
    register_op(OpSchema(
        name=_name, min_inputs=2, max_inputs=2,
        infer=_infer_binary, cost=_cost_binary, elementwise=True,
    ))


# --------------------------------------------------------------------------
# Pooling and spatial ops
# --------------------------------------------------------------------------

def _infer_pool(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    kernel = _pair(attrs["kernel"])
    stride = _pair(attrs.get("stride", kernel))
    padding = _pair(attrs.get("padding", 0))
    data = inputs[0]
    if attrs.get("layout") == "NHWC":
        if data.rank != 4:
            raise ShapeError(f"NHWC pool expects rank-4 input, got {data.shape}")
        n, h, w, c = data.shape
        shape = pool2d_output_shape((n, c, h, w), kernel, stride, padding)
        shape = (shape[0], shape[2], shape[3], shape[1])
    else:
        shape = pool2d_output_shape(data.shape, kernel, stride, padding)
    return [TensorSpec("out", shape, data.dtype)]


def _cost_pool(
    inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec], attrs: Attrs
) -> OpCost:
    kh, kw = _pair(attrs["kernel"])
    return OpCost(
        ops=outputs[0].num_elements * kh * kw,
        activation_bytes=_act_bytes(inputs, outputs),
    )


for _name in ("maxpool2d", "avgpool2d"):
    register_op(OpSchema(
        name=_name, min_inputs=1, max_inputs=1,
        infer=_infer_pool, cost=_cost_pool, required_attrs=("kernel",),
    ))


def _infer_global_pool(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data = inputs[0]
    if data.rank != 4:
        raise ShapeError(f"global pool expects NCHW, got {data.shape}")
    n, c = data.shape[:2]
    return [TensorSpec("out", (n, c, 1, 1), data.dtype)]


def _cost_global_pool(
    inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec], attrs: Attrs
) -> OpCost:
    return OpCost(
        ops=inputs[0].num_elements,
        activation_bytes=_act_bytes(inputs, outputs),
    )


register_op(OpSchema(
    name="global_avgpool2d", min_inputs=1, max_inputs=1,
    infer=_infer_global_pool, cost=_cost_global_pool,
))


def _infer_upsample(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data = inputs[0]
    if data.rank != 4:
        raise ShapeError(f"upsample expects NCHW, got {data.shape}")
    scale = int(attrs["scale"])
    n, c, h, w = data.shape
    return [TensorSpec("out", (n, c, h * scale, w * scale), data.dtype)]


def _cost_copy(
    inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec], attrs: Attrs
) -> OpCost:
    return OpCost(activation_bytes=_act_bytes(inputs, outputs))


register_op(OpSchema(
    name="upsample2d", min_inputs=1, max_inputs=1,
    infer=_infer_upsample, cost=_cost_copy, required_attrs=("scale",),
))


# --------------------------------------------------------------------------
# Shape manipulation
# --------------------------------------------------------------------------

def _infer_flatten(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data = inputs[0]
    if data.rank < 1:
        raise ShapeError("flatten expects at least rank-1 input")
    n = data.shape[0]
    rest = data.num_elements // max(n, 1) if n else 0
    return [TensorSpec("out", (n, rest), data.dtype)]


register_op(OpSchema(
    name="flatten", min_inputs=1, max_inputs=1,
    infer=_infer_flatten, cost=_cost_copy,
))


def _infer_reshape(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data = inputs[0]
    shape = tuple(int(d) for d in attrs["shape"])
    inferred = []
    known = 1
    for d in shape:
        if d == -1:
            inferred.append(d)
        else:
            known *= d
    if len(inferred) > 1:
        raise ShapeError(f"reshape allows at most one -1, got {shape}")
    if inferred:
        if known == 0 or data.num_elements % known:
            raise ShapeError(
                f"cannot reshape {data.shape} ({data.num_elements} elems) to {shape}"
            )
        shape = tuple(data.num_elements // known if d == -1 else d for d in shape)
    if int(np.prod(shape, dtype=np.int64)) != data.num_elements:
        raise ShapeError(
            f"reshape element mismatch: {data.shape} -> {shape}"
        )
    return [TensorSpec("out", shape, data.dtype)]


register_op(OpSchema(
    name="reshape", min_inputs=1, max_inputs=1,
    infer=_infer_reshape, cost=_cost_copy, required_attrs=("shape",),
))


def _infer_transpose(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data = inputs[0]
    perm = tuple(int(p) for p in attrs["perm"])
    if sorted(perm) != list(range(data.rank)):
        raise ShapeError(
            f"transpose perm {perm} is not a permutation of rank {data.rank}"
        )
    shape = tuple(data.shape[p] for p in perm)
    return [TensorSpec("out", shape, data.dtype)]


register_op(OpSchema(
    name="transpose", min_inputs=1, max_inputs=1,
    infer=_infer_transpose, cost=_cost_copy, required_attrs=("perm",),
))


def _infer_concat(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    axis = int(attrs.get("axis", 1))
    first = inputs[0]
    axis = axis % first.rank
    for t in inputs[1:]:
        if t.rank != first.rank:
            raise ShapeError("concat inputs must have equal rank")
        if t.dtype != first.dtype:
            raise ShapeError("concat inputs must share dtype")
        for i, (da, db) in enumerate(zip(first.shape, t.shape)):
            if i != axis and da != db:
                raise ShapeError(
                    f"concat non-axis dims differ: {first.shape} vs {t.shape}"
                )
    total = sum(t.shape[axis] for t in inputs)
    shape = first.shape[:axis] + (total,) + first.shape[axis + 1:]
    return [TensorSpec("out", shape, first.dtype)]


register_op(OpSchema(
    name="concat", min_inputs=1, max_inputs=32,
    infer=_infer_concat, cost=_cost_copy,
))


def _infer_pad(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    data = inputs[0]
    pads = attrs["pads"]
    if len(pads) != data.rank:
        raise ShapeError(f"pads must give (before, after) per dim of {data.shape}")
    shape = tuple(
        d + int(before) + int(after) for d, (before, after) in zip(data.shape, pads)
    )
    return [TensorSpec("out", shape, data.dtype)]


register_op(OpSchema(
    name="pad", min_inputs=1, max_inputs=1,
    infer=_infer_pad, cost=_cost_copy, required_attrs=("pads",),
))


# --------------------------------------------------------------------------
# Quantization interface ops
# --------------------------------------------------------------------------

def _infer_quantize(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    dtype = attrs.get("dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    if not dtype.is_quantized:
        raise ValueError(f"quantize target must be a quantized dtype, got {dtype}")
    return [TensorSpec("out", inputs[0].shape, dtype)]


register_op(OpSchema(
    name="quantize", min_inputs=1, max_inputs=1,
    infer=_infer_quantize, cost=_cost_elementwise_like,
    required_attrs=("scale", "zero_point"),
))


def _infer_dequantize(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    return [TensorSpec("out", inputs[0].shape, DType.FP32)]


register_op(OpSchema(
    name="dequantize", min_inputs=1, max_inputs=1,
    infer=_infer_dequantize, cost=_cost_elementwise_like,
    required_attrs=("scale", "zero_point"),
))


def _infer_qconv2d(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    specs = _infer_conv2d(inputs, attrs)
    dtype = attrs.get("out_dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    return [specs[0].with_dtype(dtype)]


register_op(OpSchema(
    name="qconv2d", min_inputs=2, max_inputs=3,
    infer=_infer_qconv2d, cost=_cost_conv2d,
    required_attrs=("input_scale", "input_zero_point",
                    "weight_scale", "weight_zero_point",
                    "out_scale", "out_zero_point"),
))


def _infer_qdense(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    specs = _infer_dense(inputs, attrs)
    dtype = attrs.get("out_dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    return [specs[0].with_dtype(dtype)]


register_op(OpSchema(
    name="qdense", min_inputs=2, max_inputs=3,
    infer=_infer_qdense, cost=_cost_dense,
    required_attrs=("input_scale", "input_zero_point",
                    "weight_scale", "weight_zero_point",
                    "out_scale", "out_zero_point"),
))


# --------------------------------------------------------------------------
# Fused blocks produced by the optimizer
# --------------------------------------------------------------------------

def _infer_fused_conv(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    specs = _infer_conv2d(inputs, attrs)
    return specs


register_op(OpSchema(
    name="fused_conv2d", min_inputs=2, max_inputs=3,
    infer=_infer_fused_conv, cost=_cost_conv2d,
))


def _infer_fused_dense(inputs: Sequence[TensorSpec], attrs: Attrs) -> List[TensorSpec]:
    return _infer_dense(inputs, attrs)


register_op(OpSchema(
    name="fused_dense", min_inputs=2, max_inputs=3,
    infer=_infer_fused_dense, cost=_cost_dense,
))
