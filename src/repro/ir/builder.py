"""Fluent builder for constructing IR graphs layer by layer.

The builder keeps track of the "current" tensor so typical feed-forward
backbones read top-to-bottom, while still exposing explicit tensor handles
for branchy topologies (residual connections, detection heads).  Weights
are initialized from a seeded generator so models are reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .graph import Graph
from .tensor import DType, TensorSpec

IntOrPair = Union[int, Tuple[int, int]]


class GraphBuilder:
    """Incrementally build a :class:`~repro.ir.graph.Graph`.

    Parameters
    ----------
    name
        Graph name (also used to prefix generated tensor names).
    seed
        Seed for weight initialization; fixed default keeps model zoo
        construction deterministic across runs.
    """

    def __init__(self, name: str = "graph", seed: int = 0) -> None:
        self.graph = Graph(name)
        self.rng = np.random.default_rng(seed)
        self._counter = 0
        # Incrementally-maintained tensor specs: avoids re-running whole-graph
        # shape inference for every layer added (quadratic on deep models).
        self._specs = {}

    def spec(self, tensor: str) -> TensorSpec:
        """Spec of a tensor already present in the graph under construction."""
        return self._specs[tensor]

    # -- naming ---------------------------------------------------------------

    def _fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}_{self._counter}"

    # -- inputs and raw tensors -------------------------------------------------

    def input(
        self, name: str, shape: Sequence[int], dtype: DType = DType.FP32
    ) -> str:
        spec = TensorSpec(name, tuple(shape), dtype)
        self.graph.add_input(spec)
        self._specs[name] = spec
        return name

    def constant(
        self, value: np.ndarray, name: Optional[str] = None,
        dtype: Optional[DType] = None,
    ) -> str:
        name = name or self._fresh("const")
        self.graph.add_initializer(name, value, dtype)
        stored = self.graph.initializers[name]
        logical = self.graph.initializer_dtypes[name]
        self._specs[name] = TensorSpec(name, stored.shape, logical)
        return name

    def weight(
        self, shape: Sequence[int], name: Optional[str] = None, scale: float = 0.05
    ) -> str:
        """Create a randomly-initialized FP32 weight initializer."""
        value = self.rng.normal(0.0, scale, size=tuple(shape)).astype(np.float32)
        return self.constant(value, name=name)

    def op(
        self, op_type: str, inputs: Sequence[str], num_outputs: int = 1,
        name: Optional[str] = None, **attrs,
    ) -> Union[str, List[str]]:
        """Add a raw node; returns its output name(s)."""
        node_name = name or self._fresh(op_type)
        outputs = [f"{node_name}_out{i}" if num_outputs > 1 else f"{node_name}_out"
                   for i in range(num_outputs)]
        node = self.graph.add_node(op_type, inputs, outputs, name=node_name, **attrs)
        in_specs = [self._specs[i] for i in inputs]
        out_specs = node.schema.infer(in_specs, node.attrs)
        for tensor_name, spec in zip(outputs, out_specs):
            self._specs[tensor_name] = spec.with_name(tensor_name)
        return outputs[0] if num_outputs == 1 else outputs

    # -- layers -----------------------------------------------------------------

    def conv2d(
        self, data: str, out_channels: int, kernel: IntOrPair,
        stride: IntOrPair = 1, padding: IntOrPair = 0, groups: int = 1,
        bias: bool = True, name: Optional[str] = None,
    ) -> str:
        in_channels = self._specs[data].shape[1]
        if in_channels % groups:
            raise ValueError(
                f"groups={groups} does not divide input channels {in_channels}"
            )
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        node_name = name or self._fresh("conv")
        w = self.weight((out_channels, in_channels // groups, kh, kw),
                        name=f"{node_name}_w")
        inputs = [data, w]
        if bias:
            b = self.constant(np.zeros(out_channels, dtype=np.float32),
                              name=f"{node_name}_b")
            inputs.append(b)
        return self.op("conv2d", inputs, name=node_name,
                       stride=stride, padding=padding, groups=groups)

    def depthwise_conv2d(
        self, data: str, kernel: IntOrPair, stride: IntOrPair = 1,
        padding: IntOrPair = 0, name: Optional[str] = None,
    ) -> str:
        """Depthwise convolution: groups == channels."""
        channels = self._specs[data].shape[1]
        return self.conv2d(data, channels, kernel, stride=stride,
                           padding=padding, groups=channels, name=name)

    def batchnorm(self, data: str, name: Optional[str] = None) -> str:
        channels = self._specs[data].shape[1]
        node_name = name or self._fresh("bn")
        gamma = self.constant(
            np.abs(self.rng.normal(1.0, 0.1, channels)).astype(np.float32) + 0.1,
            name=f"{node_name}_gamma")
        beta = self.constant(
            self.rng.normal(0.0, 0.1, channels).astype(np.float32),
            name=f"{node_name}_beta")
        mean = self.constant(
            self.rng.normal(0.0, 0.1, channels).astype(np.float32),
            name=f"{node_name}_mean")
        var = self.constant(
            np.abs(self.rng.normal(1.0, 0.1, channels)).astype(np.float32) + 0.1,
            name=f"{node_name}_var")
        return self.op("batchnorm", [data, gamma, beta, mean, var],
                       name=node_name, epsilon=1e-5)

    def dense(
        self, data: str, out_features: int, bias: bool = True,
        name: Optional[str] = None,
    ) -> str:
        in_features = self._specs[data].shape[-1]
        node_name = name or self._fresh("dense")
        w = self.weight((out_features, in_features), name=f"{node_name}_w")
        inputs = [data, w]
        if bias:
            b = self.constant(np.zeros(out_features, dtype=np.float32),
                              name=f"{node_name}_b")
            inputs.append(b)
        return self.op("dense", inputs, name=node_name)

    def activation(self, data: str, kind: str = "relu",
                   name: Optional[str] = None, **attrs) -> str:
        return self.op(kind, [data], name=name, **attrs)

    def relu(self, data: str, name: Optional[str] = None) -> str:
        return self.op("relu", [data], name=name)

    def maxpool2d(self, data: str, kernel: IntOrPair, stride: IntOrPair = None,
                  padding: IntOrPair = 0, name: Optional[str] = None) -> str:
        stride = kernel if stride is None else stride
        return self.op("maxpool2d", [data], name=name,
                       kernel=kernel, stride=stride, padding=padding)

    def avgpool2d(self, data: str, kernel: IntOrPair, stride: IntOrPair = None,
                  padding: IntOrPair = 0, name: Optional[str] = None) -> str:
        stride = kernel if stride is None else stride
        return self.op("avgpool2d", [data], name=name,
                       kernel=kernel, stride=stride, padding=padding)

    def global_avgpool2d(self, data: str, name: Optional[str] = None) -> str:
        return self.op("global_avgpool2d", [data], name=name)

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.op("add", [a, b], name=name)

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.op("mul", [a, b], name=name)

    def concat(self, tensors: Sequence[str], axis: int = 1,
               name: Optional[str] = None) -> str:
        return self.op("concat", list(tensors), name=name, axis=axis)

    def flatten(self, data: str, name: Optional[str] = None) -> str:
        return self.op("flatten", [data], name=name)

    def upsample2d(self, data: str, scale: int, name: Optional[str] = None) -> str:
        return self.op("upsample2d", [data], name=name, scale=scale)

    def softmax(self, data: str, name: Optional[str] = None) -> str:
        return self.op("softmax", [data], name=name)

    # -- composite blocks ---------------------------------------------------------

    def conv_bn_act(
        self, data: str, out_channels: int, kernel: IntOrPair,
        stride: IntOrPair = 1, padding: IntOrPair = 0, groups: int = 1,
        act: str = "relu", name: Optional[str] = None,
    ) -> str:
        """conv2d + batchnorm + activation — the canonical fusable triple."""
        stem = name or self._fresh("block")
        x = self.conv2d(data, out_channels, kernel, stride=stride,
                        padding=padding, groups=groups, bias=False,
                        name=f"{stem}_conv")
        x = self.batchnorm(x, name=f"{stem}_bn")
        if act and act != "identity":
            x = self.activation(x, act, name=f"{stem}_{act}")
        return x

    # -- finalization ---------------------------------------------------------------

    def finish(self, outputs: Union[str, Sequence[str]]) -> Graph:
        if isinstance(outputs, str):
            outputs = [outputs]
        self.graph.set_outputs(list(outputs))
        self.graph.validate()
        return self.graph
