"""JSON-based model serialization — the interchange role ONNX plays in VEDLIoT.

The paper (Sec. III) uses ONNX as the common representation so that training,
optimization, compilation, and runtime frameworks can interoperate.  This
module provides the equivalent for our IR: a stable on-disk format carrying
the graph topology, attributes, and weights.  Weights are stored as base64
raw buffers so round-trips are bit-exact.
"""

from __future__ import annotations

import base64
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from .graph import Graph, GraphError
from .tensor import DType, TensorSpec

FORMAT_NAME = "repro-ir"
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a serialized model is malformed or unsupported."""


def _encode_attr(value: Any) -> Any:
    if isinstance(value, DType):
        return {"__dtype__": value.value}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_attr(v) for v in value]}
    if isinstance(value, list):
        return [_encode_attr(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__array__": _encode_array(value)}
    return value


def _decode_attr(value: Any) -> Any:
    if isinstance(value, dict):
        if "__dtype__" in value:
            return DType(value["__dtype__"])
        if "__tuple__" in value:
            return tuple(_decode_attr(v) for v in value["__tuple__"])
        if "__array__" in value:
            return _decode_array(value["__array__"])
        return {k: _decode_attr(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_attr(v) for v in value]
    return value


def _encode_array(value: np.ndarray) -> Dict[str, Any]:
    value = np.ascontiguousarray(value)
    return {
        "dtype": str(value.dtype),
        "shape": list(value.shape),
        "data": base64.b64encode(value.tobytes()).decode("ascii"),
    }


def _decode_array(entry: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(entry["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
    return arr.reshape(tuple(entry["shape"])).copy()


def _topology_dict(graph: Graph) -> Dict[str, Any]:
    """Everything but the weights: the cheap-to-encode half of the model."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": graph.name,
        "metadata": _encode_attr(graph.metadata),
        "inputs": [
            {"name": s.name, "shape": list(s.shape), "dtype": s.dtype.value}
            for s in graph.inputs
        ],
        "outputs": list(graph.output_names),
        "nodes": [
            {
                "name": n.name,
                "op_type": n.op_type,
                "inputs": list(n.inputs),
                "outputs": list(n.outputs),
                "attrs": {k: _encode_attr(v) for k, v in n.attrs.items()},
            }
            for n in graph.nodes
        ],
    }


def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """Convert a graph to a JSON-serializable dictionary."""
    return dict(
        _topology_dict(graph),
        initializers={
            name: dict(
                _encode_array(value),
                logical_dtype=graph.initializer_dtypes.get(
                    name, DType.from_numpy(value.dtype)
                ).value,
            )
            for name, value in graph.initializers.items()
        },
    )


def canonical_dumps(graph: Graph) -> str:
    """Serialize with sorted keys and no whitespace: a canonical byte
    stream, so equal graphs always hash equal across processes."""
    return json.dumps(graph_to_dict(graph), sort_keys=True,
                      separators=(",", ":"))


def graph_fingerprint(graph: Graph) -> str:
    """SHA-256 content hash of the model.

    Covers topology, attributes, and the raw weight bytes — exactly the
    inputs plan compilation depends on — so the plan cache can key on it
    and invalidate whenever any of them change.  Weights are hashed as
    raw buffers (not base64 JSON) so fingerprinting a large model costs
    one pass over its bytes; the digest is stable across processes.
    """
    digest = hashlib.sha256()
    digest.update(json.dumps(_topology_dict(graph), sort_keys=True,
                             separators=(",", ":")).encode("utf-8"))
    for name in sorted(graph.initializers):
        value = np.ascontiguousarray(graph.initializers[name])
        logical = graph.initializer_dtypes.get(
            name, DType.from_numpy(value.dtype))
        digest.update(
            f"\x00{name}\x00{logical.value}\x00{value.dtype.str}"
            f"\x00{value.shape}\x00".encode("utf-8"))
        digest.update(value.data)
    return digest.hexdigest()


def graph_from_dict(data: Dict[str, Any], validate: bool = True) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output; validates the result.

    ``validate=False`` skips the final validation sweep — for trusted
    sources such as plan-cache entries that were validated before being
    stored, where re-validation would erase the warm-start win."""
    if data.get("format") != FORMAT_NAME:
        raise SerializationError(
            f"not a {FORMAT_NAME} model (format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported {FORMAT_NAME} version {data.get('version')!r}"
        )
    graph = Graph(data.get("name", "graph"))
    graph.metadata = _decode_attr(data.get("metadata", {})) or {}
    for entry in data["inputs"]:
        graph.add_input(
            TensorSpec(entry["name"], tuple(entry["shape"]), DType(entry["dtype"]))
        )
    for name, entry in data.get("initializers", {}).items():
        graph.add_initializer(
            name, _decode_array(entry), DType(entry["logical_dtype"])
        )
    for entry in data["nodes"]:
        attrs = {k: _decode_attr(v) for k, v in entry.get("attrs", {}).items()}
        graph.add_node(
            entry["op_type"], entry["inputs"], entry["outputs"],
            name=entry["name"], **attrs,
        )
    graph.set_outputs(data["outputs"])
    if validate:
        try:
            graph.validate()
        except (GraphError, ValueError) as exc:
            raise SerializationError(
                f"deserialized graph is invalid: {exc}") from exc
    return graph


def save_graph(graph: Graph, path: Union[str, Path]) -> Path:
    """Serialize ``graph`` to a JSON file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(graph_to_dict(graph)))
    return path


def load_graph(path: Union[str, Path]) -> Graph:
    """Load a graph previously written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def dumps(graph: Graph) -> str:
    """Serialize to a JSON string."""
    return json.dumps(graph_to_dict(graph))


def loads(text: str) -> Graph:
    """Deserialize from a JSON string."""
    return graph_from_dict(json.loads(text))
