"""Optimizing toolchain: fusion, quantization, pruning, compression, search."""

from .passes import (
    AOTConfig,
    ConstantFold,
    GraphPass,
    PassManager,
    PassReport,
    specialize_graph,
)
from .fusion import FoldBatchNorm, FuseActivation, fuse_graph
from .quantization import (
    CalibrationResult,
    CastFP16,
    QuantizePass,
    calibrate,
    convert_fp16,
    quantize_int8,
)
from .pruning import ConnectionPrune, NeuronPrune, SparsityReport, sparsity_of
from .compression import (
    BitString,
    CompressedModel,
    DeepCompressionResult,
    EncodedLayer,
    HuffmanCode,
    cluster_weights,
    compress_graph,
    decompress_into,
    deep_compress,
    encode_weights,
)
from .binarization import BinarizePass, binarize
from .memory_planner import (
    Lifetime,
    MemoryPlan,
    ScratchpadReport,
    compute_lifetimes,
    peak_live_bytes,
    plan_memory,
    release_schedule,
    scratchpad_analysis,
)
from .hardware_aware import (
    OptimizationPlan,
    PlanStep,
    SearchResult,
    apply_step,
    compare_objectives,
    default_candidate_steps,
    greedy_search,
    ops_objective,
)

__all__ = [
    "AOTConfig", "ConstantFold", "GraphPass", "PassManager", "PassReport",
    "specialize_graph",
    "FoldBatchNorm", "FuseActivation", "fuse_graph",
    "CalibrationResult", "CastFP16", "QuantizePass", "calibrate",
    "convert_fp16", "quantize_int8",
    "BinarizePass", "binarize",
    "Lifetime", "MemoryPlan", "ScratchpadReport", "compute_lifetimes",
    "peak_live_bytes", "plan_memory", "release_schedule",
    "scratchpad_analysis",
    "ConnectionPrune", "NeuronPrune", "SparsityReport", "sparsity_of",
    "BitString", "CompressedModel", "DeepCompressionResult", "EncodedLayer",
    "HuffmanCode", "cluster_weights", "compress_graph", "decompress_into",
    "deep_compress", "encode_weights",
    "OptimizationPlan", "PlanStep", "SearchResult", "apply_step",
    "compare_objectives", "default_candidate_steps", "greedy_search",
    "ops_objective",
]
