"""Pass infrastructure for the optimizing toolchain.

The VEDLIoT toolchain performs "significant surgery" on the model's
computational graph (paper Sec. III).  Each transformation is a
:class:`GraphPass`; a :class:`PassManager` sequences them, validates the
graph between passes, and records what changed — the per-pass accounting
feeds the optimization reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ir.graph import Graph, Node


@dataclass
class PassReport:
    """What one pass did to the graph."""

    pass_name: str
    nodes_before: int
    nodes_after: int
    params_before: int
    params_after: int
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


class GraphPass(abc.ABC):
    """A graph-to-graph transformation.

    Passes never mutate their input graph; they work on a copy and return
    it.  ``details()`` exposes pass-specific counters recorded during the
    most recent run.
    """

    name: str = "pass"

    def __init__(self) -> None:
        self._details: Dict[str, object] = {}

    @abc.abstractmethod
    def run(self, graph: Graph) -> Graph:
        """Transform a copy of ``graph`` and return it."""

    def details(self) -> Dict[str, object]:
        return dict(self._details)

    def __call__(self, graph: Graph) -> Graph:
        return self.run(graph)


class PassManager:
    """Runs a sequence of passes, validating and reporting between them."""

    def __init__(self, passes: Sequence[GraphPass]) -> None:
        self.passes: List[GraphPass] = list(passes)
        self.reports: List[PassReport] = []

    def run(self, graph: Graph) -> Graph:
        """Apply every pass in order; returns the final graph."""
        self.reports = []
        current = graph
        for graph_pass in self.passes:
            nodes_before = len(current)
            params_before = current.num_parameters()
            current = graph_pass.run(current)
            current.validate()
            self.reports.append(PassReport(
                pass_name=graph_pass.name,
                nodes_before=nodes_before,
                nodes_after=len(current),
                params_before=params_before,
                params_after=current.num_parameters(),
                details=graph_pass.details(),
            ))
        return current

    def summary(self) -> str:
        """Table of what each pass changed in the last run."""
        lines = [f"{'pass':<24} {'nodes':>12} {'params':>24}"]
        for report in self.reports:
            lines.append(
                f"{report.pass_name:<24} "
                f"{report.nodes_before:>5} -> {report.nodes_after:<5} "
                f"{report.params_before:>11,} -> {report.params_after:<11,}"
            )
        return "\n".join(lines)


class ConstantFold(GraphPass):
    """Evaluate nodes whose inputs are all initializers at compile time.

    The classic AOT pass: any subgraph fully determined by the weights is
    executed once with the reference kernels and its outputs become
    initializers, so the runtime never recomputes it.  Because the fold
    runs the *same* bound kernel the executor would have run, the folded
    graph is bitwise-identical to the original by construction.  Nodes
    producing graph outputs are left alone (a plan needs at least the
    steps that materialize its outputs).
    """

    name = "constant_fold"

    def run(self, graph: Graph) -> Graph:
        # Deferred import: repro.runtime is a consumer of this package.
        from ..runtime.plan import compile_node

        g = graph.copy()
        specs = g.infer_specs()
        outputs = set(g.output_names)
        folded = 0
        for node in list(g.nodes):  # topological order: chains fold fully
            if not node.inputs or any(o in outputs for o in node.outputs):
                continue
            if not all(name in g.initializers for name in node.inputs):
                continue
            args = [g.initializers[name] for name in node.inputs]
            values = compile_node(node, specs)(args)
            g.remove_node(node)
            for name, value in zip(node.outputs, values):
                g.add_initializer(name, np.ascontiguousarray(value),
                                  specs[name].dtype)
            folded += 1
        g.prune_dead_nodes()
        self._details = {"nodes_folded": folded}
        return g


class LayoutPlanner(GraphPass):
    """Choose NCHW vs NHWC per subgraph and insert boundary transposes.

    Walks the graph for connected regions of layout-flexible nodes —
    exact-GEMM-eligible ``qconv2d`` (single group, reduction within
    ``kernels.EXACT_GEMM_MAX_REDUCE``, per-tensor activation scales),
    pools, per-tensor ``quantize``/``dequantize``, elementwise
    activations, and same-shape binary ops — and converts each region
    with at least ``min_convs`` convolutions to NHWC: one transpose
    (0,2,3,1) per entry tensor, one transpose (0,3,1,2) per exit tensor,
    and a ``layout="NHWC"`` attr on the conv/pool nodes inside.  Weights
    and biases stay in their OIHW/1-D layouts; the prepacker emits the
    NHWC-ordered GEMM pack.

    Every rewritten kernel is bitwise-identical per element to its NCHW
    form (transposes copy, the NHWC conv/pool kernels reduce the same
    value sequences, quantize/dequantize/activations are elementwise), so
    a region's exit transposes restore the exact NCHW reference bytes —
    the zoo equivalence suite asserts this with the pass enabled.
    """

    name = "layout_planner"

    _POOL_OPS = frozenset({"maxpool2d", "avgpool2d"})
    _BINARY_OPS = frozenset({"add", "sub", "mul", "maximum"})

    def __init__(self, min_convs: int = 2) -> None:
        super().__init__()
        self.min_convs = int(min_convs)

    def run(self, graph: Graph) -> Graph:
        from ..runtime import kernels

        g = graph.copy()
        self._details = {"regions": 0, "transposes": 0, "nodes_nhwc": 0}
        if not kernels.exact_qgemm_enabled():
            # Without the exact packs the NHWC conv falls back to
            # transpose-per-call; converting regions would only add work.
            return g
        specs = g.infer_specs()
        inits = g.initializers
        elementwise = set(kernels.ACTIVATIONS)

        def rank4(name: str) -> bool:
            spec = specs.get(name)
            return (spec is not None and len(spec.shape) == 4
                    and name not in inits)

        def scalar_attr(node: Node, key: str) -> bool:
            return np.asarray(node.attrs.get(key)).size == 1

        def eligible(node: Node) -> bool:
            if node.op_type == "qconv2d":
                if len(node.inputs) < 2 or node.inputs[1] not in inits:
                    return False
                weight = inits[node.inputs[1]]
                reduce_width = int(np.prod(weight.shape[1:]))
                return (rank4(node.inputs[0])
                        and int(node.attrs.get("groups", 1)) == 1
                        and reduce_width <= kernels.EXACT_GEMM_MAX_REDUCE
                        and scalar_attr(node, "input_scale")
                        and scalar_attr(node, "out_scale"))
            if node.op_type in self._POOL_OPS:
                return rank4(node.inputs[0])
            if node.op_type in ("quantize", "dequantize"):
                return rank4(node.inputs[0]) and scalar_attr(node, "scale")
            if node.op_type in elementwise:
                return rank4(node.inputs[0])
            if node.op_type in self._BINARY_OPS:
                return (rank4(node.inputs[0]) and rank4(node.inputs[1])
                        and specs[node.inputs[0]].shape
                        == specs[node.inputs[1]].shape)
            return False

        producer: Dict[str, int] = {}
        for index, node in enumerate(g.nodes):
            for out in node.outputs:
                producer[out] = index

        elig = [i for i, node in enumerate(g.nodes) if eligible(node)]
        elig_set = set(elig)
        parent = {i: i for i in elig}

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def data_slots(node: Node) -> range:
            return range(1 if node.op_type == "qconv2d"
                         else len(node.inputs))

        for i in elig:
            node = g.nodes[i]
            for slot in data_slots(node):
                p = producer.get(node.inputs[slot])
                if p is not None and p in elig_set:
                    ra, rb = find(i), find(p)
                    if ra != rb:
                        parent[ra] = rb

        regions: Dict[int, List[int]] = {}
        for i in elig:
            regions.setdefault(find(i), []).append(i)
        chosen = sorted(
            (sorted(idxs) for idxs in regions.values()
             if sum(1 for i in idxs
                    if g.nodes[i].op_type == "qconv2d") >= self.min_convs),
            key=lambda idxs: idxs[0])

        before: Dict[int, List[Node]] = {}
        after: Dict[int, List[Node]] = {}
        output_names = set(g.output_names)
        transposes = tagged = 0
        for ridx, idxs in enumerate(chosen):
            region = set(idxs)
            entry_cache: Dict[str, str] = {}
            for i in idxs:
                node = g.nodes[i]
                if node.op_type == "qconv2d" \
                        or node.op_type in self._POOL_OPS:
                    node.attrs["layout"] = "NHWC"
                tagged += 1
                for slot in data_slots(node):
                    name = node.inputs[slot]
                    p = producer.get(name)
                    if p is not None and p in region:
                        continue
                    nhwc = entry_cache.get(name)
                    if nhwc is None:
                        nhwc = f"{name}__nhwc{ridx}"
                        before.setdefault(i, []).append(Node(
                            name=f"{nhwc}_t", op_type="transpose",
                            inputs=[name], outputs=[nhwc],
                            attrs={"perm": (0, 2, 3, 1)}))
                        entry_cache[name] = nhwc
                        transposes += 1
                    node.inputs[slot] = nhwc
            region_outputs = {out for i in idxs for out in g.nodes[i].outputs}
            exits = region_outputs & output_names
            for j, node in enumerate(g.nodes):
                if j in region:
                    continue
                exits.update(name for name in node.inputs
                             if name in region_outputs)
            for name in sorted(exits):
                p = producer[name]
                renamed = f"{name}__nhwc{ridx}"
                pn = g.nodes[p]
                pn.outputs[pn.outputs.index(name)] = renamed
                for i in idxs:
                    inner = g.nodes[i]
                    for slot, iname in enumerate(inner.inputs):
                        if iname == name:
                            inner.inputs[slot] = renamed
                after.setdefault(p, []).append(Node(
                    name=f"{renamed}_from", op_type="transpose",
                    inputs=[renamed], outputs=[name],
                    attrs={"perm": (0, 3, 1, 2)}))
                transposes += 1

        if chosen:
            rebuilt: List[Node] = []
            for i, node in enumerate(g.nodes):
                rebuilt.extend(before.get(i, ()))
                rebuilt.append(node)
                rebuilt.extend(after.get(i, ()))
            g.nodes = rebuilt
        self._details = {
            "regions": len(chosen),
            "transposes": transposes,
            "nodes_nhwc": tagged,
        }
        return g


@dataclass(frozen=True)
class AOTConfig:
    """What the ahead-of-time specialization stage is allowed to do.

    ``fold_constants`` and ``prepack`` are bitwise-exact and on by
    default.  ``fold_batchnorm`` and ``fuse_activations`` change float
    rounding (allclose-level, not bitwise) and therefore default off —
    callers opt in when they accept the standard fused numerics.
    ``plan_layout`` runs :class:`LayoutPlanner` — also bitwise-exact, but
    off by default because it only pays for graphs with quantized conv
    chains.
    """

    fold_constants: bool = True
    fold_batchnorm: bool = False
    fuse_activations: bool = False
    prepack: bool = True
    plan_layout: bool = False

    def cache_token(self) -> str:
        """Stable string folded into the plan-cache key, so changing any
        knob invalidates previously cached plans."""
        return ("aot:v2"
                f":fc={int(self.fold_constants)}"
                f":bn={int(self.fold_batchnorm)}"
                f":fa={int(self.fuse_activations)}"
                f":pp={int(self.prepack)}"
                f":ly={int(self.plan_layout)}")


def specialize_graph(graph: Graph, config: Optional[AOTConfig] = None) -> Graph:
    """Apply the AOT graph-level specialization pipeline.

    Pass order matters: batchnorm folding rewrites weights, activation
    fusion collapses nodes, and constant folding then evaluates whatever
    became weight-only.  Weight *prepacking* (``config.prepack``) is not
    a graph transform — :func:`repro.runtime.plan.compile_plan` applies
    it when building the plan.
    """
    from .fusion import FoldBatchNorm, FuseActivation

    config = config or AOTConfig()
    passes: List[GraphPass] = []
    if config.fold_batchnorm:
        passes.append(FoldBatchNorm())
    if config.fuse_activations:
        passes.append(FuseActivation())
    if config.fold_constants:
        passes.append(ConstantFold())
    if config.plan_layout:
        passes.append(LayoutPlanner())
    if not passes:
        return graph
    return PassManager(passes).run(graph)
