"""Pass infrastructure for the optimizing toolchain.

The VEDLIoT toolchain performs "significant surgery" on the model's
computational graph (paper Sec. III).  Each transformation is a
:class:`GraphPass`; a :class:`PassManager` sequences them, validates the
graph between passes, and records what changed — the per-pass accounting
feeds the optimization reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ir.graph import Graph


@dataclass
class PassReport:
    """What one pass did to the graph."""

    pass_name: str
    nodes_before: int
    nodes_after: int
    params_before: int
    params_after: int
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


class GraphPass(abc.ABC):
    """A graph-to-graph transformation.

    Passes never mutate their input graph; they work on a copy and return
    it.  ``details()`` exposes pass-specific counters recorded during the
    most recent run.
    """

    name: str = "pass"

    def __init__(self) -> None:
        self._details: Dict[str, object] = {}

    @abc.abstractmethod
    def run(self, graph: Graph) -> Graph:
        """Transform a copy of ``graph`` and return it."""

    def details(self) -> Dict[str, object]:
        return dict(self._details)

    def __call__(self, graph: Graph) -> Graph:
        return self.run(graph)


class PassManager:
    """Runs a sequence of passes, validating and reporting between them."""

    def __init__(self, passes: Sequence[GraphPass]) -> None:
        self.passes: List[GraphPass] = list(passes)
        self.reports: List[PassReport] = []

    def run(self, graph: Graph) -> Graph:
        """Apply every pass in order; returns the final graph."""
        self.reports = []
        current = graph
        for graph_pass in self.passes:
            nodes_before = len(current)
            params_before = current.num_parameters()
            current = graph_pass.run(current)
            current.validate()
            self.reports.append(PassReport(
                pass_name=graph_pass.name,
                nodes_before=nodes_before,
                nodes_after=len(current),
                params_before=params_before,
                params_after=current.num_parameters(),
                details=graph_pass.details(),
            ))
        return current

    def summary(self) -> str:
        """Table of what each pass changed in the last run."""
        lines = [f"{'pass':<24} {'nodes':>12} {'params':>24}"]
        for report in self.reports:
            lines.append(
                f"{report.pass_name:<24} "
                f"{report.nodes_before:>5} -> {report.nodes_after:<5} "
                f"{report.params_before:>11,} -> {report.params_after:<11,}"
            )
        return "\n".join(lines)


class ConstantFold(GraphPass):
    """Evaluate nodes whose inputs are all initializers at compile time.

    The classic AOT pass: any subgraph fully determined by the weights is
    executed once with the reference kernels and its outputs become
    initializers, so the runtime never recomputes it.  Because the fold
    runs the *same* bound kernel the executor would have run, the folded
    graph is bitwise-identical to the original by construction.  Nodes
    producing graph outputs are left alone (a plan needs at least the
    steps that materialize its outputs).
    """

    name = "constant_fold"

    def run(self, graph: Graph) -> Graph:
        # Deferred import: repro.runtime is a consumer of this package.
        from ..runtime.plan import compile_node

        g = graph.copy()
        specs = g.infer_specs()
        outputs = set(g.output_names)
        folded = 0
        for node in list(g.nodes):  # topological order: chains fold fully
            if not node.inputs or any(o in outputs for o in node.outputs):
                continue
            if not all(name in g.initializers for name in node.inputs):
                continue
            args = [g.initializers[name] for name in node.inputs]
            values = compile_node(node, specs)(args)
            g.remove_node(node)
            for name, value in zip(node.outputs, values):
                g.add_initializer(name, np.ascontiguousarray(value),
                                  specs[name].dtype)
            folded += 1
        g.prune_dead_nodes()
        self._details = {"nodes_folded": folded}
        return g


@dataclass(frozen=True)
class AOTConfig:
    """What the ahead-of-time specialization stage is allowed to do.

    ``fold_constants`` and ``prepack`` are bitwise-exact and on by
    default.  ``fold_batchnorm`` and ``fuse_activations`` change float
    rounding (allclose-level, not bitwise) and therefore default off —
    callers opt in when they accept the standard fused numerics.
    """

    fold_constants: bool = True
    fold_batchnorm: bool = False
    fuse_activations: bool = False
    prepack: bool = True

    def cache_token(self) -> str:
        """Stable string folded into the plan-cache key, so changing any
        knob invalidates previously cached plans."""
        return ("aot:v1"
                f":fc={int(self.fold_constants)}"
                f":bn={int(self.fold_batchnorm)}"
                f":fa={int(self.fuse_activations)}"
                f":pp={int(self.prepack)}")


def specialize_graph(graph: Graph, config: Optional[AOTConfig] = None) -> Graph:
    """Apply the AOT graph-level specialization pipeline.

    Pass order matters: batchnorm folding rewrites weights, activation
    fusion collapses nodes, and constant folding then evaluates whatever
    became weight-only.  Weight *prepacking* (``config.prepack``) is not
    a graph transform — :func:`repro.runtime.plan.compile_plan` applies
    it when building the plan.
    """
    from .fusion import FoldBatchNorm, FuseActivation

    config = config or AOTConfig()
    passes: List[GraphPass] = []
    if config.fold_batchnorm:
        passes.append(FoldBatchNorm())
    if config.fuse_activations:
        passes.append(FuseActivation())
    if config.fold_constants:
        passes.append(ConstantFold())
    if not passes:
        return graph
    return PassManager(passes).run(graph)
