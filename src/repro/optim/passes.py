"""Pass infrastructure for the optimizing toolchain.

The VEDLIoT toolchain performs "significant surgery" on the model's
computational graph (paper Sec. III).  Each transformation is a
:class:`GraphPass`; a :class:`PassManager` sequences them, validates the
graph between passes, and records what changed — the per-pass accounting
feeds the optimization reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.graph import Graph


@dataclass
class PassReport:
    """What one pass did to the graph."""

    pass_name: str
    nodes_before: int
    nodes_after: int
    params_before: int
    params_after: int
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


class GraphPass(abc.ABC):
    """A graph-to-graph transformation.

    Passes never mutate their input graph; they work on a copy and return
    it.  ``details()`` exposes pass-specific counters recorded during the
    most recent run.
    """

    name: str = "pass"

    def __init__(self) -> None:
        self._details: Dict[str, object] = {}

    @abc.abstractmethod
    def run(self, graph: Graph) -> Graph:
        """Transform a copy of ``graph`` and return it."""

    def details(self) -> Dict[str, object]:
        return dict(self._details)

    def __call__(self, graph: Graph) -> Graph:
        return self.run(graph)


class PassManager:
    """Runs a sequence of passes, validating and reporting between them."""

    def __init__(self, passes: Sequence[GraphPass]) -> None:
        self.passes: List[GraphPass] = list(passes)
        self.reports: List[PassReport] = []

    def run(self, graph: Graph) -> Graph:
        """Apply every pass in order; returns the final graph."""
        self.reports = []
        current = graph
        for graph_pass in self.passes:
            nodes_before = len(current)
            params_before = current.num_parameters()
            current = graph_pass.run(current)
            current.validate()
            self.reports.append(PassReport(
                pass_name=graph_pass.name,
                nodes_before=nodes_before,
                nodes_after=len(current),
                params_before=params_before,
                params_after=current.num_parameters(),
                details=graph_pass.details(),
            ))
        return current

    def summary(self) -> str:
        """Table of what each pass changed in the last run."""
        lines = [f"{'pass':<24} {'nodes':>12} {'params':>24}"]
        for report in self.reports:
            lines.append(
                f"{report.pass_name:<24} "
                f"{report.nodes_before:>5} -> {report.nodes_after:<5} "
                f"{report.params_before:>11,} -> {report.params_after:<11,}"
            )
        return "\n".join(lines)
