"""Post-training quantization (PTQ) passes: INT8 QDQ rewriting and FP16 cast.

Quantization is the workhorse optimization of the paper's toolchain
(Sec. III) and the precision axis of its hardware evaluation (Sec. II-C:
"the tests were executed using INT8, FP16 or FP32 datatypes").

INT8 flow: run the float graph over a calibration set recording activation
ranges, then rewrite every conv/dense into an integer node bracketed by
quantize/dequantize so the graph stays executable end to end (QDQ form).
FP16 flow: cast all weights and tensor specs to half precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import DType, TensorSpec
from ..runtime.executor import Executor
from ..runtime.quantized import QuantParams, choose_qparams
from .passes import GraphPass

_QUANTIZABLE = {
    "conv2d": "qconv2d",
    "fused_conv2d": "qconv2d",
    "dense": "qdense",
    "fused_dense": "qdense",
}


@dataclass
class CalibrationResult:
    """Observed per-tensor activation ranges over the calibration set."""

    ranges: Dict[str, Tuple[float, float]]

    def params_for(self, tensor: str, symmetric: bool = False) -> QuantParams:
        lo, hi = self.ranges[tensor]
        samples = np.array([lo, hi], dtype=np.float32)
        return choose_qparams(samples, DType.INT8, symmetric=symmetric)


def calibrate(graph: Graph, feeds_iter: Iterable[Mapping[str, np.ndarray]],
              max_batches: int = 8) -> CalibrationResult:
    """Run the float graph over calibration batches, recording min/max.

    Records the range of *every* tensor so the quantizer can parameterize
    any boundary it ends up cutting.
    """
    executor = Executor(graph, keep_intermediates=True)
    ranges: Dict[str, Tuple[float, float]] = {}
    batches = 0
    for feeds in feeds_iter:
        env = executor.run(feeds)
        for name, value in env.items():
            if not np.issubdtype(np.asarray(value).dtype, np.floating):
                continue
            lo = float(np.min(value))
            hi = float(np.max(value))
            if name in ranges:
                old_lo, old_hi = ranges[name]
                ranges[name] = (min(old_lo, lo), max(old_hi, hi))
            else:
                ranges[name] = (lo, hi)
        batches += 1
        if batches >= max_batches:
            break
    if not batches:
        raise ValueError("calibration requires at least one batch")
    return CalibrationResult(ranges)


class QuantizePass(GraphPass):
    """Rewrite conv/dense nodes to INT8 QDQ form using calibration data.

    Parameters
    ----------
    calibration
        Ranges from :func:`calibrate` on the same graph.
    per_channel
        Quantize weights per output channel (usually more accurate) rather
        than per tensor.  The per-tensor/per-channel accuracy difference is
        one of the design ablations benchmarked in DESIGN.md.
    """

    name = "quantize_int8"

    def __init__(self, calibration: CalibrationResult,
                 per_channel: bool = True) -> None:
        super().__init__()
        self.calibration = calibration
        self.per_channel = per_channel

    def run(self, graph: Graph) -> Graph:
        g = graph.copy()
        quantized = 0
        skipped = 0
        new_nodes: List[Node] = []
        for node in g.nodes:
            target = _QUANTIZABLE.get(node.op_type)
            weight = g.initializers.get(node.inputs[1]) if len(node.inputs) > 1 else None
            if target is None or weight is None:
                if node.op_type in _QUANTIZABLE:
                    skipped += 1
                new_nodes.append(node)
                continue
            data_name = node.inputs[0]
            out_name = node.outputs[0]
            if data_name not in self.calibration.ranges or \
                    out_name not in self.calibration.ranges:
                skipped += 1
                new_nodes.append(node)
                continue

            input_params = self.calibration.params_for(data_name)
            out_params = self.calibration.params_for(out_name)
            channel_axis = 0 if self.per_channel else None
            weight_params = choose_qparams(weight, DType.INT8, symmetric=True,
                                           channel_axis=channel_axis)

            weight_name = node.inputs[1]
            g.initializers[weight_name] = weight_params.quantize(weight)
            g.initializer_dtypes[weight_name] = DType.INT8

            q_in = f"{node.name}_qin"
            q_out = f"{node.name}_qout"
            new_nodes.append(Node(
                name=f"{node.name}_quantize",
                op_type="quantize",
                inputs=[data_name],
                outputs=[q_in],
                attrs={
                    "scale": input_params.scale,
                    "zero_point": input_params.zero_point,
                    "dtype": DType.INT8,
                },
            ))
            attrs = {
                "stride": node.attrs.get("stride", 1),
                "padding": node.attrs.get("padding", 0),
                "groups": node.attrs.get("groups", 1),
                "input_scale": input_params.scale,
                "input_zero_point": input_params.zero_point,
                "weight_scale": weight_params.scale,
                "weight_zero_point": weight_params.zero_point,
                # Recorded explicitly so plan builders (and anything that
                # round-trips the graph through serialization) never have
                # to re-infer the per-channel axis from scale.size.
                "weight_channel_axis": channel_axis,
                "out_scale": out_params.scale,
                "out_zero_point": out_params.zero_point,
                "out_dtype": DType.INT8,
            }
            if target == "qdense":
                for key in ("stride", "padding", "groups"):
                    attrs.pop(key)
            if node.attrs.get("activation"):
                attrs["activation"] = node.attrs["activation"]
                if "activation_alpha" in node.attrs:
                    attrs["activation_alpha"] = node.attrs["activation_alpha"]
            new_nodes.append(Node(
                name=node.name,
                op_type=target,
                inputs=list(node.inputs),
                outputs=[q_out],
                attrs=attrs,
            ))
            new_nodes[-1].inputs[0] = q_in
            new_nodes.append(Node(
                name=f"{node.name}_dequantize",
                op_type="dequantize",
                inputs=[q_out],
                outputs=[out_name],
                attrs={
                    "scale": out_params.scale,
                    "zero_point": out_params.zero_point,
                },
            ))
            quantized += 1
        g.nodes = new_nodes
        self._details = {"nodes_quantized": quantized, "nodes_skipped": skipped}
        return g


class CastFP16(GraphPass):
    """Cast the whole graph to half precision (weights and tensor specs)."""

    name = "cast_fp16"

    def run(self, graph: Graph) -> Graph:
        g = graph.copy()
        casted = 0
        for name, value in g.initializers.items():
            if g.initializer_dtypes.get(name) is DType.FP32:
                g.initializers[name] = value.astype(np.float16)
                g.initializer_dtypes[name] = DType.FP16
                casted += 1
        g.inputs = [
            spec.with_dtype(DType.FP16) if spec.dtype is DType.FP32 else spec
            for spec in g.inputs
        ]
        self._details = {"initializers_cast": casted}
        return g


def quantize_int8(graph: Graph,
                  calibration_feeds: Iterable[Mapping[str, np.ndarray]],
                  per_channel: bool = True,
                  max_batches: int = 8) -> Graph:
    """Convenience wrapper: calibrate then apply :class:`QuantizePass`."""
    calibration = calibrate(graph, calibration_feeds, max_batches=max_batches)
    quantized = QuantizePass(calibration, per_channel=per_channel).run(graph)
    quantized.validate()
    return quantized


def convert_fp16(graph: Graph) -> Graph:
    """Convenience wrapper around :class:`CastFP16`."""
    converted = CastFP16().run(graph)
    converted.validate()
    return converted
