"""Operator fusion passes.

Fusion is the first hardware-specific optimization the paper lists
(Sec. III, step 4: "operator fusion, quantization, ...").  Two standard
rewrites are implemented:

* :class:`FoldBatchNorm` — folds inference-mode batchnorm into the weights
  and bias of the preceding convolution (exact, no accuracy change).
* :class:`FuseActivation` — absorbs an element-wise activation into the
  preceding conv/dense node so the runtime applies it in-register instead
  of in a separate memory-bound pass.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..ir.graph import Graph, Node
from .passes import GraphPass

_FUSABLE_ACTIVATIONS = frozenset(
    ("relu", "relu6", "leaky_relu", "sigmoid", "tanh",
     "hardswish", "hardsigmoid", "mish")
)


class FoldBatchNorm(GraphPass):
    """Fold ``conv2d/dense -> batchnorm`` into the preceding weighted node.

    Only fires when the weighted node's output feeds exactly the
    batchnorm (single consumer) and the node has no fused activation yet.
    The rewrite is exact in real arithmetic:
    y = gamma * (Wx - mean) / sqrt(var + eps) + beta is the same layer
    with scaled kernels and a shifted bias (float rounding differs at
    allclose level, which is why AOTConfig gates it off by default).
    """

    name = "fold_batchnorm"

    _FOLDABLE = ("conv2d", "fused_conv2d", "dense", "fused_dense")

    def run(self, graph: Graph) -> Graph:
        g = graph.copy()
        folded = 0
        consumers = g.consumer_map()
        producers = g.producer_map()
        for bn in list(g.nodes):
            if bn.op_type != "batchnorm":
                continue
            prev = producers.get(bn.inputs[0])
            if prev is None or prev.op_type not in self._FOLDABLE:
                continue
            if prev.attrs.get("activation"):
                continue
            if len(consumers.get(prev.outputs[0], [])) != 1:
                continue
            gamma = g.initializers.get(bn.inputs[1])
            beta = g.initializers.get(bn.inputs[2])
            mean = g.initializers.get(bn.inputs[3])
            var = g.initializers.get(bn.inputs[4])
            if any(v is None for v in (gamma, beta, mean, var)):
                continue  # batchnorm params are not constants
            eps = float(bn.attrs.get("epsilon", 1e-5))
            scale = gamma / np.sqrt(var + eps)

            weight_name = prev.inputs[1]
            weight = g.initializers[weight_name]
            # Per-output-channel scale: axis 0 for OIHW convs and
            # (out, in) dense weights alike.
            g.initializers[weight_name] = (
                weight * scale.reshape((-1,) + (1,) * (weight.ndim - 1))
            ).astype(weight.dtype)

            if len(prev.inputs) > 2:
                bias_name = prev.inputs[2]
                bias = g.initializers[bias_name]
            else:
                bias_name = f"{prev.name}_folded_bias"
                bias = np.zeros(weight.shape[0], dtype=weight.dtype)
                g.add_initializer(bias_name, bias)
                prev.inputs.append(bias_name)
            g.initializers[bias_name] = (
                (bias - mean) * scale + beta
            ).astype(bias.dtype)

            # Bypass the batchnorm node and drop it with its parameters.
            g.rename_tensor(bn.outputs[0], prev.outputs[0])
            g.remove_node(bn)
            folded += 1
            # Maps are stale after rewiring; rebuild for subsequent matches.
            consumers = g.consumer_map()
            producers = g.producer_map()
        g.prune_dead_nodes()
        self._details = {"batchnorms_folded": folded}
        return g


class FuseActivation(GraphPass):
    """Absorb ``conv/dense -> activation`` into a fused node."""

    name = "fuse_activation"

    _TARGETS = {
        "conv2d": "fused_conv2d",
        "fused_conv2d": "fused_conv2d",
        "dense": "fused_dense",
        "fused_dense": "fused_dense",
    }

    def run(self, graph: Graph) -> Graph:
        g = graph.copy()
        fused = 0
        consumers = g.consumer_map()
        producers = g.producer_map()
        for act in list(g.nodes):
            if act.op_type not in _FUSABLE_ACTIVATIONS:
                continue
            prev = producers.get(act.inputs[0])
            if prev is None or prev.op_type not in self._TARGETS:
                continue
            if prev.attrs.get("activation"):
                continue
            if len(consumers.get(prev.outputs[0], [])) != 1:
                continue
            prev.op_type = self._TARGETS[prev.op_type]
            prev.attrs["activation"] = act.op_type
            if act.op_type == "leaky_relu":
                # Record the slope explicitly (default included) so every
                # dispatch path applies the same alpha the standalone
                # activation node would have.
                prev.attrs["activation_alpha"] = float(
                    act.attrs.get("alpha", 0.1))
            g.rename_tensor(act.outputs[0], prev.outputs[0])
            g.remove_node(act)
            fused += 1
            consumers = g.consumer_map()
            producers = g.producer_map()
        self._details = {"activations_fused": fused}
        return g


def fuse_graph(graph: Graph) -> Graph:
    """Apply the full fusion pipeline: fold batchnorm, then fuse activations."""
    from .passes import PassManager

    manager = PassManager([FoldBatchNorm(), FuseActivation()])
    return manager.run(graph)
