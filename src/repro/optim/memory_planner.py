"""Activation-memory planning: liveness analysis and arena buffer reuse.

Paper Sec. II-B: "an in-depth study of how the memory is utilized in
current accelerators and exploring new approaches for the memory hierarchy
for future DL accelerators is performed."

This module provides the toolchain side of that study: for a given graph
it computes per-tensor lifetimes, a greedy best-fit *arena plan* that lets
dead activations' storage be reused (the TFLite-micro/TVM approach), the
theoretical lower bound (peak live bytes), and a scratchpad analysis that
asks how much DRAM traffic a given on-chip SRAM would absorb — the knob a
future accelerator's memory hierarchy trades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.graph import Graph


@dataclass(frozen=True)
class Lifetime:
    """A tensor's live interval in node-schedule positions.

    The tensor is written at ``birth`` and last read at ``death``
    (inclusive); graph outputs stay live to the end of the schedule.
    """

    tensor: str
    size_bytes: int
    birth: int
    death: int

    def overlaps(self, other: "Lifetime") -> bool:
        return self.birth <= other.death and other.birth <= self.death


@dataclass
class MemoryPlan:
    """An arena layout: every activation gets an offset in one buffer."""

    graph_name: str
    lifetimes: List[Lifetime]
    offsets: Dict[str, int]
    arena_bytes: int
    naive_bytes: int               # one private buffer per activation
    peak_live_bytes: int           # lower bound: max concurrently-live bytes

    @property
    def reuse_factor(self) -> float:
        """How much smaller the arena is than private-buffer allocation."""
        return self.naive_bytes / self.arena_bytes if self.arena_bytes else 1.0

    @property
    def efficiency(self) -> float:
        """Arena size vs. the theoretical lower bound (1.0 = optimal)."""
        return self.peak_live_bytes / self.arena_bytes if self.arena_bytes \
            else 1.0

    def validate(self) -> None:
        """No two overlapping-lifetime tensors may share bytes."""
        placed = [(lt, self.offsets[lt.tensor]) for lt in self.lifetimes]
        for i, (a, offset_a) in enumerate(placed):
            for b, offset_b in placed[i + 1:]:
                if not a.overlaps(b):
                    continue
                if offset_a < offset_b + b.size_bytes and \
                        offset_b < offset_a + a.size_bytes:
                    raise AssertionError(
                        f"arena overlap between live tensors {a.tensor!r} "
                        f"and {b.tensor!r}"
                    )

    def report(self) -> str:
        return (f"memory plan for {self.graph_name!r}: "
                f"{len(self.lifetimes)} activations, "
                f"naive {self.naive_bytes / 1024:.1f} KiB -> arena "
                f"{self.arena_bytes / 1024:.1f} KiB "
                f"({self.reuse_factor:.1f}x reuse, "
                f"{self.efficiency:.0%} of lower bound)")


def compute_lifetimes(graph: Graph) -> List[Lifetime]:
    """Lifetime of every intermediate activation (inputs/weights excluded)."""
    specs = graph.infer_specs()
    last_position = len(graph.nodes) - 1
    births: Dict[str, int] = {}
    deaths: Dict[str, int] = {}
    for position, node in enumerate(graph.nodes):
        for out in node.outputs:
            births[out] = position
            deaths[out] = position
        for name in node.inputs:
            if name in births:
                deaths[name] = position
    for out in graph.output_names:
        if out in births:
            deaths[out] = last_position
    return [
        Lifetime(name, specs[name].size_bytes, births[name], deaths[name])
        for name in births
    ]


def release_schedule(
    graph: Graph, lifetimes: Optional[List[Lifetime]] = None
) -> List[Tuple[str, ...]]:
    """Per-position release lists: the executable form of the liveness study.

    Entry ``i`` names the intermediate tensors whose last consumer is node
    ``i`` — their storage may be dropped (or handed back to the arena) as
    soon as that node has run.  Graph outputs never appear; inputs and
    initializers are caller-owned and excluded by ``compute_lifetimes``.
    """
    if lifetimes is None:
        lifetimes = compute_lifetimes(graph)
    outputs = set(graph.output_names)
    releases: List[List[str]] = [[] for _ in graph.nodes]
    for lt in lifetimes:
        if lt.tensor in outputs:
            continue
        releases[lt.death].append(lt.tensor)
    return [tuple(names) for names in releases]


def plan_memory(graph: Graph) -> MemoryPlan:
    """Greedy best-fit offset assignment (largest tensors first).

    The classic arena-planning heuristic: process tensors in decreasing
    size; place each at the lowest offset where it fits next to every
    already-placed tensor whose lifetime overlaps.
    """
    lifetimes = compute_lifetimes(graph)
    order = sorted(lifetimes, key=lambda lt: lt.size_bytes, reverse=True)
    offsets: Dict[str, int] = {}
    placed: List[Tuple[Lifetime, int]] = []
    arena = 0
    for tensor in order:
        conflicts = sorted(
            ((offset, offset + other.size_bytes)
             for other, offset in placed if other.overlaps(tensor)),
            key=lambda span: span[0],
        )
        candidate = 0
        for start, end in conflicts:
            if candidate + tensor.size_bytes <= start:
                break
            candidate = max(candidate, end)
        offsets[tensor.tensor] = candidate
        placed.append((tensor, candidate))
        arena = max(arena, candidate + tensor.size_bytes)

    naive = sum(lt.size_bytes for lt in lifetimes)
    peak = peak_live_bytes(lifetimes)
    plan = MemoryPlan(graph.name, lifetimes, offsets, arena, naive, peak)
    plan.validate()
    return plan


def peak_live_bytes(lifetimes: List[Lifetime]) -> int:
    """Maximum concurrently-live activation bytes over the schedule."""
    events: Dict[int, int] = {}
    for lt in lifetimes:
        events[lt.birth] = events.get(lt.birth, 0) + lt.size_bytes
        events[lt.death + 1] = events.get(lt.death + 1, 0) - lt.size_bytes
    live = 0
    peak = 0
    for position in sorted(events):
        live += events[position]
        peak = max(peak, live)
    return peak


@dataclass
class ScratchpadReport:
    """DRAM-traffic effect of an on-chip activation scratchpad.

    Activations whose buffers fit the scratchpad (under the arena plan)
    never travel to DRAM; the rest are written once and read per consumer.
    """

    sram_bytes: int
    arena_bytes: int
    dram_traffic_bytes: int
    baseline_traffic_bytes: int

    @property
    def traffic_saving(self) -> float:
        if not self.baseline_traffic_bytes:
            return 0.0
        return 1.0 - self.dram_traffic_bytes / self.baseline_traffic_bytes

    @property
    def fits_entirely(self) -> bool:
        return self.arena_bytes <= self.sram_bytes


def scratchpad_analysis(graph: Graph, sram_bytes: int) -> ScratchpadReport:
    """Model DRAM activation traffic with an SRAM of ``sram_bytes``.

    With the arena plan, everything below the SRAM watermark stays
    on-chip.  Tensors placed (even partially) above it spill: one write at
    birth plus one read per consuming node.
    """
    plan = plan_memory(graph)
    consumers = graph.consumer_map()
    baseline = 0
    spilled = 0
    for lt in plan.lifetimes:
        reads = len(consumers.get(lt.tensor, ())) or 1
        traffic = lt.size_bytes * (1 + reads)
        baseline += traffic
        if plan.offsets[lt.tensor] + lt.size_bytes > sram_bytes:
            spilled += traffic
    return ScratchpadReport(sram_bytes, plan.arena_bytes, spilled, baseline)
