"""Hardware-aware optimization search.

The paper's central toolchain claim (Sec. III): "theoretical speed-ups do
not always translate to more efficient execution in hardware … Utilizing
the knowledge of the target hardware leads to optimizations that translate
to improved execution metrics when deployed."

This module implements both sides of that comparison:

* a *theoretical* objective that scores candidate optimization plans by
  operation count (the metric the paper criticizes), and
* a *hardware-aware* objective that scores them with a target-specific
  latency/energy predictor (``repro.hw`` provides roofline-based ones).

A greedy search enumerates plans over the available transformation knobs
(fusion, FP16 cast, INT8 quantization, structured pruning) and keeps the
best plan under an accuracy-drop budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph
from .fusion import fuse_graph
from .pruning import NeuronPrune
from .quantization import convert_fp16, quantize_int8

# Scores a graph; lower is better.  Hardware-aware searches pass a latency
# predictor bound to a target; theoretical searches pass an ops counter.
Objective = Callable[[Graph], float]
# Measures task quality of a candidate graph (higher is better).
QualityFn = Callable[[Graph], float]


@dataclass(frozen=True)
class PlanStep:
    """One knob setting in an optimization plan."""

    kind: str                     # "fuse" | "fp16" | "int8" | "neuron_prune"
    params: Tuple[Tuple[str, object], ...] = ()

    def describe(self) -> str:
        if not self.params:
            return self.kind
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"


@dataclass
class OptimizationPlan:
    """An ordered list of steps plus the metrics achieved by applying them."""

    steps: List[PlanStep]
    objective_value: float
    quality: float
    graph: Graph

    def describe(self) -> str:
        chain = " -> ".join(s.describe() for s in self.steps) or "(baseline)"
        return (f"{chain}: objective={self.objective_value:.4g}, "
                f"quality={self.quality:.4f}")


def ops_objective(graph: Graph) -> float:
    """Theoretical objective: total arithmetic operation count."""
    return float(graph.total_cost().ops)


def apply_step(graph: Graph, step: PlanStep,
               calibration_feeds: Optional[Sequence[Mapping[str, np.ndarray]]]
               ) -> Graph:
    """Apply one plan step to ``graph`` and return the transformed copy."""
    params = dict(step.params)
    if step.kind == "fuse":
        return fuse_graph(graph)
    if step.kind == "fp16":
        return convert_fp16(graph)
    if step.kind == "int8":
        if not calibration_feeds:
            raise ValueError("int8 step requires calibration feeds")
        return quantize_int8(graph, calibration_feeds,
                             per_channel=bool(params.get("per_channel", True)))
    if step.kind == "neuron_prune":
        return NeuronPrune(float(params["fraction"])).run(graph)
    raise ValueError(f"unknown plan step kind {step.kind!r}")


def default_candidate_steps(
    supports_int8: bool = True,
    supports_fp16: bool = True,
    prune_fractions: Sequence[float] = (0.25, 0.5),
) -> List[PlanStep]:
    """The knob set the greedy search explores, filtered by target support."""
    steps = [PlanStep("fuse")]
    for fraction in prune_fractions:
        steps.append(PlanStep("neuron_prune", (("fraction", fraction),)))
    if supports_fp16:
        steps.append(PlanStep("fp16"))
    if supports_int8:
        steps.append(PlanStep("int8", (("per_channel", True),)))
    return steps


@dataclass
class SearchResult:
    """Outcome of :func:`greedy_search`: best plan plus the explored trail."""

    best: OptimizationPlan
    explored: List[OptimizationPlan] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"best plan: {self.best.describe()}"]
        lines.extend(f"  tried: {plan.describe()}" for plan in self.explored)
        return "\n".join(lines)


def greedy_search(
    graph: Graph,
    objective: Objective,
    quality_fn: QualityFn,
    max_quality_drop: float = 0.02,
    candidate_steps: Optional[Sequence[PlanStep]] = None,
    calibration_feeds: Optional[Sequence[Mapping[str, np.ndarray]]] = None,
    max_steps: int = 4,
) -> SearchResult:
    """Greedy plan search under a quality budget.

    Starting from the unmodified graph, repeatedly applies whichever
    remaining candidate step most improves the objective while keeping
    quality within ``max_quality_drop`` of the baseline.  Terminal
    precision steps (fp16/int8) end the search since further structural
    rewrites on quantized graphs are not supported.
    """
    candidates = list(candidate_steps if candidate_steps is not None
                      else default_candidate_steps())
    base_quality = quality_fn(graph)
    current = OptimizationPlan([], objective(graph), base_quality, graph)
    explored: List[OptimizationPlan] = [current]

    remaining = list(candidates)
    for _ in range(max_steps):
        best_next: Optional[Tuple[PlanStep, OptimizationPlan]] = None
        for step in remaining:
            try:
                transformed = apply_step(current.graph, step, calibration_feeds)
            except (ValueError, KeyError):
                continue
            quality = quality_fn(transformed)
            plan = OptimizationPlan(
                current.steps + [step], objective(transformed), quality,
                transformed,
            )
            explored.append(plan)
            if base_quality - quality > max_quality_drop:
                continue
            if plan.objective_value < current.objective_value and (
                    best_next is None
                    or plan.objective_value < best_next[1].objective_value):
                best_next = (step, plan)
        if best_next is None:
            break
        step, current = best_next
        remaining = [s for s in remaining if s != step]
        if step.kind in ("fp16", "int8"):
            break  # precision conversion is terminal

    return SearchResult(best=current, explored=explored)


def compare_objectives(
    graph: Graph,
    hardware_objective: Objective,
    quality_fn: QualityFn,
    calibration_feeds: Optional[Sequence[Mapping[str, np.ndarray]]] = None,
    max_quality_drop: float = 0.02,
    candidate_steps: Optional[Sequence[PlanStep]] = None,
) -> Dict[str, OptimizationPlan]:
    """Run the same search under theoretical and hardware objectives.

    Returns both winning plans, each re-scored under the *hardware*
    objective — so the comparison answers: "how fast does the plan chosen
    by ops-counting actually run on the target?"  (Paper Sec. III, Txt-B.)
    """
    theoretical = greedy_search(
        graph, ops_objective, quality_fn,
        max_quality_drop=max_quality_drop,
        candidate_steps=candidate_steps,
        calibration_feeds=calibration_feeds,
    ).best
    hardware = greedy_search(
        graph, hardware_objective, quality_fn,
        max_quality_drop=max_quality_drop,
        candidate_steps=candidate_steps,
        calibration_feeds=calibration_feeds,
    ).best
    # Re-score the theoretical winner on real hardware cost.
    theoretical = OptimizationPlan(
        theoretical.steps,
        hardware_objective(theoretical.graph),
        theoretical.quality,
        theoretical.graph,
    )
    return {"theoretical": theoretical, "hardware_aware": hardware}
