"""Deep-compression pipeline: prune, cluster-quantize, and entropy-code.

Implements the three-stage compression the paper cites ("models have been
compressed down to 49x of their original size, with negligible accuracy
loss" — Han et al.'s deep compression, reference [7]):

1. connection pruning (see :mod:`repro.optim.pruning`),
2. weight sharing via k-means clustering (each weight becomes a small
   codebook index),
3. Huffman coding of the index stream plus run-length coding of zeros.

The encoder is a real bit-level codec with a matching decoder, so tests
verify exact round-trips and the benchmark measures honest encoded sizes.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph

_WEIGHTED = ("conv2d", "fused_conv2d", "dense", "fused_dense")


# ---------------------------------------------------------------------------
# Huffman codec
# ---------------------------------------------------------------------------

class HuffmanCode:
    """Canonical Huffman code over integer symbols."""

    def __init__(self, frequencies: Dict[int, int]) -> None:
        if not frequencies:
            raise ValueError("cannot build a Huffman code over no symbols")
        self.codebook: Dict[int, str] = _build_codebook(frequencies)
        self._decode_map = {code: sym for sym, code in self.codebook.items()}

    def encode(self, symbols: Sequence[int]) -> "BitString":
        bits = BitString()
        codebook = self.codebook
        for sym in symbols:
            bits.append(codebook[sym])
        return bits

    def decode(self, bits: "BitString", count: int) -> List[int]:
        """Decode exactly ``count`` symbols from ``bits``."""
        out: List[int] = []
        current = []
        decode_map = self._decode_map
        for bit in bits:
            current.append(bit)
            key = "".join(current)
            if key in decode_map:
                out.append(decode_map[key])
                current = []
                if len(out) == count:
                    return out
        if len(out) != count:
            raise ValueError(f"bitstream exhausted after {len(out)}/{count} symbols")
        return out

    def mean_bits_per_symbol(self, frequencies: Dict[int, int]) -> float:
        total = sum(frequencies.values())
        return sum(
            len(self.codebook[sym]) * freq for sym, freq in frequencies.items()
        ) / total


def _build_codebook(frequencies: Dict[int, int]) -> Dict[int, str]:
    if len(frequencies) == 1:
        (sym,) = frequencies
        return {sym: "0"}
    counter = itertools.count()
    heap = [(freq, next(counter), sym, None, None)
            for sym, freq in frequencies.items()]
    heapq.heapify(heap)
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        heapq.heappush(heap, (a[0] + b[0], next(counter), None, a, b))
    codebook: Dict[int, str] = {}

    def walk(node, prefix: str) -> None:
        _freq, _tie, sym, left, right = node
        if sym is not None:
            codebook[sym] = prefix or "0"
            return
        walk(left, prefix + "0")
        walk(right, prefix + "1")

    walk(heap[0], "")
    return codebook


class BitString:
    """Append-only bit buffer with byte packing."""

    def __init__(self, bits: str = "") -> None:
        self._chunks: List[str] = [bits] if bits else []
        self._length = len(bits)

    def append(self, bits: str) -> None:
        self._chunks.append(bits)
        self._length += len(bits)

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        for chunk in self._chunks:
            yield from chunk

    @property
    def num_bytes(self) -> int:
        return (self._length + 7) // 8

    def to_bytes(self) -> bytes:
        text = "".join(self._chunks)
        padded = text + "0" * (-len(text) % 8)
        return bytes(
            int(padded[i:i + 8], 2) for i in range(0, len(padded), 8)
        )

    @classmethod
    def from_bytes(cls, raw: bytes, num_bits: int) -> "BitString":
        text = "".join(f"{byte:08b}" for byte in raw)[:num_bits]
        return cls(text)


# ---------------------------------------------------------------------------
# Weight clustering (k-means on 1-D weight values)
# ---------------------------------------------------------------------------

def cluster_weights(values: np.ndarray, num_clusters: int,
                    iterations: int = 12, seed: int = 0
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """1-D k-means: returns (codebook, index of nearest centroid per value).

    Centroids are initialized linearly over the value range (the scheme Han
    et al. found best for weight sharing).
    """
    flat = values.ravel().astype(np.float64)
    lo, hi = float(flat.min()), float(flat.max())
    if lo == hi:
        return np.array([lo], dtype=np.float32), np.zeros(flat.size, dtype=np.int32)
    num_clusters = min(num_clusters, np.unique(flat).size)
    centroids = np.linspace(lo, hi, num_clusters)
    assignment = np.zeros(flat.size, dtype=np.int32)
    chunk = 1 << 18  # bound the N x K distance matrix to ~tens of MB
    for _ in range(iterations):
        for start in range(0, flat.size, chunk):
            block = flat[start:start + chunk]
            assignment[start:start + chunk] = np.argmin(
                np.abs(block[:, None] - centroids[None, :]), axis=1)
        sums = np.bincount(assignment, weights=flat, minlength=num_clusters)
        counts = np.bincount(assignment, minlength=num_clusters)
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty]
    return centroids.astype(np.float32), assignment.astype(np.int32)


# ---------------------------------------------------------------------------
# Encoded layer and model containers
# ---------------------------------------------------------------------------

@dataclass
class EncodedLayer:
    """Compressed representation of one weight tensor.

    Nonzero weights are replaced by codebook indices; zeros are run-length
    encoded as (zero-run-length) symbols interleaved in a separate stream.
    The layout is: for each weight position in row-major order, the mask
    stream says zero/nonzero (as run lengths), and nonzero positions consume
    the next index symbol.
    """

    name: str
    shape: Tuple[int, ...]
    codebook: np.ndarray
    index_payload: bytes
    index_bits: int
    index_code: HuffmanCode
    num_nonzero: int
    run_payload: bytes
    run_bits: int
    run_code: Optional[HuffmanCode]
    num_runs: int

    @property
    def compressed_bytes(self) -> int:
        overhead = self.codebook.size * 4  # fp32 codebook entries
        return (self.index_bits + 7) // 8 + (self.run_bits + 7) // 8 + overhead

    def decode(self) -> np.ndarray:
        """Exact reconstruction of the clustered (lossy) weight tensor."""
        total = int(np.prod(self.shape)) if self.shape else 1
        values = np.zeros(total, dtype=np.float32)
        indices = self.index_code.decode(
            BitString.from_bytes(self.index_payload, self.index_bits),
            self.num_nonzero,
        )
        if self.run_code is not None:
            runs = self.run_code.decode(
                BitString.from_bytes(self.run_payload, self.run_bits),
                self.num_runs,
            )
        else:
            runs = []
        pos = 0
        idx_iter = iter(indices)
        # Runs alternate: zero-run length, then one nonzero value, repeating.
        for run in runs:
            pos += run
            values[pos] = self.codebook[next(idx_iter)]
            pos += 1
        return values.reshape(self.shape)


@dataclass
class CompressedModel:
    """Whole-model compression result."""

    graph_name: str
    layers: Dict[str, EncodedLayer] = field(default_factory=dict)
    uncompressed_bytes: int = 0
    uncoded_param_bytes: int = 0

    @property
    def compressed_bytes(self) -> int:
        return sum(layer.compressed_bytes for layer in self.layers.values()) + \
            self.uncoded_param_bytes

    @property
    def compression_ratio(self) -> float:
        if not self.compressed_bytes:
            return float("inf")
        return self.uncompressed_bytes / self.compressed_bytes


def encode_weights(name: str, weights: np.ndarray,
                   num_clusters: int = 32, seed: int = 0) -> EncodedLayer:
    """Cluster-quantize and entropy-code one weight tensor."""
    flat = weights.ravel().astype(np.float32)
    nonzero_mask = flat != 0
    nonzero = flat[nonzero_mask]
    if nonzero.size == 0:
        code = HuffmanCode({0: 1})
        return EncodedLayer(name, weights.shape, np.zeros(1, np.float32),
                            b"", 0, code, 0, b"", 0, None, 0)
    codebook, assignment = cluster_weights(nonzero, num_clusters, seed=seed)

    index_freq = Counter(int(i) for i in assignment)
    index_code = HuffmanCode(dict(index_freq))
    index_bits_buf = index_code.encode([int(i) for i in assignment])

    # Zero runs preceding each nonzero element.
    positions = np.flatnonzero(nonzero_mask)
    prev_end = 0
    runs: List[int] = []
    for pos in positions:
        runs.append(int(pos - prev_end))
        prev_end = pos + 1
    run_freq = Counter(runs)
    run_code = HuffmanCode(dict(run_freq))
    run_bits_buf = run_code.encode(runs)

    return EncodedLayer(
        name=name, shape=tuple(weights.shape),
        codebook=codebook,
        index_payload=index_bits_buf.to_bytes(), index_bits=len(index_bits_buf),
        index_code=index_code, num_nonzero=int(nonzero.size),
        run_payload=run_bits_buf.to_bytes(), run_bits=len(run_bits_buf),
        run_code=run_code, num_runs=len(runs),
    )


def compress_graph(graph: Graph, num_clusters: int = 32,
                   min_weights: int = 256, seed: int = 0) -> CompressedModel:
    """Encode every large conv/dense weight tensor of ``graph``.

    Small tensors (biases, batchnorm params) are charged at their raw size
    in ``uncoded_param_bytes`` so the reported ratio is honest.
    """
    specs = graph.infer_specs()
    model = CompressedModel(graph.name)
    coded: set = set()
    for node in graph.nodes:
        if node.op_type not in _WEIGHTED or len(node.inputs) < 2:
            continue
        weight_name = node.inputs[1]
        weight = graph.initializers.get(weight_name)
        if weight is None or weight.size < min_weights or weight_name in coded:
            continue
        if not np.issubdtype(weight.dtype, np.floating):
            continue
        model.layers[weight_name] = encode_weights(
            weight_name, weight, num_clusters=num_clusters, seed=seed)
        coded.add(weight_name)
    for name in graph.initializers:
        size = specs[name].size_bytes
        model.uncompressed_bytes += size
        if name not in coded:
            model.uncoded_param_bytes += size
    return model


def decompress_into(graph: Graph, model: CompressedModel) -> Graph:
    """Write decoded (clustered) weights back into a copy of ``graph``."""
    g = graph.copy()
    for name, layer in model.layers.items():
        decoded = layer.decode().astype(g.initializers[name].dtype)
        g.initializers[name] = decoded
    return g


@dataclass
class DeepCompressionResult:
    """Output of the full prune+cluster+code pipeline."""

    graph: Graph
    model: CompressedModel
    sparsity: float
    num_clusters: int

    @property
    def compression_ratio(self) -> float:
        return self.model.compression_ratio


def deep_compress(graph: Graph, prune_fraction: float = 0.9,
                  num_clusters: int = 32, seed: int = 0
                  ) -> DeepCompressionResult:
    """Full deep-compression pipeline on a copy of ``graph``.

    Returns the pruned+clustered graph (executable, for accuracy checks)
    along with the encoded model and its compression ratio.
    """
    from .pruning import ConnectionPrune, sparsity_of

    pruned = ConnectionPrune(prune_fraction).run(graph)
    encoded = compress_graph(pruned, num_clusters=num_clusters, seed=seed)
    clustered = decompress_into(pruned, encoded)
    return DeepCompressionResult(
        graph=clustered,
        model=encoded,
        sparsity=sparsity_of(pruned).global_sparsity,
        num_clusters=num_clusters,
    )
