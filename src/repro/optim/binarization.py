"""Binary-weight networks: the far end of the paper's precision axis.

Fig. 3's survey "ranges from FP32 to INT8 and even binary weights are
included".  This pass implements BinaryConnect-style weight binarization:
each float kernel becomes ``alpha * sign(W)`` with a per-output-channel
scale ``alpha = mean(|W|)`` — 1 bit of storage per weight (the IR's BINARY
dtype accounts storage at 1 bit, so model-size numbers are honest), with
the scale folded into a dedicated ``bconv2d``/``bdense`` operator the
reference executor runs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.ops import (
    OpSchema,
    _cost_conv2d,
    _cost_dense,
    _infer_conv2d,
    _infer_dense,
    get_op,
    register_op,
)
from ..ir.tensor import DType
from .passes import GraphPass

_BINARIZABLE = {
    "conv2d": "bconv2d",
    "fused_conv2d": "bconv2d",
    "dense": "bdense",
    "fused_dense": "bdense",
}

# Register the binary operators once (idempotent across reimports).
try:
    get_op("bconv2d")
except KeyError:
    register_op(OpSchema(
        name="bconv2d", min_inputs=2, max_inputs=3,
        infer=_infer_conv2d, cost=_cost_conv2d,
        required_attrs=("scale",),
    ))
    register_op(OpSchema(
        name="bdense", min_inputs=2, max_inputs=3,
        infer=_infer_dense, cost=_cost_dense,
        required_attrs=("scale",),
    ))


class BinarizePass(GraphPass):
    """Binarize conv/dense weights to sign(W) with per-channel scales.

    Parameters
    ----------
    skip_layers
        Node names to keep at full precision.  Common practice (XNOR-Net)
        keeps the first and last layers full precision; the
        :func:`binarize` wrapper applies that default.
    min_weights
        Layers smaller than this stay full precision.
    """

    name = "binarize"

    def __init__(self, skip_layers: Optional[Sequence[str]] = None,
                 min_weights: int = 64) -> None:
        super().__init__()
        self.skip_layers = frozenset(skip_layers or ())
        self.min_weights = min_weights

    def run(self, graph: Graph) -> Graph:
        g = graph.copy()
        binarized = 0
        for node in g.nodes:
            target = _BINARIZABLE.get(node.op_type)
            if target is None or node.name in self.skip_layers:
                continue
            if len(node.inputs) < 2:
                continue
            weight = g.initializers.get(node.inputs[1])
            if weight is None or weight.size < self.min_weights:
                continue
            if not np.issubdtype(weight.dtype, np.floating):
                continue
            axes = tuple(range(1, weight.ndim))
            alpha = np.abs(weight).mean(axis=axes).astype(np.float32)
            alpha = np.maximum(alpha, 1e-8)
            signs = np.where(weight >= 0, 1, -1).astype(np.int8)
            g.initializers[node.inputs[1]] = signs
            g.initializer_dtypes[node.inputs[1]] = DType.BINARY
            node.op_type = target
            node.attrs["scale"] = alpha
            binarized += 1
        self._details = {"layers_binarized": binarized}
        return g


def binarize(graph: Graph, keep_first_and_last: bool = True) -> Graph:
    """Binarize ``graph``, keeping first/last weighted layers full precision
    by default (the XNOR-Net recipe that preserves most of the accuracy)."""
    skip: List[str] = []
    if keep_first_and_last:
        weighted = [n.name for n in graph.nodes
                    if n.op_type in _BINARIZABLE]
        if weighted:
            skip = [weighted[0], weighted[-1]]
    result = BinarizePass(skip_layers=skip).run(graph)
    result.validate()
    return result
