"""Pruning passes: connection-wise (unstructured) and neuron-wise (structured).

The paper (Sec. III) credits compression to "methods that remove
connections and/or neurons".  Connection pruning zeroes individual weights
by magnitude — it shrinks the *encoded* model (exploited by
``repro.optim.compression``) but not dense compute.  Neuron/channel pruning
removes whole output channels and rewires downstream consumers, shrinking
actual compute — the kind of optimization that *does* translate to faster
hardware execution (the paper's point about theoretical vs. real speedups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..ir.graph import Graph, Node
from .passes import GraphPass

_WEIGHTED = ("conv2d", "fused_conv2d", "dense", "fused_dense")


@dataclass
class SparsityReport:
    """Per-layer and global sparsity after connection pruning."""

    per_layer: Dict[str, float]
    total_weights: int
    zero_weights: int

    @property
    def global_sparsity(self) -> float:
        return self.zero_weights / self.total_weights if self.total_weights else 0.0


class ConnectionPrune(GraphPass):
    """Zero the smallest-magnitude fraction of each weight tensor.

    Parameters
    ----------
    fraction
        Fraction of weights to zero per layer, in [0, 1).
    min_weights
        Layers smaller than this are skipped (biases and tiny layers carry
        disproportionate signal).
    """

    name = "connection_prune"

    def __init__(self, fraction: float, min_weights: int = 32,
                 skip_layers: Optional[Sequence[str]] = None) -> None:
        super().__init__()
        if not 0.0 <= fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        self.fraction = fraction
        self.min_weights = min_weights
        self.skip_layers = frozenset(skip_layers or ())

    def run(self, graph: Graph) -> Graph:
        g = graph.copy()
        per_layer: Dict[str, float] = {}
        total = 0
        zeros = 0
        for node in g.nodes:
            if node.op_type not in _WEIGHTED or len(node.inputs) < 2:
                continue
            if node.name in self.skip_layers:
                continue
            weight_name = node.inputs[1]
            weight = g.initializers.get(weight_name)
            if weight is None or weight.size < self.min_weights:
                continue
            if not np.issubdtype(weight.dtype, np.floating):
                continue
            k = int(weight.size * self.fraction)
            if k:
                flat = np.abs(weight).ravel()
                threshold = np.partition(flat, k - 1)[k - 1]
                mask = np.abs(weight) > threshold
                g.initializers[weight_name] = (weight * mask).astype(weight.dtype)
            pruned = g.initializers[weight_name]
            layer_zeros = int(np.count_nonzero(pruned == 0))
            per_layer[node.name] = layer_zeros / pruned.size
            total += pruned.size
            zeros += layer_zeros
        self._details = {
            "layers_pruned": len(per_layer),
            "global_sparsity": zeros / total if total else 0.0,
        }
        self.report = SparsityReport(per_layer, total, zeros)
        return g


def sparsity_of(graph: Graph) -> SparsityReport:
    """Measure current weight sparsity of all conv/dense layers."""
    per_layer: Dict[str, float] = {}
    total = 0
    zeros = 0
    for node in graph.nodes:
        if node.op_type not in _WEIGHTED or len(node.inputs) < 2:
            continue
        weight = graph.initializers.get(node.inputs[1])
        if weight is None:
            continue
        layer_zeros = int(np.count_nonzero(weight == 0))
        per_layer[node.name] = layer_zeros / weight.size
        total += weight.size
        zeros += layer_zeros
    return SparsityReport(per_layer, total, zeros)


class NeuronPrune(GraphPass):
    """Remove low-saliency output channels/neurons from sequential chains.

    A layer is prunable when its output feeds exactly one consumer and that
    consumer is itself a conv/dense (possibly through element-wise
    activations or pooling, which are channel-preserving).  Channels with
    the smallest L1 norm are dropped; the consumer's weight loses the
    corresponding input slices.  Layers in branchy regions (residual adds,
    concats) are conservatively skipped.
    """

    name = "neuron_prune"

    # Ops through which channel identity passes untouched.
    _TRANSPARENT = frozenset((
        "relu", "relu6", "leaky_relu", "sigmoid", "tanh", "hardswish",
        "hardsigmoid", "mish", "identity", "batchnorm",
        "maxpool2d", "avgpool2d",
    ))

    def __init__(self, fraction: float, min_channels: int = 4) -> None:
        super().__init__()
        if not 0.0 <= fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        self.fraction = fraction
        self.min_channels = min_channels

    def run(self, graph: Graph) -> Graph:
        g = graph.copy()
        pruned_layers = 0
        channels_removed = 0
        for node in g.nodes:
            result = self._try_prune(g, node)
            if result:
                pruned_layers += 1
                channels_removed += result
        self._details = {
            "layers_pruned": pruned_layers,
            "channels_removed": channels_removed,
        }
        return g

    # -- helpers ---------------------------------------------------------------

    def _chain_to_consumer(self, g: Graph, node: Node) -> Optional[List[Node]]:
        """Follow single-consumer channel-preserving ops to the next weighted op.

        Returns the chain [intermediate..., consumer] or None if the region
        branches or ends at a graph output.
        """
        consumers = g.consumer_map()
        chain: List[Node] = []
        tensor = node.outputs[0]
        for _ in range(16):  # bounded walk; chains are short in practice
            if tensor in g.output_names:
                return None
            users = consumers.get(tensor, [])
            if len(users) != 1:
                return None
            user = users[0]
            if user.op_type in _WEIGHTED:
                # Only prunable if our tensor is the *data* input.
                if user.inputs[0] != tensor:
                    return None
                chain.append(user)
                return chain
            if user.op_type in self._TRANSPARENT:
                # Channel-wise params (batchnorm) must also be sliced; we
                # only allow batchnorm with constant params.
                if user.op_type == "batchnorm" and any(
                        name not in g.initializers for name in user.inputs[1:]):
                    return None
                if user.inputs[0] != tensor:
                    return None
                chain.append(user)
                tensor = user.outputs[0]
                continue
            return None
        return None

    def _try_prune(self, g: Graph, node: Node) -> int:
        if node.op_type not in _WEIGHTED or len(node.inputs) < 2:
            return 0
        weight = g.initializers.get(node.inputs[1])
        if weight is None or not np.issubdtype(weight.dtype, np.floating):
            return 0
        is_conv = node.op_type in ("conv2d", "fused_conv2d")
        if is_conv and node.attrs.get("groups", 1) != 1:
            return 0  # grouped convs couple channel counts; skip
        out_channels = weight.shape[0]
        keep_count = max(self.min_channels,
                         out_channels - int(out_channels * self.fraction))
        if keep_count >= out_channels:
            return 0
        chain = self._chain_to_consumer(g, node)
        if chain is None:
            return 0
        consumer = chain[-1]
        if consumer.op_type in ("conv2d", "fused_conv2d") and \
                consumer.attrs.get("groups", 1) != 1:
            return 0
        consumer_weight = g.initializers.get(consumer.inputs[1])
        if consumer_weight is None:
            return 0
        if consumer.op_type in ("dense", "fused_dense") and \
                consumer_weight.shape[1] != out_channels:
            return 0  # flatten between conv and dense mixes channels; skip

        saliency = np.abs(weight.reshape(out_channels, -1)).sum(axis=1)
        keep = np.sort(np.argsort(saliency)[-keep_count:])

        # Slice the producer's weight and bias.
        g.initializers[node.inputs[1]] = weight[keep]
        if len(node.inputs) > 2 and node.inputs[2] in g.initializers:
            g.initializers[node.inputs[2]] = g.initializers[node.inputs[2]][keep]

        # Slice channel-wise params of transparent intermediates.
        for mid in chain[:-1]:
            if mid.op_type == "batchnorm":
                for name in mid.inputs[1:]:
                    g.initializers[name] = g.initializers[name][keep]

        # Slice the consumer's input dimension.
        if consumer.op_type in ("conv2d", "fused_conv2d"):
            g.initializers[consumer.inputs[1]] = consumer_weight[:, keep]
        else:
            g.initializers[consumer.inputs[1]] = consumer_weight[:, keep]
        return out_channels - keep_count


_WEIGHTED_SET: Set[str] = set(_WEIGHTED)
