"""Persistent compiled-plan cache: pay for specialization once per model.

The paper's deployment flow compiles a model ahead of time and ships the
artifact; every later start of the runtime loads it instead of redoing
the compiler's work.  This module is that artifact store for the
reference runtime.  A cache entry persists everything
:func:`repro.runtime.plan.compile_plan` derives from a graph —

* the AOT-specialized graph itself (constant-folded per the config),
* the inferred tensor specs,
* the liveness release schedule and planned peak,
* every weight and prepacked array (``ExecutionPlan.packs``) in one flat
  binary blob, indexed by offset from ``meta.json``,

so a warm start skips graph specialization, validation, shape inference,
liveness analysis, and prepacking; only the cheap closure binding runs.
The blob is ``np.memmap``-ed read-only and every array is a zero-copy
view into the mapping — per-array container overhead (the reason an
``.npz`` was slower here than just recompiling) never appears, and
because the pages are file-backed and shared, *N* replica processes
loading the same entry reference one physical copy of the weights (the
substrate of :mod:`repro.serving.replicas`).  ``load(..., mmap=False)``
keeps the old private-copy ``np.fromfile`` read for callers that need
writable arrays.

Entries are keyed by a SHA-256 over the *original* graph's canonical
serialization (topology + attrs + raw weight bytes), the
:class:`repro.optim.passes.AOTConfig` token, and the IR/pack format
versions — change any weight, config knob, or format and the key moves,
so stale entries are never loaded.  Writes go to a temp directory first
and are published with one ``os.replace``, keeping concurrent processes
safe; any unreadable or torn entry is treated as a miss and rebuilt.

Location: ``$REPRO_PLAN_CACHE_DIR`` if set, else
``$XDG_CACHE_HOME/repro/plan-cache`` (default ``~/.cache/repro/...``).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..ir.graph import Graph
from ..ir.serialization import (
    FORMAT_VERSION,
    graph_fingerprint,
    graph_from_dict,
    graph_to_dict,
)
from ..ir.tensor import DType, TensorSpec
from .plan import (
    PACK_FORMAT_VERSION,
    ExecutionPlan,
    PlanSchedule,
    compile_plan,
)

CACHE_ENV_VAR = "REPRO_PLAN_CACHE_DIR"

ENTRY_FORMAT = "repro-plan"
# v2: entries persist the dependency-counted PlanSchedule (indegrees,
# successors, refcounts, levels) consumed by the parallel executor; v1
# entries miss the version check and are rebuilt in place.
# v3: steps carry a layout tag (NCHW/NHWC from the layout-planner pass)
# and prepacked weights use the v2 pack format (float64 exact-GEMM
# panels, NHWC packs, NHWC row terms).  The pack version is also part of
# the cache key, so v2 entries both miss the key and fail the version
# check — either way they are rebuilt and atomically replaced in place.
ENTRY_VERSION = 3

_META_FILE = "meta.json"
_BLOB_FILE = "weights.bin"

# Arrays in the blob start on 64-byte boundaries so dtype views are
# aligned (and cache-line friendly) no matter what precedes them.
_BLOB_ALIGN = 64


def default_cache_dir() -> Path:
    """Resolve the cache root from the environment (see module docs)."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "plan-cache"


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`PlanCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


@dataclass
class SpecializedModel:
    """A graph + plan pair ready to execute, with cache provenance."""

    graph: Graph
    plan: ExecutionPlan
    key: str
    from_cache: bool


class PlanCache:
    """Content-addressed store of specialized graphs and their plans."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.stats = CacheStats()
        # Hit/miss/store counts surface in the process-wide metrics
        # registry (read at scrape time; lookups pay nothing extra).
        from ..telemetry import collectors as _telemetry
        _telemetry.track_plan_cache(self)

    # -- keys ------------------------------------------------------------------

    def key_for(self, graph: Graph, config=None) -> str:
        """Cache key for ``graph`` under ``config`` (an AOTConfig).

        Hashes the canonical serialization of the *unspecialized* graph,
        so a lookup needs nothing but the model the caller already has.
        """
        from ..optim.passes import AOTConfig

        config = config or AOTConfig()
        token = (f"{graph_fingerprint(graph)}:{config.cache_token()}"
                 f":ir={FORMAT_VERSION}:pack={PACK_FORMAT_VERSION}")
        return hashlib.sha256(token.encode("ascii")).hexdigest()

    # -- load / store ----------------------------------------------------------

    def load(self, key: str, *, mmap: bool = True
             ) -> Optional[Tuple[Graph, ExecutionPlan]]:
        """Hydrate a cached entry; None (and a counted miss) on absence
        or on any defect — a corrupt entry is just a rebuild, never an
        error.

        With ``mmap`` (the default) the weight blob is mapped read-only:
        zero copies, lazily paged, and physically shared between every
        process that loads the same entry — replica executors all run
        off one resident copy of the weights.  ``mmap=False`` reads a
        private writable copy instead (``np.fromfile``).
        """
        entry = self.directory / key
        try:
            meta = json.loads((entry / _META_FILE).read_text())
            if meta.get("format") != ENTRY_FORMAT or \
                    meta.get("version") != ENTRY_VERSION:
                raise ValueError("unsupported cache entry format")
            graph = graph_from_dict(meta["graph"], validate=False)
            specs = {
                s["name"]: TensorSpec(s["name"], tuple(s["shape"]),
                                      DType(s["dtype"]))
                for s in meta["specs"]
            }
            # One map (or read) for every weight and pack; each array
            # below is a zero-copy view into this buffer.  (An .npz here
            # costs more than recompiling: ~200 zipfile reads + crc32
            # passes.)
            blob_path = entry / _BLOB_FILE
            if blob_path.stat().st_size == 0:
                blob = np.zeros(0, dtype=np.uint8)
            elif mmap:
                blob = np.memmap(blob_path, dtype=np.uint8, mode="r")
            else:
                blob = np.fromfile(blob_path, dtype=np.uint8)

            def _view(index: List) -> np.ndarray:
                dtype_str, shape, offset, nbytes = index
                return blob[offset:offset + nbytes] \
                    .view(np.dtype(dtype_str)).reshape(tuple(shape))

            packs: Dict[str, Dict[str, np.ndarray]] = {}
            for name, dtype, *index in meta["initializers"]:
                graph.add_initializer(name, _view(index), DType(dtype))
            for node_name, entry_name, *index in meta["packs"]:
                packs.setdefault(node_name, {})[entry_name] = _view(index)
            schedule = PlanSchedule.from_dict(meta["schedule"]) \
                if meta.get("schedule") else None
            plan = compile_plan(
                graph, specs, packs=packs,
                releases=[tuple(r) for r in meta["releases"]],
                peak_live=int(meta["peak_live_bytes"]),
                schedule=schedule)
        except Exception:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return graph, plan

    def store(self, key: str, graph: Graph, plan: ExecutionPlan) -> Path:
        """Persist a specialized graph + compiled plan atomically."""
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=str(self.directory),
                                    prefix=f".{key[:12]}-"))
        try:
            init_index: List[List] = []
            pack_index: List[List] = []
            with open(tmp / _BLOB_FILE, "wb") as blob:

                def _append(value: np.ndarray) -> List:
                    value = np.ascontiguousarray(value)
                    pad = -blob.tell() % _BLOB_ALIGN
                    if pad:
                        blob.write(b"\x00" * pad)
                    offset = blob.tell()
                    blob.write(value.data)
                    return [str(value.dtype), list(value.shape),
                            offset, value.nbytes]

                for name in graph.initializers:
                    value = graph.initializers[name]
                    dtype = graph.initializer_dtypes.get(
                        name, DType.from_numpy(value.dtype))
                    init_index.append([name, dtype.value] + _append(value))
                for node_name in sorted(plan.packs):
                    for entry_name in sorted(plan.packs[node_name]):
                        pack_index.append(
                            [node_name, entry_name]
                            + _append(plan.packs[node_name][entry_name]))
            # The graph topology goes to JSON *without* weights; they are
            # restored from the blob at load time.  Shallow clone: the
            # serializer only reads, so nodes/specs can be shared.
            stripped = Graph(graph.name)
            stripped.inputs = list(graph.inputs)
            stripped.output_names = list(graph.output_names)
            stripped.metadata = dict(graph.metadata)
            stripped.nodes = graph.nodes
            meta = {
                "format": ENTRY_FORMAT,
                "version": ENTRY_VERSION,
                "key": key,
                "graph": graph_to_dict(stripped),
                "initializers": init_index,
                "specs": [
                    {"name": s.name, "shape": list(s.shape),
                     "dtype": s.dtype.value}
                    for s in plan.specs.values()
                ],
                "releases": [list(step.release) for step in plan.steps],
                "peak_live_bytes": int(plan.peak_live_bytes),
                "schedule": (plan.schedule.to_dict()
                             if plan.schedule is not None else None),
                "packs": pack_index,
            }
            (tmp / _META_FILE).write_text(json.dumps(meta))
            target = self.directory / key
            try:
                os.replace(tmp, target)
            except OSError:
                # Target already exists — a concurrent publish, or a
                # defective entry this process just failed to load.
                # Content addressing makes our fresh copy equivalent or
                # better, so move the old entry aside and swap ours in;
                # if even that races, keep whatever won.
                stale = self.directory / f".stale-{os.getpid()}-{key[:12]}"
                try:
                    os.replace(target, stale)
                    os.replace(tmp, target)
                except OSError:
                    shutil.rmtree(tmp, ignore_errors=True)
                shutil.rmtree(stale, ignore_errors=True)
            self.stats.stores += 1
            return target
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    # -- maintenance -----------------------------------------------------------

    def entries(self) -> List[Dict[str, object]]:
        """Metadata of every readable entry (for CLI ``plan-cache stats``)."""
        if not self.directory.is_dir():
            return []
        found: List[Dict[str, object]] = []
        for child in sorted(self.directory.iterdir()):
            meta_path = child / _META_FILE
            if child.name.startswith(".") or not meta_path.is_file():
                continue
            try:
                meta = json.loads(meta_path.read_text())
            except Exception:
                continue
            size = sum(f.stat().st_size for f in child.iterdir()
                       if f.is_file())
            found.append({
                "key": child.name,
                "graph": meta.get("graph", {}).get("name", "?"),
                "nodes": len(meta.get("graph", {}).get("nodes", [])),
                "packed_arrays": len(meta.get("packs", [])),
                "bytes": size,
            })
        return found

    def clear(self) -> int:
        """Delete every entry (and any orphaned temp dir); returns the
        number of entries removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for child in list(self.directory.iterdir()):
            if not child.is_dir():
                continue
            if not child.name.startswith("."):
                removed += 1
            shutil.rmtree(child, ignore_errors=True)
        return removed


def load_or_build(graph: Graph, config=None,
                  cache: Optional[PlanCache] = None) -> SpecializedModel:
    """The AOT entry point: cached specialized plan, or build-and-store.

    On a hit, returns the persisted specialized graph and a plan rebound
    from the cached specs/schedule/packs.  On a miss, runs
    :func:`repro.optim.passes.specialize_graph`, compiles (with
    prepacking per the config), stores the entry, and returns the cold
    result.  Either way the returned plan executes bitwise-identically
    to interpreting the original graph.
    """
    from ..optim.passes import AOTConfig, specialize_graph

    config = config or AOTConfig()
    cache = cache if cache is not None else PlanCache()
    key = cache.key_for(graph, config)
    loaded = cache.load(key)
    if loaded is not None:
        warm_graph, warm_plan = loaded
        return SpecializedModel(warm_graph, warm_plan, key, from_cache=True)
    specialized = specialize_graph(graph, config)
    plan = compile_plan(specialized, prepack=config.prepack)
    cache.store(key, specialized, plan)
    return SpecializedModel(specialized, plan, key, from_cache=False)
