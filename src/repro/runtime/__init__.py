"""Reference runtime: numpy kernels, compiled plans, executor, profiler."""

from .arena import ArenaStats, RunContext, ScratchArena
from .executor import Executor, run_graph
from .kernels import Workspace
from .plan import (
    PACK_FORMAT_VERSION,
    CompiledStep,
    ExecutionError,
    ExecutionPlan,
    compile_node,
    compile_plan,
    prepack_graph,
)
from .plan_cache import (
    CacheStats,
    PlanCache,
    SpecializedModel,
    default_cache_dir,
    load_or_build,
)
from .profiler import LayerProfile, Profiler, ProfileResult, profile_graph
from .quantized import (
    QuantParams,
    RequantPlan,
    build_requant_plan,
    choose_qparams,
    quantization_error,
    quantized_conv2d,
    quantized_dense,
    zero_point_row_term,
)

__all__ = [
    "ArenaStats", "RunContext", "ScratchArena", "Workspace",
    "ExecutionError", "Executor", "run_graph",
    "CompiledStep", "ExecutionPlan", "PACK_FORMAT_VERSION",
    "compile_node", "compile_plan", "prepack_graph",
    "CacheStats", "PlanCache", "SpecializedModel",
    "default_cache_dir", "load_or_build",
    "LayerProfile", "Profiler", "ProfileResult", "profile_graph",
    "QuantParams", "RequantPlan", "build_requant_plan",
    "choose_qparams", "quantization_error",
    "quantized_conv2d", "quantized_dense", "zero_point_row_term",
]
