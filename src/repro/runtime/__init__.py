"""Reference runtime: numpy kernels, compiled plans, executor, profiler."""

from .arena import ArenaStats, RunContext, ScratchArena
from .executor import Executor, run_graph
from .kernels import Workspace
from .plan import CompiledStep, ExecutionError, ExecutionPlan, compile_node, compile_plan
from .profiler import LayerProfile, Profiler, ProfileResult, profile_graph
from .quantized import (
    QuantParams,
    choose_qparams,
    quantization_error,
    quantized_conv2d,
    quantized_dense,
)

__all__ = [
    "ArenaStats", "RunContext", "ScratchArena", "Workspace",
    "ExecutionError", "Executor", "run_graph",
    "CompiledStep", "ExecutionPlan", "compile_node", "compile_plan",
    "LayerProfile", "Profiler", "ProfileResult", "profile_graph",
    "QuantParams", "choose_qparams", "quantization_error",
    "quantized_conv2d", "quantized_dense",
]
