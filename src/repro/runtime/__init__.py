"""Reference runtime: numpy kernels, executor, quantized arithmetic, profiler."""

from .executor import ExecutionError, Executor, run_graph
from .profiler import LayerProfile, Profiler, ProfileResult, profile_graph
from .quantized import (
    QuantParams,
    choose_qparams,
    quantization_error,
    quantized_conv2d,
    quantized_dense,
)

__all__ = [
    "ExecutionError", "Executor", "run_graph",
    "LayerProfile", "Profiler", "ProfileResult", "profile_graph",
    "QuantParams", "choose_qparams", "quantization_error",
    "quantized_conv2d", "quantized_dense",
]
