"""Reference runtime: numpy kernels, compiled plans, executor, profiler."""

from .arena import (
    ArenaOwnershipError,
    ArenaStats,
    RunContext,
    ScratchArena,
    WorkerSlices,
)
from .executor import Executor, run_graph
from .kernels import Workspace
from .parallel import NUM_THREADS_ENV_VAR, WorkerPool, get_pool, \
    resolve_num_threads
from .plan import (
    PACK_FORMAT_VERSION,
    CompiledStep,
    ExecutionError,
    ExecutionPlan,
    PlanSchedule,
    ShardPlan,
    build_schedule,
    build_shard,
    compile_node,
    compile_plan,
    prepack_graph,
)
from .plan_cache import (
    CacheStats,
    PlanCache,
    SpecializedModel,
    default_cache_dir,
    load_or_build,
)
from .profiler import LayerProfile, Profiler, ProfileResult, profile_graph
from .quantized import (
    QuantParams,
    RequantPlan,
    build_requant_plan,
    choose_qparams,
    quantization_error,
    quantized_conv2d,
    quantized_dense,
    zero_point_row_term,
)

__all__ = [
    "ArenaOwnershipError", "ArenaStats", "RunContext", "ScratchArena",
    "WorkerSlices", "Workspace",
    "ExecutionError", "Executor", "run_graph",
    "NUM_THREADS_ENV_VAR", "WorkerPool", "get_pool", "resolve_num_threads",
    "CompiledStep", "ExecutionPlan", "PACK_FORMAT_VERSION",
    "PlanSchedule", "ShardPlan", "build_schedule", "build_shard",
    "compile_node", "compile_plan", "prepack_graph",
    "CacheStats", "PlanCache", "SpecializedModel",
    "default_cache_dir", "load_or_build",
    "LayerProfile", "Profiler", "ProfileResult", "profile_graph",
    "QuantParams", "RequantPlan", "build_requant_plan",
    "choose_qparams", "quantization_error",
    "quantized_conv2d", "quantized_dense", "zero_point_row_term",
]
