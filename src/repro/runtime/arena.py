"""Scratch arenas: recycled activation buffers for steady-state inference.

The memory planner (repro.optim.memory_planner) proves how small the live
set of a plan can be; this module makes repeated execution actually *stay*
there.  A :class:`ScratchArena` is a pool of previously-used activation
buffers keyed by ``(shape, dtype)``.  The executor allocates every node
output through the arena and returns each intermediate to it the moment
the liveness schedule declares it dead, so after a warmup run every
"allocation" is a recycled buffer and steady-state inference performs no
large heap allocations at all — the behaviour of a static arena on an
embedded target (paper Sec. II-B), reproduced on the host runtime.

Ownership rules keep recycling safe:

* only arrays handed out by :meth:`ScratchArena.alloc` are accepted back
  by :meth:`release` (a graph-input feed dying in the liveness schedule is
  silently ignored, never pooled);
* graph outputs are :meth:`detach`-ed before they escape to the caller,
  and can be explicitly returned later via :meth:`adopt` (what the
  serving engine does after splitting a batch into per-request copies);
* an arena is **single-owner by default**: every mutating call carries a
  cheap in-use assertion, so two threads recycling through one arena
  concurrently raise :class:`ArenaOwnershipError` instead of silently
  corrupting the free pool.  The parallel executor's activation buffers
  genuinely cross threads (a branch computed on worker A is consumed and
  released on worker B), so it opts its arena into *shared* mode
  (:meth:`ScratchArena.share`), which replaces the assertion with a real
  lock.  Intra-kernel scratch never crosses threads and stays private:
  each pool worker draws from its own :class:`WorkerSlices` slice.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..telemetry import collectors as _telemetry


class ArenaOwnershipError(RuntimeError):
    """Concurrent use of a single-owner arena (see module docs)."""

# Allocations above this many bytes count as "large" in the stats — the
# threshold the batch-scaling acceptance check asserts against.
LARGE_ALLOCATION_BYTES = 1 << 20


@dataclass
class ArenaStats:
    """Counters describing how an arena has been used.

    ``allocations`` increments only when a request misses the free pool
    and real memory is obtained from the heap; a steady-state workload
    therefore shows a flat ``allocations`` (and ``large_allocations``)
    count while ``reuses`` keeps growing.
    """

    allocations: int = 0
    allocated_bytes: int = 0
    large_allocations: int = 0
    reuses: int = 0
    reused_bytes: int = 0
    releases: int = 0
    foreign_releases: int = 0
    # Live-footprint accounting: ``outstanding_bytes`` is the sum of
    # buffers currently checked out; ``peak_bytes`` is the high-water
    # mark of outstanding + pooled bytes — the arena's real memory
    # footprint at its worst moment.  ``clear()`` resets the live
    # numbers but keeps the peak (it happened).
    outstanding_bytes: int = 0
    peak_bytes: int = 0

    def snapshot(self) -> "ArenaStats":
        return replace(self)


class ScratchArena:
    """A free-list pool of activation buffers keyed by (shape, dtype)."""

    def __init__(self, large_threshold: int = LARGE_ALLOCATION_BYTES) -> None:
        self.large_threshold = int(large_threshold)
        self.stats = ArenaStats()
        # Incremental mirror of pooled_bytes() so peak accounting costs
        # one add per mutation instead of a free-list walk.
        self._pooled_nbytes = 0
        self._free: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
        # Strong references to every buffer currently checked out.  Keying
        # by id() is safe exactly because the reference is strong: an id
        # cannot be recycled while the array it names is still held here.
        self._issued: Dict[int, np.ndarray] = {}
        # Single-owner guard state: None until shared.  ``_active`` holds
        # the thread currently inside a mutating call; a second thread
        # entering while it is set is concurrent misuse.
        self._lock: "threading.Lock | None" = None
        self._active: "int | None" = None
        # Scrape-time telemetry: the registry reads this arena's stats
        # through a weak reference; the alloc/release paths pay nothing.
        _telemetry.track_arena(self)

    def share(self) -> "ScratchArena":
        """Opt into thread-safe shared mode: mutating calls serialize on
        a lock instead of asserting single ownership.  Idempotent."""
        if self._lock is None:
            self._lock = threading.Lock()
        return self

    @property
    def is_shared(self) -> bool:
        return self._lock is not None

    def _enter(self) -> bool:
        """Begin a mutating call; returns True when a lock was taken."""
        lock = self._lock
        if lock is not None:
            lock.acquire()
            return True
        me = threading.get_ident()
        holder = self._active
        if holder is not None and holder != me:
            raise ArenaOwnershipError(
                "ScratchArena used concurrently from multiple threads; "
                "arenas are single-owner — call share() for thread-safe "
                "use, or give each worker its own arena")
        self._active = me
        return False

    def _exit(self, locked: bool) -> None:
        if locked:
            self._lock.release()
        else:
            self._active = None

    @staticmethod
    def _key(shape, dtype) -> Tuple[Tuple[int, ...], str]:
        return tuple(int(d) for d in shape), np.dtype(dtype).str

    def alloc(self, shape, dtype) -> np.ndarray:
        """Return an uninitialized buffer, recycled when possible."""
        key = self._key(shape, dtype)
        locked = self._enter()
        try:
            free = self._free.get(key)
            if free:
                buf = free.pop()
                self.stats.reuses += 1
                self.stats.reused_bytes += buf.nbytes
                self._pooled_nbytes -= buf.nbytes
            else:
                buf = np.empty(key[0], dtype=np.dtype(key[1]))
                self.stats.allocations += 1
                self.stats.allocated_bytes += buf.nbytes
                if buf.nbytes > self.large_threshold:
                    self.stats.large_allocations += 1
            self._issued[id(buf)] = buf
            self.stats.outstanding_bytes += buf.nbytes
            self._note_peak()
            return buf
        finally:
            self._exit(locked)

    def reserve(self, shape, dtype, count: int = 1) -> int:
        """Pre-populate the free pool up to ``count`` buffers of this key.

        Used by plan prewarm so even the first run draws recycled
        buffers.  The heap memory obtained here is counted in the
        allocation stats (it is real memory), but it is acquired before
        steady state begins.  Returns how many buffers were added.
        """
        key = self._key(shape, dtype)
        locked = self._enter()
        try:
            free = self._free.setdefault(key, [])
            added = 0
            while len(free) < count:
                buf = np.empty(key[0], dtype=np.dtype(key[1]))
                self.stats.allocations += 1
                self.stats.allocated_bytes += buf.nbytes
                if buf.nbytes > self.large_threshold:
                    self.stats.large_allocations += 1
                free.append(buf)
                self._pooled_nbytes += buf.nbytes
                added += 1
            self._note_peak()
            return added
        finally:
            self._exit(locked)

    def release(self, array: np.ndarray) -> bool:
        """Return a dead tensor to the pool; ignores arrays we never issued."""
        locked = self._enter()
        try:
            issued = self._issued.pop(id(array), None)
            if issued is None:
                self.stats.foreign_releases += 1
                return False
            self._free.setdefault(self._key(array.shape, array.dtype),
                                  []).append(array)
            self.stats.releases += 1
            self.stats.outstanding_bytes -= issued.nbytes
            self._pooled_nbytes += issued.nbytes
            return True
        finally:
            self._exit(locked)

    def detach(self, array: np.ndarray) -> None:
        """Stop tracking an issued buffer (it escapes to the caller)."""
        locked = self._enter()
        try:
            issued = self._issued.pop(id(array), None)
            if issued is not None:
                self.stats.outstanding_bytes -= issued.nbytes
        finally:
            self._exit(locked)

    def adopt(self, array: np.ndarray) -> bool:
        """Donate a caller-owned base array to the pool (explicit recycle)."""
        if not isinstance(array, np.ndarray) or array.base is not None \
                or not array.flags["C_CONTIGUOUS"]:
            return False
        locked = self._enter()
        try:
            self._free.setdefault(self._key(array.shape, array.dtype),
                                  []).append(array)
            self.stats.releases += 1
            self._pooled_nbytes += array.nbytes
            self._note_peak()
            return True
        finally:
            self._exit(locked)

    def _note_peak(self) -> None:
        live = self.stats.outstanding_bytes + self._pooled_nbytes
        if live > self.stats.peak_bytes:
            self.stats.peak_bytes = live

    def pooled_bytes(self) -> int:
        return sum(buf.nbytes for bufs in self._free.values() for buf in bufs)

    def clear(self) -> None:
        locked = self._enter()
        try:
            self._free.clear()
            self._issued.clear()
            self._pooled_nbytes = 0
            self.stats.outstanding_bytes = 0
        finally:
            self._exit(locked)


class WorkerSlices:
    """Per-worker-thread scratch slices for parallel execution.

    Kernel workspaces (im2col columns, padded inputs, accumulators) are
    keyed by shape, so two threads running equal-shaped kernels through
    one workspace would silently trample each other's scratch.  This
    container gives every pool worker its own lazily-created slice,
    keyed by thread identity; slices persist across runs, so per-worker
    scratch reaches the same allocate-once steady state as the
    sequential path.
    """

    def __init__(self, factory: Callable[[], object]) -> None:
        self._factory = factory
        self._slices: Dict[int, object] = {}
        self._lock = threading.Lock()

    def get(self) -> object:
        """The calling thread's slice, created on first use."""
        ident = threading.get_ident()
        slice_ = self._slices.get(ident)
        if slice_ is None:
            with self._lock:
                slice_ = self._slices.get(ident)
                if slice_ is None:
                    slice_ = self._factory()
                    self._slices[ident] = slice_
        return slice_

    def __len__(self) -> int:
        return len(self._slices)

    def values(self):
        return list(self._slices.values())


class RunContext:
    """Per-execution handle the bound kernels allocate through.

    Carries the plan instance's arena (inter-node activation buffers) and
    kernel workspace (intra-kernel scratch such as im2col columns).  A
    builder that receives ``ctx=None`` must fall back to plain allocating
    behaviour, so compiled steps stay usable without an arena.
    """

    __slots__ = ("arena", "workspace")

    def __init__(self, arena: ScratchArena, workspace) -> None:
        self.arena = arena
        self.workspace = workspace

    def alloc(self, shape, dtype) -> np.ndarray:
        return self.arena.alloc(shape, dtype)
