"""Reference executor: runs a compiled plan on numpy tensors.

This is the "runtime" stage of the deployment flow (paper Sec. III,
step 6).  The graph is compiled once at construction time
(:func:`repro.runtime.plan.compile_plan`): every node's attributes and
quantization parameters are resolved into a bound kernel callable, and a
liveness schedule (from the activation-memory planner) marks where each
intermediate tensor dies.  :meth:`Executor.run` is then a thin loop —
call the bound kernel, fire hooks, store outputs, drop dead tensors — so
repeated inference pays no per-run dispatch or attr-lookup cost and holds
no more activation memory than the planner's ``peak_live_bytes``.

With ``reuse_buffers=True`` the executor goes one step further: node
outputs are allocated through the plan instance's scratch arena and dead
intermediates are returned to it, so after a warmup run steady-state
inference performs no large heap allocations (the arena's stats counters
prove it).  Callers that want a fully closed loop hand their finished
output arrays back via :meth:`Executor.recycle` — what the serving
engine does after splitting a batch into per-request copies.

It supports float graphs, QDQ-quantized graphs produced by the PTQ pass,
binarized graphs, and fused graphs.  Per-node hooks allow the profiler
(latency/memory measurements, Kenning-style) and the safety fault
injector to observe or perturb intermediate tensors.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import TensorSpec
from .arena import RunContext
from .plan import ExecutionError, ExecutionPlan, compile_plan

# Hook signature: (node, output arrays) -> possibly-replaced output arrays.
NodeHook = Callable[[Node, List[np.ndarray]], Optional[List[np.ndarray]]]


class Executor:
    """Executes a graph through its compiled plan.

    Parameters
    ----------
    graph
        The graph to execute; validated and compiled at construction.
    keep_intermediates
        When true, :meth:`run` returns every tensor, not just graph outputs
        (used by the robustness monitors and by debugging tools).  This
        disables early release of dead activations.
    reuse_buffers
        When true, the executor attaches a per-instance scratch arena and
        kernel workspace to the plan and routes all activation storage
        through them.  Incompatible with ``keep_intermediates`` (tensors
        kept for the caller can never be recycled).
    plan
        An already-compiled plan to reuse (compiled steps are immutable
        and shareable); the serving engine's worker pool passes the same
        base plan to every worker instead of recompiling the graph.
    prewarm
        With ``reuse_buffers``, pre-populate the scratch arena's free
        pool from the plan's activation shapes so even the first run
        allocates nothing from the heap.
    """

    def __init__(self, graph: Graph, keep_intermediates: bool = False,
                 reuse_buffers: bool = False,
                 plan: Optional[ExecutionPlan] = None,
                 prewarm: bool = False) -> None:
        if keep_intermediates and reuse_buffers:
            raise ValueError(
                "keep_intermediates and reuse_buffers are mutually "
                "exclusive: kept tensors can never be recycled")
        if plan is None:
            plan = compile_plan(graph)
        if reuse_buffers:
            plan = plan.with_buffers(prewarm=prewarm)
        self.plan: ExecutionPlan = plan
        self.graph = graph
        self.specs: Dict[str, TensorSpec] = self.plan.specs
        self.keep_intermediates = keep_intermediates
        self.reuse_buffers = reuse_buffers
        self._ctx: Optional[RunContext] = (
            RunContext(plan.arena, plan.workspace) if reuse_buffers else None)
        self._hooks: List[NodeHook] = []

    def add_hook(self, hook: NodeHook) -> None:
        """Register a per-node hook, called after each node executes."""
        self._hooks.append(hook)

    def clear_hooks(self) -> None:
        self._hooks.clear()

    # -- feeds ---------------------------------------------------------------

    def _check_feeds(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        env: Dict[str, np.ndarray] = {}
        for spec in self.graph.inputs:
            if spec.name not in feeds:
                raise ExecutionError(f"missing feed for graph input {spec.name!r}")
            value = np.asarray(feeds[spec.name])
            if tuple(value.shape) != spec.shape:
                raise ExecutionError(
                    f"feed {spec.name!r} has shape {value.shape}, "
                    f"expected {spec.shape}"
                )
            env[spec.name] = value.astype(spec.dtype.to_numpy(), copy=False)
        extra = set(feeds) - set(env)
        if extra:
            raise ExecutionError(f"unknown feed tensors: {sorted(extra)}")
        return env

    # -- execution -------------------------------------------------------------

    def run(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run one inference; returns a dict of output name to array."""
        env = self._check_feeds(feeds)
        env.update(self.graph.initializers)
        release = not self.keep_intermediates
        ctx = self._ctx
        for step in self.plan.steps:
            node = step.node
            args = [env[name] for name in node.inputs]
            try:
                outputs = step.run(args, ctx) if ctx is not None \
                    else step.run(args)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(
                    f"node {node.name!r} ({node.op_type}) failed: {exc}"
                ) from exc
            for hook in self._hooks:
                replaced = hook(node, outputs)
                if replaced is not None:
                    if ctx is not None:
                        # A hook that substitutes a tensor orphans the
                        # arena original; reclaim it unless the
                        # replacement still aliases its storage.
                        for orig, new in zip(outputs, replaced):
                            if new is not orig and \
                                    not np.may_share_memory(orig, new):
                                ctx.arena.release(orig)
                    outputs = replaced
            for name, value in zip(node.outputs, outputs):
                env[name] = value
            if release:
                for name in step.release:
                    dead = env.pop(name)
                    if ctx is not None:
                        ctx.arena.release(dead)
        if self.keep_intermediates:
            return env
        results = {name: env[name] for name in self.graph.output_names}
        if ctx is not None:
            # Outputs escape to the caller; stop tracking them so the
            # arena never hands their storage out again behind the
            # caller's back.  recycle() re-donates them explicitly.
            for value in results.values():
                ctx.arena.detach(value)
        return results

    def recycle(self, outputs: Union[Mapping[str, np.ndarray],
                                     Iterable[np.ndarray]]) -> None:
        """Donate finished output arrays back to the scratch arena.

        No-op without ``reuse_buffers``.  After recycling, the arrays
        must no longer be read — their storage will back future runs.
        """
        if self._ctx is None:
            return
        arrays = outputs.values() if isinstance(outputs, Mapping) else outputs
        for array in arrays:
            self._ctx.arena.adopt(array)

    def __call__(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return self.run(feeds)


def run_graph(graph: Graph, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(graph).run(feeds)
