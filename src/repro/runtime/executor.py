"""Reference executor: runs a compiled plan on numpy tensors.

This is the "runtime" stage of the deployment flow (paper Sec. III,
step 6).  The graph is compiled once at construction time
(:func:`repro.runtime.plan.compile_plan`): every node's attributes and
quantization parameters are resolved into a bound kernel callable, and a
liveness schedule (from the activation-memory planner) marks where each
intermediate tensor dies.  :meth:`Executor.run` is then a thin loop —
call the bound kernel, fire hooks, store outputs, drop dead tensors — so
repeated inference pays no per-run dispatch or attr-lookup cost and holds
no more activation memory than the planner's ``peak_live_bytes``.

It supports float graphs, QDQ-quantized graphs produced by the PTQ pass,
binarized graphs, and fused graphs.  Per-node hooks allow the profiler
(latency/memory measurements, Kenning-style) and the safety fault
injector to observe or perturb intermediate tensors.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import TensorSpec
from .plan import ExecutionError, ExecutionPlan, compile_plan

# Hook signature: (node, output arrays) -> possibly-replaced output arrays.
NodeHook = Callable[[Node, List[np.ndarray]], Optional[List[np.ndarray]]]


class Executor:
    """Executes a graph through its compiled plan.

    Parameters
    ----------
    graph
        The graph to execute; validated and compiled at construction.
    keep_intermediates
        When true, :meth:`run` returns every tensor, not just graph outputs
        (used by the robustness monitors and by debugging tools).  This
        disables early release of dead activations.
    """

    def __init__(self, graph: Graph, keep_intermediates: bool = False) -> None:
        self.plan: ExecutionPlan = compile_plan(graph)
        self.graph = graph
        self.specs: Dict[str, TensorSpec] = self.plan.specs
        self.keep_intermediates = keep_intermediates
        self._hooks: List[NodeHook] = []

    def add_hook(self, hook: NodeHook) -> None:
        """Register a per-node hook, called after each node executes."""
        self._hooks.append(hook)

    def clear_hooks(self) -> None:
        self._hooks.clear()

    # -- feeds ---------------------------------------------------------------

    def _check_feeds(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        env: Dict[str, np.ndarray] = {}
        for spec in self.graph.inputs:
            if spec.name not in feeds:
                raise ExecutionError(f"missing feed for graph input {spec.name!r}")
            value = np.asarray(feeds[spec.name])
            if tuple(value.shape) != spec.shape:
                raise ExecutionError(
                    f"feed {spec.name!r} has shape {value.shape}, "
                    f"expected {spec.shape}"
                )
            env[spec.name] = value.astype(spec.dtype.to_numpy(), copy=False)
        extra = set(feeds) - set(env)
        if extra:
            raise ExecutionError(f"unknown feed tensors: {sorted(extra)}")
        return env

    # -- execution -------------------------------------------------------------

    def run(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run one inference; returns a dict of output name to array."""
        env = self._check_feeds(feeds)
        env.update(self.graph.initializers)
        release = not self.keep_intermediates
        for step in self.plan.steps:
            node = step.node
            args = [env[name] for name in node.inputs]
            try:
                outputs = step.run(args)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(
                    f"node {node.name!r} ({node.op_type}) failed: {exc}"
                ) from exc
            for hook in self._hooks:
                replaced = hook(node, outputs)
                if replaced is not None:
                    outputs = replaced
            for name, value in zip(node.outputs, outputs):
                env[name] = value
            if release:
                for name in step.release:
                    del env[name]
        if self.keep_intermediates:
            return env
        return {name: env[name] for name in self.graph.output_names}

    def __call__(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return self.run(feeds)


def run_graph(graph: Graph, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(graph).run(feeds)
