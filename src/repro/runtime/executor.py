"""Reference executor: runs a compiled plan on numpy tensors.

This is the "runtime" stage of the deployment flow (paper Sec. III,
step 6).  The graph is compiled once at construction time
(:func:`repro.runtime.plan.compile_plan`): every node's attributes and
quantization parameters are resolved into a bound kernel callable, and a
liveness schedule (from the activation-memory planner) marks where each
intermediate tensor dies.  :meth:`Executor.run` is then a thin loop —
call the bound kernel, fire hooks, store outputs, drop dead tensors — so
repeated inference pays no per-run dispatch or attr-lookup cost and holds
no more activation memory than the planner's ``peak_live_bytes``.

With ``reuse_buffers=True`` the executor goes one step further: node
outputs are allocated through the plan instance's scratch arena and dead
intermediates are returned to it, so after a warmup run steady-state
inference performs no large heap allocations (the arena's stats counters
prove it).  Callers that want a fully closed loop hand their finished
output arrays back via :meth:`Executor.recycle` — what the serving
engine does after splitting a batch into per-request copies.

It supports float graphs, QDQ-quantized graphs produced by the PTQ pass,
binarized graphs, and fused graphs.  Per-node hooks allow the profiler
(latency/memory measurements, Kenning-style) and the safety fault
injector to observe or perturb intermediate tensors.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import TensorSpec
from . import kernels
from .arena import RunContext, WorkerSlices
from .parallel import get_pool, resolve_num_threads
from .plan import ExecutionError, ExecutionPlan, compile_plan

# Hook signature: (node, output arrays) -> possibly-replaced output arrays.
NodeHook = Callable[[Node, List[np.ndarray]], Optional[List[np.ndarray]]]


class Executor:
    """Executes a graph through its compiled plan.

    Parameters
    ----------
    graph
        The graph to execute; validated and compiled at construction.
    keep_intermediates
        When true, :meth:`run` returns every tensor, not just graph outputs
        (used by the robustness monitors and by debugging tools).  This
        disables early release of dead activations.
    reuse_buffers
        When true, the executor attaches a per-instance scratch arena and
        kernel workspace to the plan and routes all activation storage
        through them.  Incompatible with ``keep_intermediates`` (tensors
        kept for the caller can never be recycled).
    plan
        An already-compiled plan to reuse (compiled steps are immutable
        and shareable); the serving engine's worker pool passes the same
        base plan to every worker instead of recompiling the graph.
    prewarm
        With ``reuse_buffers``, pre-populate the scratch arena's free
        pool from the plan's activation shapes so even the first run
        allocates nothing from the heap.
    num_threads
        Worker threads for plan execution: the plan's dependency-counted
        schedule dispatches independent steps (and row shards of wide
        steps) onto the shared process pool.  ``None`` defers to the
        ``REPRO_NUM_THREADS`` environment default, else 1 (sequential).
        Results are bitwise-identical to sequential execution at any
        thread count.  Runs with per-node hooks registered always take
        the sequential path — hook order is part of their contract.
    """

    def __init__(self, graph: Graph, keep_intermediates: bool = False,
                 reuse_buffers: bool = False,
                 plan: Optional[ExecutionPlan] = None,
                 prewarm: bool = False,
                 num_threads: Optional[int] = None) -> None:
        if keep_intermediates and reuse_buffers:
            raise ValueError(
                "keep_intermediates and reuse_buffers are mutually "
                "exclusive: kept tensors can never be recycled")
        if plan is None:
            plan = compile_plan(graph)
        if reuse_buffers:
            plan = plan.with_buffers(prewarm=prewarm)
        self.plan: ExecutionPlan = plan
        self.graph = graph
        self.specs: Dict[str, TensorSpec] = self.plan.specs
        self.keep_intermediates = keep_intermediates
        self.reuse_buffers = reuse_buffers
        self._ctx: Optional[RunContext] = (
            RunContext(plan.arena, plan.workspace) if reuse_buffers else None)
        self._hooks: List[NodeHook] = []
        self.num_threads = resolve_num_threads(num_threads)
        # When recording, each parallel run leaves per-step wall spans in
        # last_timeline (the profiler's raw material for observed
        # concurrency).
        self.record_timeline = False
        self.last_timeline: Optional[List[Dict[str, object]]] = None
        self._worker_spaces: Optional[WorkerSlices] = None
        if self.num_threads > 1:
            if reuse_buffers:
                # Activation buffers genuinely cross threads (produced on
                # one worker, consumed and released on another), so the
                # arena opts into locked shared mode; kernel scratch
                # never crosses threads and stays per-worker.
                self.plan.arena.share()
                self._worker_spaces = WorkerSlices(kernels.Workspace)
            get_pool(ensure=self.num_threads - 1)

    def add_hook(self, hook: NodeHook) -> None:
        """Register a per-node hook, called after each node executes."""
        self._hooks.append(hook)

    def clear_hooks(self) -> None:
        self._hooks.clear()

    # -- feeds ---------------------------------------------------------------

    def _check_feeds(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        env: Dict[str, np.ndarray] = {}
        for spec in self.graph.inputs:
            if spec.name not in feeds:
                raise ExecutionError(f"missing feed for graph input {spec.name!r}")
            value = np.asarray(feeds[spec.name])
            if tuple(value.shape) != spec.shape:
                raise ExecutionError(
                    f"feed {spec.name!r} has shape {value.shape}, "
                    f"expected {spec.shape}"
                )
            env[spec.name] = value.astype(spec.dtype.to_numpy(), copy=False)
        extra = set(feeds) - set(env)
        if extra:
            raise ExecutionError(f"unknown feed tensors: {sorted(extra)}")
        return env

    # -- execution -------------------------------------------------------------

    def run(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run one inference; returns a dict of output name to array."""
        env = self._check_feeds(feeds)
        env.update(self.graph.initializers)
        if (self.num_threads > 1 and not self._hooks
                and not self.keep_intermediates
                and self.plan.schedule is not None):
            return self._run_parallel(env)
        release = not self.keep_intermediates
        ctx = self._ctx
        # Sequential per-step timeline (same span shape as the parallel
        # path) for tracing/export; one predictable branch per step when
        # disabled, zero allocations.
        timeline: Optional[List[Dict[str, object]]] = (
            [] if self.record_timeline else None)
        clock = time.perf_counter
        t0 = clock() if timeline is not None else 0.0
        for step in self.plan.steps:
            node = step.node
            args = [env[name] for name in node.inputs]
            if timeline is not None:
                step_start = clock()
            try:
                outputs = step.run(args, ctx) if ctx is not None \
                    else step.run(args)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(
                    f"node {node.name!r} ({node.op_type}) failed: {exc}"
                ) from exc
            if timeline is not None:
                timeline.append({
                    "name": node.name, "op": node.op_type,
                    "start": step_start - t0, "end": clock() - t0,
                    "thread": threading.get_ident()})
            for hook in self._hooks:
                replaced = hook(node, outputs)
                if replaced is not None:
                    if ctx is not None:
                        # A hook that substitutes a tensor orphans the
                        # arena original; reclaim it unless the
                        # replacement still aliases its storage.
                        for orig, new in zip(outputs, replaced):
                            if new is not orig and \
                                    not np.may_share_memory(orig, new):
                                ctx.arena.release(orig)
                    outputs = replaced
            for name, value in zip(node.outputs, outputs):
                env[name] = value
            if release:
                for name in step.release:
                    dead = env.pop(name)
                    if ctx is not None:
                        ctx.arena.release(dead)
        if timeline is not None:
            self.last_timeline = timeline
        if self.keep_intermediates:
            return env
        results = {name: env[name] for name in self.graph.output_names}
        if ctx is not None:
            # Outputs escape to the caller; stop tracking them so the
            # arena never hands their storage out again behind the
            # caller's back.  recycle() re-donates them explicitly.
            for value in results.values():
                ctx.arena.detach(value)
        return results

    def _run_parallel(self, env: Dict[str, np.ndarray]
                      ) -> Dict[str, np.ndarray]:
        """Dependency-scheduled execution on the shared worker pool.

        The calling thread always *participates* in the claim loop, so
        the run completes even if every pool worker is busy elsewhere;
        ``num_threads - 1`` helper tasks are invited onto the shared
        pool.  Steps become ready when their dependency count reaches
        zero; wide steps with a :class:`ShardPlan` are expanded into row
        shards writing disjoint views of one preallocated output.  Dead
        activations are released when their per-buffer refcount drops to
        zero — the out-of-order-safe equivalent of the sequential
        release schedule.  Outputs are bitwise-identical to the
        sequential path by construction (same bound kernels; shards
        split only row-independent ops).
        """
        plan = self.plan
        steps = plan.steps
        schedule = plan.schedule
        total = len(steps)
        arena = plan.arena if self._ctx is not None else None
        lock = threading.Lock()
        cond = threading.Condition(lock)
        queue: deque = deque(
            index for index in range(total) if schedule.indegree[index] == 0)
        indegree = list(schedule.indegree)
        refcounts = dict(schedule.refcounts)
        state: Dict[str, object] = {"done": 0, "error": None}
        timeline: Optional[List[Dict[str, object]]] = (
            [] if self.record_timeline else None)
        clock = time.perf_counter
        t0 = clock()

        def _release_locked(name: str) -> None:
            dead = env.pop(name, None)
            if dead is not None and arena is not None:
                arena.release(dead)

        def _complete_locked(index: int, outputs: List[np.ndarray]) -> None:
            node = steps[index].node
            for name, value in zip(node.outputs, outputs):
                env[name] = value
            for name in node.outputs:
                if refcounts.get(name) == 0:
                    _release_locked(name)  # dead on arrival: no consumers
            for name in set(node.inputs):
                count = refcounts.get(name)
                if count is None:
                    continue
                refcounts[name] = count - 1
                if count == 1:
                    _release_locked(name)
            for succ in schedule.successors[index]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
            state["done"] += 1
            cond.notify_all()

        def _fail_locked(node: Node, exc: BaseException) -> None:
            if state["error"] is None:
                state["error"] = (node, exc)
            cond.notify_all()

        def _claim_locked():
            """Pop a work item; expands a shardable step into row-shard
            subtasks (queued at the front so helpers join immediately)
            and hands the first shard to the claimant."""
            if not queue:
                return None
            item = queue.popleft()
            if not isinstance(item, int):
                return item
            step = steps[item]
            args = [env[name] for name in step.node.inputs]
            shard = step.shard
            if shard is not None:
                parts = min(self.num_threads, shard.rows)
                if parts >= 2:
                    out = (arena.alloc(shard.shape, shard.dtype)
                           if arena is not None
                           else np.empty(shard.shape, dtype=shard.dtype))
                    bounds = kernels.shard_bounds(shard.rows, parts)
                    holder = {"index": item, "args": args, "out": out,
                              "shard": shard, "remaining": len(bounds)}
                    for span in reversed(bounds[1:]):
                        queue.appendleft(("shard", holder, span))
                    cond.notify_all()
                    return ("shard", holder, bounds[0])
            return ("step", item, args)

        def _record_locked(node: Node, start: float, end: float,
                           rows=None) -> None:
            if timeline is not None:
                entry = {"name": node.name, "op": node.op_type,
                         "start": start - t0, "end": end - t0,
                         "thread": threading.get_ident()}
                if rows is not None:
                    entry["rows"] = rows
                timeline.append(entry)

        def _execute(item) -> None:
            start = clock()
            if item[0] == "step":
                _, index, args = item
                step = steps[index]
                ctx = (RunContext(plan.arena, self._worker_spaces.get())
                       if self._ctx is not None else None)
                try:
                    outputs = step.run(args, ctx) if ctx is not None \
                        else step.run(args)
                except BaseException as exc:
                    with lock:
                        _fail_locked(step.node, exc)
                    return
                with lock:
                    _record_locked(step.node, start, clock())
                    _complete_locked(index, outputs)
                return
            _, holder, (lo, hi) = item
            shard = holder["shard"]
            node = steps[holder["index"]].node
            workspace = (self._worker_spaces.get()
                         if self._worker_spaces is not None else None)
            try:
                shard.run_shard(holder["args"], holder["out"], lo, hi,
                                workspace=workspace)
            except BaseException as exc:
                with lock:
                    _fail_locked(node, exc)
                return
            with lock:
                _record_locked(node, start, clock(), rows=(lo, hi))
                holder["remaining"] -= 1
                if holder["remaining"] == 0:
                    _complete_locked(holder["index"], [holder["out"]])

        def _participate() -> None:
            while True:
                with lock:
                    while True:
                        if state["error"] is not None \
                                or state["done"] == total:
                            return
                        item = _claim_locked()
                        if item is not None:
                            break
                        cond.wait()
                _execute(item)

        helpers = self.num_threads - 1
        if helpers > 0:
            pool = get_pool(ensure=helpers)
            for _ in range(helpers):
                pool.submit(_participate)
        _participate()
        with lock:
            error = state["error"]
        self.last_timeline = timeline
        if error is not None:
            node, exc = error
            if isinstance(exc, ExecutionError):
                raise exc
            raise ExecutionError(
                f"node {node.name!r} ({node.op_type}) failed: {exc}"
            ) from exc
        results = {name: env[name] for name in self.graph.output_names}
        if arena is not None:
            for value in results.values():
                arena.detach(value)
        return results

    def recycle(self, outputs: Union[Mapping[str, np.ndarray],
                                     Iterable[np.ndarray]]) -> None:
        """Donate finished output arrays back to the scratch arena.

        No-op without ``reuse_buffers``.  After recycling, the arrays
        must no longer be read — their storage will back future runs.
        """
        if self._ctx is None:
            return
        arrays = outputs.values() if isinstance(outputs, Mapping) else outputs
        for array in arrays:
            self._ctx.arena.adopt(array)

    def __call__(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return self.run(feeds)


def run_graph(graph: Graph, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(graph).run(feeds)
