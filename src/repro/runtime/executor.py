"""Reference executor: interprets an IR graph on numpy tensors.

This is the "runtime" stage of the deployment flow (paper Sec. III, step 6).
It supports float graphs, QDQ-quantized graphs produced by the PTQ pass, and
fused graphs produced by the fusion pass.  Per-node hooks allow the profiler
(latency/memory measurements, Kenning-style) and the safety fault injector
to observe or perturb intermediate tensors.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import DType, TensorSpec
from . import kernels
from .quantized import QuantParams, quantized_conv2d, quantized_dense

# Hook signature: (node, output arrays) -> possibly-replaced output arrays.
NodeHook = Callable[[Node, List[np.ndarray]], Optional[List[np.ndarray]]]


class ExecutionError(RuntimeError):
    """Raised when graph execution fails (bad feeds, missing kernel, ...)."""


def _conv_attrs(node: Node) -> Dict[str, Any]:
    return {
        "stride": node.attrs.get("stride", 1),
        "padding": node.attrs.get("padding", 0),
        "groups": node.attrs.get("groups", 1),
    }


def _node_qparams(node: Node, prefix: str, channel_axis=None) -> QuantParams:
    dtype = node.attrs.get(f"{prefix}_dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    scale = np.asarray(node.attrs[f"{prefix}_scale"])
    axis = channel_axis if scale.size > 1 else None
    return QuantParams(
        scale, np.asarray(node.attrs[f"{prefix}_zero_point"]),
        dtype, channel_axis=axis,
    )


class Executor:
    """Executes a validated graph.

    Parameters
    ----------
    graph
        The graph to execute; validated at construction.
    keep_intermediates
        When true, :meth:`run` returns every tensor, not just graph outputs
        (used by the robustness monitors and by debugging tools).
    """

    def __init__(self, graph: Graph, keep_intermediates: bool = False) -> None:
        graph.validate()
        self.graph = graph
        self.specs: Dict[str, TensorSpec] = graph.infer_specs()
        self.keep_intermediates = keep_intermediates
        self._hooks: List[NodeHook] = []

    def add_hook(self, hook: NodeHook) -> None:
        """Register a per-node hook, called after each node executes."""
        self._hooks.append(hook)

    def clear_hooks(self) -> None:
        self._hooks.clear()

    # -- feeds ---------------------------------------------------------------

    def _check_feeds(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        env: Dict[str, np.ndarray] = {}
        for spec in self.graph.inputs:
            if spec.name not in feeds:
                raise ExecutionError(f"missing feed for graph input {spec.name!r}")
            value = np.asarray(feeds[spec.name])
            if tuple(value.shape) != spec.shape:
                raise ExecutionError(
                    f"feed {spec.name!r} has shape {value.shape}, "
                    f"expected {spec.shape}"
                )
            env[spec.name] = value.astype(spec.dtype.to_numpy(), copy=False)
        extra = set(feeds) - set(env)
        if extra:
            raise ExecutionError(f"unknown feed tensors: {sorted(extra)}")
        return env

    # -- execution -------------------------------------------------------------

    def run(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run one inference; returns a dict of output name to array."""
        env = self._check_feeds(feeds)
        env.update(self.graph.initializers)
        for node in self.graph.nodes:
            args = [env[name] for name in node.inputs]
            try:
                outputs = self._dispatch(node, args)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(
                    f"node {node.name!r} ({node.op_type}) failed: {exc}"
                ) from exc
            for hook in self._hooks:
                replaced = hook(node, outputs)
                if replaced is not None:
                    outputs = replaced
            for name, value in zip(node.outputs, outputs):
                env[name] = value
        if self.keep_intermediates:
            return env
        return {name: env[name] for name in self.graph.output_names}

    def __call__(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return self.run(feeds)

    # -- dispatch ---------------------------------------------------------------

    def _dispatch(self, node: Node, args: List[np.ndarray]) -> List[np.ndarray]:
        op = node.op_type
        if op in ("conv2d", "fused_conv2d"):
            out = kernels.conv2d(args[0], args[1],
                                 bias=args[2] if len(args) > 2 else None,
                                 **_conv_attrs(node))
            act = node.attrs.get("activation")
            if act:
                out = kernels.ACTIVATIONS[act](out)
            return [out]
        if op in ("dense", "fused_dense"):
            out = kernels.dense(args[0], args[1],
                                bias=args[2] if len(args) > 2 else None)
            act = node.attrs.get("activation")
            if act:
                out = kernels.ACTIVATIONS[act](out)
            return [out]
        if op == "bconv2d":
            scale = np.asarray(node.attrs["scale"], dtype=np.float32)
            out = kernels.conv2d(args[0], args[1].astype(np.float32),
                                 **_conv_attrs(node))
            out = out * scale.reshape(1, -1, 1, 1)
            if len(args) > 2:
                out = out + args[2].reshape(1, -1, 1, 1)
            act = node.attrs.get("activation")
            if act:
                out = kernels.ACTIVATIONS[act](out)
            return [out]
        if op == "bdense":
            scale = np.asarray(node.attrs["scale"], dtype=np.float32)
            out = kernels.dense(args[0], args[1].astype(np.float32)) * scale
            if len(args) > 2:
                out = out + args[2]
            act = node.attrs.get("activation")
            if act:
                out = kernels.ACTIVATIONS[act](out)
            return [out]
        if op == "qconv2d":
            out = quantized_conv2d(
                args[0], _node_qparams(node, "input"),
                args[1], _node_qparams(node, "weight", channel_axis=0),
                args[2] if len(args) > 2 else None,
                _node_qparams(node, "out"),
                activation=node.attrs.get("activation"),
                **_conv_attrs(node),
            )
            return [out]
        if op == "qdense":
            out = quantized_dense(
                args[0], _node_qparams(node, "input"),
                args[1], _node_qparams(node, "weight", channel_axis=0),
                args[2] if len(args) > 2 else None,
                _node_qparams(node, "out"),
                activation=node.attrs.get("activation"),
            )
            return [out]
        if op == "batchnorm":
            return [kernels.batchnorm(*args, epsilon=node.attrs.get("epsilon", 1e-5))]
        if op in kernels.ACTIVATIONS:
            if op == "leaky_relu":
                return [kernels.leaky_relu(args[0],
                                           alpha=node.attrs.get("alpha", 0.1))]
            return [kernels.ACTIVATIONS[op](args[0])]
        if op == "softmax":
            return [kernels.softmax(args[0], axis=node.attrs.get("axis", -1))]
        if op == "add":
            return [args[0] + args[1]]
        if op == "sub":
            return [args[0] - args[1]]
        if op == "mul":
            return [args[0] * args[1]]
        if op == "maximum":
            return [np.maximum(args[0], args[1])]
        if op == "maxpool2d":
            return [kernels.maxpool2d(args[0], node.attrs["kernel"],
                                      node.attrs.get("stride"),
                                      node.attrs.get("padding", 0))]
        if op == "avgpool2d":
            return [kernels.avgpool2d(args[0], node.attrs["kernel"],
                                      node.attrs.get("stride"),
                                      node.attrs.get("padding", 0))]
        if op == "global_avgpool2d":
            return [kernels.global_avgpool2d(args[0])]
        if op == "upsample2d":
            return [kernels.upsample2d(args[0], int(node.attrs["scale"]))]
        if op == "flatten":
            return [args[0].reshape(args[0].shape[0], -1)]
        if op == "reshape":
            return [args[0].reshape(self.specs[node.outputs[0]].shape)]
        if op == "concat":
            return [np.concatenate(args, axis=int(node.attrs.get("axis", 1)))]
        if op == "pad":
            return [kernels.pad(args[0], node.attrs["pads"])]
        if op == "quantize":
            params = _node_qparams_from(node)
            return [params.quantize(args[0])]
        if op == "dequantize":
            params = _node_qparams_from(node)
            return [params.dequantize(args[0])]
        raise ExecutionError(f"no kernel for op {op!r}")


def _node_qparams_from(node: Node) -> QuantParams:
    dtype = node.attrs.get("dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    scale = np.asarray(node.attrs["scale"])
    axis = node.attrs.get("channel_axis") if scale.size > 1 else None
    return QuantParams(scale, np.asarray(node.attrs["zero_point"]), dtype,
                       channel_axis=axis)


def run_graph(graph: Graph, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(graph).run(feeds)
