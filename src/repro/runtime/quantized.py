"""Quantized tensor representation and INT8 arithmetic.

Implements the affine quantization scheme used by the toolchain's
post-training quantization pass: ``real = scale * (q - zero_point)``.
Per-tensor and per-channel parameterizations are both supported; the
hardware-aware optimizer benchmarks the accuracy difference between them
(a design-choice ablation called out in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..ir.tensor import DType

INT8_MIN, INT8_MAX = -128, 127
UINT8_MIN, UINT8_MAX = 0, 255


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters.

    ``scale`` and ``zero_point`` are scalars for per-tensor quantization or
    1-D arrays (indexed by ``channel_axis``) for per-channel quantization.
    """

    scale: np.ndarray
    zero_point: np.ndarray
    dtype: DType = DType.INT8
    channel_axis: Optional[int] = None

    def __post_init__(self) -> None:
        scale = np.atleast_1d(np.asarray(self.scale, dtype=np.float64))
        zero = np.atleast_1d(np.asarray(self.zero_point, dtype=np.int64))
        if np.any(scale <= 0):
            raise ValueError("quantization scale must be positive")
        if scale.shape != zero.shape:
            raise ValueError("scale and zero_point must have matching shapes")
        if self.channel_axis is None and scale.size != 1:
            raise ValueError("per-tensor params must be scalar")
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "zero_point", zero)

    @property
    def qmin(self) -> int:
        return UINT8_MIN if self.dtype is DType.UINT8 else INT8_MIN

    @property
    def qmax(self) -> int:
        return UINT8_MAX if self.dtype is DType.UINT8 else INT8_MAX

    def _broadcast(self, values: np.ndarray, ndim: int) -> np.ndarray:
        if self.channel_axis is None:
            return values.reshape(())
        shape = [1] * ndim
        shape[self.channel_axis] = -1
        return values.reshape(shape)

    def quantize(self, real: np.ndarray) -> np.ndarray:
        """Quantize float values to the integer grid (round-to-nearest-even)."""
        scale = self._broadcast(self.scale, real.ndim)
        zero = self._broadcast(self.zero_point, real.ndim)
        q = np.round(real / scale) + zero
        return np.clip(q, self.qmin, self.qmax).astype(self.dtype.to_numpy())

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        scale = self._broadcast(self.scale, q.ndim)
        zero = self._broadcast(self.zero_point, q.ndim)
        return ((q.astype(np.float64) - zero) * scale).astype(np.float32)


def choose_qparams(
    values: np.ndarray,
    dtype: DType = DType.INT8,
    symmetric: bool = True,
    channel_axis: Optional[int] = None,
) -> QuantParams:
    """Pick scale/zero-point from observed value range.

    Symmetric mode (weights) centres the grid on zero; asymmetric mode
    (activations after ReLU etc.) uses the full [min, max] range.
    """
    if channel_axis is not None:
        axes = tuple(i for i in range(values.ndim) if i != channel_axis)
        lo = values.min(axis=axes)
        hi = values.max(axis=axes)
    else:
        lo = np.array(values.min())
        hi = np.array(values.max())
    # Work in float64 with a positive floor: float32 denormal ranges
    # divided by the grid width would underflow to an invalid zero scale.
    lo = np.minimum(lo.astype(np.float64), 0.0)
    hi = np.maximum(hi.astype(np.float64), 0.0)
    tiny = float(np.finfo(np.float32).tiny)
    qmin = UINT8_MIN if dtype is DType.UINT8 else INT8_MIN
    qmax = UINT8_MAX if dtype is DType.UINT8 else INT8_MAX
    if symmetric:
        if dtype is DType.UINT8:
            raise ValueError("symmetric quantization requires a signed dtype")
        bound = np.maximum(np.abs(lo), np.abs(hi))
        scale = np.where(bound > 0, np.maximum(bound / qmax, tiny), 1.0)
        zero = np.zeros_like(scale, dtype=np.int64)
    else:
        span = hi - lo
        scale = np.where(span > 0, np.maximum(span / (qmax - qmin), tiny),
                         1.0)
        zero = np.round(qmin - lo / scale).astype(np.int64)
        zero = np.clip(zero, qmin, qmax)
    return QuantParams(scale, zero, dtype, channel_axis)


def quantized_conv2d(
    q_data: np.ndarray, data_params: QuantParams,
    q_weight: np.ndarray, weight_params: QuantParams,
    bias: Optional[np.ndarray],
    out_params: QuantParams,
    stride=1, padding=0, groups: int = 1,
    activation: Optional[str] = None,
    activation_alpha: Optional[float] = None,
) -> np.ndarray:
    """INT8 convolution with int32 accumulation and requantization.

    Mirrors how integer NPUs execute quantized convolutions: the inner
    product runs entirely in integers; the float rescale happens once per
    output channel at requantization.
    """
    from . import kernels

    acc = kernels.conv2d(
        (q_data.astype(np.int32) - int(data_params.zero_point.ravel()[0])),
        q_weight.astype(np.int32),
        stride=stride, padding=padding, groups=groups,
    )
    return _requantize(acc, data_params, weight_params, bias, out_params,
                       channel_ndim=4, activation=activation,
                       activation_alpha=activation_alpha)


def quantized_dense(
    q_data: np.ndarray, data_params: QuantParams,
    q_weight: np.ndarray, weight_params: QuantParams,
    bias: Optional[np.ndarray],
    out_params: QuantParams,
    activation: Optional[str] = None,
    activation_alpha: Optional[float] = None,
) -> np.ndarray:
    """INT8 matmul with int32 accumulation and requantization."""
    acc = (q_data.astype(np.int32) - int(data_params.zero_point.ravel()[0])) @ \
        q_weight.astype(np.int32).T
    return _requantize(acc, data_params, weight_params, bias, out_params,
                       channel_ndim=2, activation=activation,
                       activation_alpha=activation_alpha)


def _requantize(acc: np.ndarray, data_params: QuantParams,
                weight_params: QuantParams, bias: Optional[np.ndarray],
                out_params: QuantParams, channel_ndim: int,
                activation: Optional[str] = None,
                activation_alpha: Optional[float] = None) -> np.ndarray:
    """Scale int32 accumulators into the output quantization grid.

    An optional fused activation is applied in the real domain before
    requantization, matching how integer NPUs fold activations into the
    requantization step.
    """
    w_scale = weight_params.scale
    if weight_params.channel_axis is not None:
        shape = [1] * channel_ndim
        shape[1 if channel_ndim == 4 else -1] = -1
        w_scale = w_scale.reshape(shape)
    real = acc * (float(data_params.scale.ravel()[0]) * w_scale)
    if bias is not None:
        if channel_ndim == 4:
            real = real + bias.reshape(1, -1, 1, 1)
        else:
            real = real + bias
    real = real.astype(np.float32)
    if activation:
        from .kernels import resolve_activation

        real = resolve_activation(activation, activation_alpha)(real)
    return out_params.quantize(real)


def quantization_error(real: np.ndarray, params: QuantParams) -> float:
    """RMS round-trip error of quantizing ``real`` with ``params``."""
    round_trip = params.dequantize(params.quantize(real))
    return float(np.sqrt(np.mean((real - round_trip) ** 2)))
