"""Quantized tensor representation and INT8 arithmetic.

Implements the affine quantization scheme used by the toolchain's
post-training quantization pass: ``real = scale * (q - zero_point)``.
Per-tensor and per-channel parameterizations are both supported; the
hardware-aware optimizer benchmarks the accuracy difference between them
(a design-choice ablation called out in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

import numpy as np

from ..ir.tensor import DType

INT8_MIN, INT8_MAX = -128, 127
UINT8_MIN, UINT8_MAX = 0, 255


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters.

    ``scale`` and ``zero_point`` are scalars for per-tensor quantization or
    1-D arrays (indexed by ``channel_axis``) for per-channel quantization.
    """

    scale: np.ndarray
    zero_point: np.ndarray
    dtype: DType = DType.INT8
    channel_axis: Optional[int] = None

    def __post_init__(self) -> None:
        scale = np.atleast_1d(np.asarray(self.scale, dtype=np.float64))
        zero = np.atleast_1d(np.asarray(self.zero_point, dtype=np.int64))
        if np.any(scale <= 0):
            raise ValueError("quantization scale must be positive")
        if scale.shape != zero.shape:
            raise ValueError("scale and zero_point must have matching shapes")
        if self.channel_axis is None and scale.size != 1:
            raise ValueError("per-tensor params must be scalar")
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "zero_point", zero)
        # Broadcast-shaped views are pure functions of the (immutable)
        # params and the operand rank; cache them so the hot quantize/
        # dequantize loop never re-reshapes per call.
        object.__setattr__(self, "_bcache", {})

    @property
    def qmin(self) -> int:
        return UINT8_MIN if self.dtype is DType.UINT8 else INT8_MIN

    @property
    def qmax(self) -> int:
        return UINT8_MAX if self.dtype is DType.UINT8 else INT8_MAX

    def _broadcast(self, values: np.ndarray, ndim: int) -> np.ndarray:
        if self.channel_axis is None:
            return values.reshape(())
        shape = [1] * ndim
        shape[self.channel_axis] = -1
        return values.reshape(shape)

    def broadcast_for(self, ndim: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(scale, zero_point)`` reshaped to broadcast over an
        ``ndim``-rank operand — the plan-build-time form of
        :meth:`_broadcast`."""
        entry = self._bcache.get(ndim)
        if entry is None:
            entry = (self._broadcast(self.scale, ndim),
                     self._broadcast(self.zero_point, ndim))
            self._bcache[ndim] = entry
        return entry

    def quantize(self, real: np.ndarray) -> np.ndarray:
        """Quantize float values to the integer grid (round-to-nearest-even)."""
        scale, zero = self.broadcast_for(real.ndim)
        q = np.round(real / scale) + zero
        return np.clip(q, self.qmin, self.qmax).astype(self.dtype.to_numpy())

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        scale, zero = self.broadcast_for(q.ndim)
        return ((q.astype(np.float64) - zero) * scale).astype(np.float32)


def choose_qparams(
    values: np.ndarray,
    dtype: DType = DType.INT8,
    symmetric: bool = True,
    channel_axis: Optional[int] = None,
) -> QuantParams:
    """Pick scale/zero-point from observed value range.

    Symmetric mode (weights) centres the grid on zero; asymmetric mode
    (activations after ReLU etc.) uses the full [min, max] range.
    """
    if channel_axis is not None:
        axes = tuple(i for i in range(values.ndim) if i != channel_axis)
        lo = values.min(axis=axes)
        hi = values.max(axis=axes)
    else:
        lo = np.array(values.min())
        hi = np.array(values.max())
    # Work in float64 with a positive floor: float32 denormal ranges
    # divided by the grid width would underflow to an invalid zero scale.
    lo = np.minimum(lo.astype(np.float64), 0.0)
    hi = np.maximum(hi.astype(np.float64), 0.0)
    tiny = float(np.finfo(np.float32).tiny)
    qmin = UINT8_MIN if dtype is DType.UINT8 else INT8_MIN
    qmax = UINT8_MAX if dtype is DType.UINT8 else INT8_MAX
    if symmetric:
        if dtype is DType.UINT8:
            raise ValueError("symmetric quantization requires a signed dtype")
        bound = np.maximum(np.abs(lo), np.abs(hi))
        scale = np.where(bound > 0, np.maximum(bound / qmax, tiny), 1.0)
        zero = np.zeros_like(scale, dtype=np.int64)
    else:
        span = hi - lo
        scale = np.where(span > 0, np.maximum(span / (qmax - qmin), tiny),
                         1.0)
        zero = np.round(qmin - lo / scale).astype(np.int64)
        zero = np.clip(zero, qmin, qmax)
    return QuantParams(scale, zero, dtype, channel_axis)


def quantized_conv2d(
    q_data: np.ndarray, data_params: QuantParams,
    q_weight: np.ndarray, weight_params: QuantParams,
    bias: Optional[np.ndarray],
    out_params: QuantParams,
    stride=1, padding=0, groups: int = 1,
    activation: Optional[str] = None,
    activation_alpha: Optional[float] = None,
) -> np.ndarray:
    """INT8 convolution with int32 accumulation and requantization.

    Mirrors how integer NPUs execute quantized convolutions: the inner
    product runs entirely in integers; the float rescale happens once per
    output channel at requantization.
    """
    from . import kernels

    acc = kernels.conv2d(
        (q_data.astype(np.int32) - int(data_params.zero_point.ravel()[0])),
        q_weight.astype(np.int32),
        stride=stride, padding=padding, groups=groups,
    )
    return _requantize(acc, data_params, weight_params, bias, out_params,
                       channel_ndim=4, activation=activation,
                       activation_alpha=activation_alpha)


def quantized_dense(
    q_data: np.ndarray, data_params: QuantParams,
    q_weight: np.ndarray, weight_params: QuantParams,
    bias: Optional[np.ndarray],
    out_params: QuantParams,
    activation: Optional[str] = None,
    activation_alpha: Optional[float] = None,
) -> np.ndarray:
    """INT8 matmul with int32 accumulation and requantization."""
    acc = (q_data.astype(np.int32) - int(data_params.zero_point.ravel()[0])) @ \
        q_weight.astype(np.int32).T
    return _requantize(acc, data_params, weight_params, bias, out_params,
                       channel_ndim=2, activation=activation,
                       activation_alpha=activation_alpha)


class RequantPlan:
    """Requantization with every weight-dependent constant precomputed.

    Folds the combined ``input_scale * weight_scale`` multiplier, the
    broadcast-reshaped bias, and the output grid's broadcast scale/zero
    into plan-build time, so applying the plan to an int32 accumulator
    performs only the arithmetic an integer NPU's requantization unit
    would.  :func:`_requantize` routes through this class, so the hoisted
    path is bitwise-identical to per-call requantization by construction.
    """

    __slots__ = ("multiplier", "bias", "activation", "out_scale", "out_zero",
                 "qmin", "qmax", "out_dtype")

    def __init__(self, multiplier: np.ndarray, bias: Optional[np.ndarray],
                 activation: Optional[Callable[[np.ndarray], np.ndarray]],
                 out_scale: np.ndarray, out_zero: np.ndarray,
                 qmin: int, qmax: int, out_dtype: np.dtype) -> None:
        self.multiplier = multiplier
        self.bias = bias
        self.activation = activation
        self.out_scale = out_scale
        self.out_zero = out_zero
        self.qmin = qmin
        self.qmax = qmax
        self.out_dtype = out_dtype

    def __call__(self, acc: np.ndarray) -> np.ndarray:
        real = acc * self.multiplier
        if self.bias is not None:
            real = real + self.bias
        real = real.astype(np.float32)
        if self.activation is not None:
            real = self.activation(real)
        q = np.round(real / self.out_scale) + self.out_zero
        return np.clip(q, self.qmin, self.qmax).astype(self.out_dtype)


def requant_multiplier(data_params: QuantParams,
                       weight_params: QuantParams,
                       channel_ndim: int,
                       channel_axis: Optional[int] = None) -> np.ndarray:
    """The combined float rescale ``input_scale * weight_scale``, reshaped
    to broadcast over a ``channel_ndim``-rank accumulator.

    ``channel_axis`` names the accumulator's output-channel axis; the
    default keeps the historical convention (axis 1 for NCHW conv
    accumulators, last axis for dense).  The layout pass passes ``-1``
    for NHWC conv accumulators.
    """
    w_scale = weight_params.scale
    if weight_params.channel_axis is not None:
        if channel_axis is None:
            channel_axis = 1 if channel_ndim == 4 else -1
        shape = [1] * channel_ndim
        shape[channel_axis] = -1
        w_scale = w_scale.reshape(shape)
    return float(data_params.scale.ravel()[0]) * w_scale


def build_requant_plan(data_params: QuantParams,
                       weight_params: QuantParams,
                       bias: Optional[np.ndarray],
                       out_params: QuantParams, channel_ndim: int,
                       activation: Optional[str] = None,
                       activation_alpha: Optional[float] = None,
                       channel_axis: Optional[int] = None
                       ) -> RequantPlan:
    """Precompute every constant of the requantization step once.

    The plan consumes int32 accumulators — or exact float64 accumulators
    from the blocked quantized GEMMs: int32 -> float64 conversion is
    exact and the first plan operation multiplies by the float64 combined
    scale either way, so both accumulator dtypes produce bit-identical
    outputs.

    ``channel_axis`` (NHWC: ``-1``) positions the per-channel multiplier
    and bias; NHWC callers must use per-tensor (scalar) output params,
    which broadcast the same in any layout.
    """
    from .kernels import resolve_activation

    if bias is not None and channel_ndim == 4:
        if channel_axis in (None, 1):
            bias = bias.reshape(1, -1, 1, 1)
        else:
            bias = bias.reshape(1, 1, 1, -1)
    out_scale, out_zero = out_params.broadcast_for(channel_ndim)
    return RequantPlan(
        requant_multiplier(data_params, weight_params, channel_ndim,
                           channel_axis=channel_axis),
        bias,
        resolve_activation(activation, activation_alpha) if activation
        else None,
        out_scale, out_zero,
        out_params.qmin, out_params.qmax, out_params.dtype.to_numpy(),
    )


def _requantize(acc: np.ndarray, data_params: QuantParams,
                weight_params: QuantParams, bias: Optional[np.ndarray],
                out_params: QuantParams, channel_ndim: int,
                activation: Optional[str] = None,
                activation_alpha: Optional[float] = None) -> np.ndarray:
    """Scale int32 accumulators into the output quantization grid.

    An optional fused activation is applied in the real domain before
    requantization, matching how integer NPUs fold activations into the
    requantization step.  Builds a throwaway :class:`RequantPlan`; hot
    paths build the plan once and reuse it per call.
    """
    return build_requant_plan(data_params, weight_params, bias, out_params,
                              channel_ndim, activation=activation,
                              activation_alpha=activation_alpha)(acc)


# Widest reduction (in_channels * kh * kw, or in_features) for which the
# zero-point row-sum rewrite provably stays inside int32: every product
# |q| * |w| is bounded by 255 * 128 (uint8 data, int8 weights), so both
# the unshifted accumulator and the correction term stay below
# 32640 * 2^16 = 2,139,095,040 < 2^31 - 1 for reductions up to 2^16.
ZERO_POINT_ROW_TERM_MAX_REDUCE = 1 << 16


def zero_point_row_term(q_weight: np.ndarray, data_params: QuantParams,
                        reduce_axes: Tuple[int, ...]) -> Optional[np.ndarray]:
    """Precompute ``zero_point * sum(W)`` per output channel.

    Rewrites ``(q - z) @ W^T`` as ``q @ W^T - z * rowsum(W)``: integer
    arithmetic is exact, so the rewrite is bitwise-identical as long as
    the int32 accumulator cannot overflow — guarded by the reduction
    width.  Returns ``None`` when the zero point is already 0 (nothing to
    hoist) or when the reduction is too wide for the overflow guard;
    callers then keep the subtract-first form.
    """
    zero = int(data_params.zero_point.ravel()[0])
    if zero == 0:
        return None
    width = int(np.prod([q_weight.shape[axis] for axis in reduce_axes]))
    if width > ZERO_POINT_ROW_TERM_MAX_REDUCE:
        return None
    row_sums = q_weight.astype(np.int64).sum(axis=reduce_axes)
    return (zero * row_sums).astype(np.int32)


def quantization_error(real: np.ndarray, params: QuantParams) -> float:
    """RMS round-trip error of quantizing ``real`` with ``params``."""
    round_trip = params.dequantize(params.quantize(real))
    return float(np.sqrt(np.mean((real - round_trip) ** 2)))
