"""Numpy reference kernels for every IR operator.

These implement the float semantics of the op set.  They favour clarity and
vectorization over micro-optimization: conv2d uses an im2col formulation so
small models execute in milliseconds, which is all the toolchain tests and
the use-case pipelines need (large models are evaluated analytically by the
hardware performance model, not executed).

Every hot kernel additionally accepts scratch buffers so the serving
engine's steady-state path performs no large allocations: ``out=`` receives
a preallocated destination (normally from a plan's
:class:`repro.runtime.arena.ScratchArena`) and ``workspace=`` a
:class:`Workspace` holding reusable intra-kernel scratch (im2col columns,
padded inputs, fp32 accumulators) keyed by shape/dtype.  The scratch
variants are bitwise-identical to the allocating path: both sides run the
same ufunc/BLAS calls in the same order, only the destination differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


class Workspace:
    """Reusable scratch buffers keyed by (tag, shape, dtype).

    A kernel asks for the same scratch shape on every call, so each key
    allocates exactly once and is then recycled for the lifetime of the
    plan instance.  The tag separates buffers a single kernel needs
    simultaneously (columns vs. padded input vs. accumulator).
    """

    __slots__ = ("_buffers", "allocations", "allocated_bytes", "hits")

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}
        self.allocations = 0
        self.allocated_bytes = 0
        self.hits = 0

    def get(self, shape, dtype, tag: str = "") -> np.ndarray:
        key = (tag, tuple(int(d) for d in shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(key[1], dtype=np.dtype(key[2]))
            self._buffers[key] = buf
            self.allocations += 1
            self.allocated_bytes += buf.nbytes
        else:
            self.hits += 1
        return buf

    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


def _pad_into(buffer: np.ndarray, data: np.ndarray, ph: int, pw: int,
              value: float) -> np.ndarray:
    """Fill ``buffer`` with ``data`` surrounded by a constant border."""
    h, w = data.shape[2], data.shape[3]
    buffer[:, :, :ph, :] = value
    buffer[:, :, ph + h:, :] = value
    buffer[:, :, :, :pw] = value
    buffer[:, :, :, pw + w:] = value
    buffer[:, :, ph:ph + h, pw:pw + w] = data
    return buffer


def im2col(data: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int], out: Optional[np.ndarray] = None,
           pad_buffer: Optional[np.ndarray] = None,
           ) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NCHW input into (N, C*kh*kw, oh*ow) patch columns.

    ``out`` may be a preallocated column buffer (its dtype wins: slice
    assignment upcasts fp16 data exactly, which is how the fp16 path
    builds fp32 columns without an intermediate copy).  ``pad_buffer`` is
    a reusable (N, C, H+2ph, W+2pw) scratch for the padded input; padding
    is always zero-filled explicitly so fp16 inputs keep their dtype and
    pad value through ``np.pad``.
    """
    n, c, h, w = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        if pad_buffer is not None:
            data = _pad_into(pad_buffer, data, ph, pw, 0)
        else:
            data = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                          constant_values=0)
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    # Gather all kernel offsets via strided slicing; avoids Python loops over
    # output pixels (the dominant cost for reference conv).
    if out is None:
        cols = np.empty((n, c, kh, kw, oh, ow), dtype=data.dtype)
    else:
        cols = out.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            cols[:, :, i, j] = data[:, :, i:i_end:sh, j:j_end:sw]
    return cols.reshape(n, c * kh * kw, oh * ow), (oh, ow)


def conv2d(data: np.ndarray, weight: np.ndarray, bias=None,
           stride=1, padding=0, groups: int = 1,
           out: Optional[np.ndarray] = None,
           workspace: Optional[Workspace] = None,
           packed_weight: Optional[np.ndarray] = None) -> np.ndarray:
    """2-D convolution, NCHW input, OIHW weight, optional groups.

    With ``out``/``workspace`` the kernel writes its result into the
    caller's buffer and draws all scratch (columns, padded input, fp32
    accumulator for fp16 data) from the workspace instead of the heap.

    ``packed_weight`` is an optional ``(out_c, in_c*kh*kw)`` matrix
    prepacked at plan-build time (already reshaped into im2col layout
    and, for fp16 data, already cast to fp32), so the hot loop skips the
    per-call reshape/cast.  ``weight`` still supplies the kernel shape.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, _, h, w = data.shape
    out_c, in_c, kh, kw = weight.shape
    ph, pw = padding
    oh = (h + 2 * ph - kh) // stride[0] + 1
    ow = (w + 2 * pw - kw) // stride[1] + 1
    if groups == 1:
        # FP16 semantics: half-precision storage, single-precision
        # accumulation (what FP16 tensor units actually do).
        halved = data.dtype == np.float16
        compute_dtype = np.float32 if halved else data.dtype
        cols_buf = pad_buf = None
        if workspace is not None:
            cols_buf = workspace.get((n, in_c * kh * kw, oh * ow),
                                     compute_dtype, "im2col")
            if ph or pw:
                pad_buf = workspace.get((n, in_c, h + 2 * ph, w + 2 * pw),
                                        data.dtype, "pad")
        cols, _ = im2col(data, (kh, kw), stride, padding,
                         out=cols_buf, pad_buffer=pad_buf)
        w2 = weight.reshape(out_c, in_c * kh * kw) \
            if packed_weight is None else packed_weight
        if halved:
            if cols.dtype != np.float32:
                cols = cols.astype(np.float32)
            if w2.dtype == np.float32:
                pass                     # prepacked fp32 copy, nothing to do
            elif workspace is not None:
                w32 = workspace.get(w2.shape, np.float32, "weight")
                np.copyto(w32, w2)
                w2 = w32
            else:
                w2 = w2.astype(np.float32)
        if out is not None and out.dtype == compute_dtype:
            acc = out.reshape(n, out_c, oh * ow)
            np.matmul(w2, cols, out=acc)
            res = out
        elif out is not None:
            if workspace is not None:
                acc_buf = workspace.get((n, out_c, oh * ow), compute_dtype,
                                        "acc")
            else:
                acc_buf = np.empty((n, out_c, oh * ow), dtype=compute_dtype)
            np.matmul(w2, cols, out=acc_buf)
            res = acc_buf.reshape(n, out_c, oh, ow)
        else:
            res = np.matmul(w2, cols).reshape(n, out_c, oh, ow)
    else:
        in_per_group = data.shape[1] // groups
        out_per_group = out_c // groups
        if out is None:
            parts = []
            for g in range(groups):
                d = data[:, g * in_per_group:(g + 1) * in_per_group]
                wg = weight[g * out_per_group:(g + 1) * out_per_group]
                parts.append(conv2d(d, wg, stride=stride, padding=padding,
                                    workspace=workspace))
            res = np.concatenate(parts, axis=1)
        else:
            for g in range(groups):
                d = data[:, g * in_per_group:(g + 1) * in_per_group]
                wg = weight[g * out_per_group:(g + 1) * out_per_group]
                gbuf = None
                if workspace is not None:
                    gbuf = workspace.get((n, out_per_group, oh, ow),
                                         out.dtype, "group_out")
                part = conv2d(d, wg, stride=stride, padding=padding,
                              out=gbuf, workspace=workspace)
                out[:, g * out_per_group:(g + 1) * out_per_group] = part
            res = out
    if bias is not None:
        b4 = bias.reshape(1, -1, 1, 1)
        if out is None:
            res = res + b4
        else:
            np.add(res, b4, out=res)
    if np.issubdtype(data.dtype, np.floating) and res.dtype != data.dtype:
        if out is not None:
            out[...] = res       # cast-copy (fp32 accumulator -> fp16 out)
            res = out
        else:
            res = res.astype(data.dtype, copy=False)
    return res


def dense(data: np.ndarray, weight: np.ndarray, bias=None,
          out: Optional[np.ndarray] = None,
          workspace: Optional[Workspace] = None) -> np.ndarray:
    """Affine map over the last axis: y = x @ W.T + b (weight is (out, in))."""
    halved = data.dtype == np.float16
    if halved:
        if workspace is None:
            a32 = data.astype(np.float32)
        else:
            a32 = workspace.get(data.shape, np.float32, "dense_in")
            np.copyto(a32, data)
        if weight.dtype == np.float32:
            w32 = weight                 # prepacked fp32 copy, reuse as-is
        elif workspace is None:
            w32 = weight.astype(np.float32)
        else:
            w32 = workspace.get(weight.shape, np.float32, "dense_w")
            np.copyto(w32, weight)
        if out is not None:
            acc_shape = data.shape[:-1] + (weight.shape[0],)
            if workspace is not None:
                acc = workspace.get(acc_shape, np.float32, "dense_acc")
            else:
                acc = np.empty(acc_shape, dtype=np.float32)
            np.matmul(a32, w32.T, out=acc)
            res = acc
        else:
            res = a32 @ w32.T
    elif out is not None:
        np.matmul(data, weight.T, out=out)
        res = out
    else:
        res = data @ weight.T
    if bias is not None:
        if out is None:
            res = res + bias
        else:
            np.add(res, bias, out=res)
    if np.issubdtype(data.dtype, np.floating) and res.dtype != data.dtype:
        if out is not None:
            out[...] = res
            res = out
        else:
            res = res.astype(data.dtype, copy=False)
    return res


def batchnorm(data: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
              mean: np.ndarray, var: np.ndarray,
              epsilon: float = 1e-5,
              out: Optional[np.ndarray] = None) -> np.ndarray:
    """Inference-mode batch normalization over the channel axis (axis 1)."""
    shape = [1] * data.ndim
    shape[1] = -1
    scale = (gamma / np.sqrt(var + epsilon)).reshape(shape)
    shift = (beta - mean * gamma / np.sqrt(var + epsilon)).reshape(shape)
    if out is None:
        return data * scale + shift
    np.multiply(data, scale, out=out)
    np.add(out, shift, out=out)
    return out


# -- activations -------------------------------------------------------------

def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0, 6)


def leaky_relu(x: np.ndarray, alpha: float = 0.1) -> np.ndarray:
    return np.where(x >= 0, x, alpha * x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Split positive/negative branches for numerical stability.
    out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def hardsigmoid(x: np.ndarray) -> np.ndarray:
    return np.clip(x / 6.0 + 0.5, 0.0, 1.0)


def hardswish(x: np.ndarray) -> np.ndarray:
    return x * hardsigmoid(x)


def mish(x: np.ndarray) -> np.ndarray:
    # x * tanh(softplus(x)); softplus computed stably.
    sp = np.logaddexp(0.0, x)
    return x * np.tanh(sp)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


ACTIVATIONS = {
    "relu": relu,
    "relu6": relu6,
    "leaky_relu": leaky_relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "hardswish": hardswish,
    "hardsigmoid": hardsigmoid,
    "mish": mish,
    "identity": lambda x: x,
}

# Activations apply_activation_inplace can rewrite in place without
# changing a single output bit relative to the ACTIVATIONS entry.
INPLACE_ACTIVATIONS = frozenset({
    "identity", "relu", "relu6", "tanh", "leaky_relu",
    "hardsigmoid", "hardswish",
})


def resolve_activation(name, alpha=None):
    """Bind an activation name (and optional ``leaky_relu`` slope) once.

    Returns ``None`` for no activation, otherwise a unary callable.  This
    is the single place fused-activation attributes are interpreted, so
    every dispatch site (float, binary, quantized) agrees on the slope
    instead of silently falling back to ``leaky_relu``'s default.
    """
    if name is None:
        return None
    if name == "leaky_relu":
        slope = 0.1 if alpha is None else float(alpha)
        return lambda x: leaky_relu(x, alpha=slope)
    return ACTIVATIONS[name]


def apply_activation_inplace(name, x: np.ndarray,
                             workspace: Optional[Workspace] = None,
                             alpha=None) -> bool:
    """Apply an activation to ``x`` in place; return False if unsupported.

    Every supported rewrite performs exactly the operations of the
    allocating form, so the values written are bitwise-identical — the
    invariant the zoo equivalence suite asserts.  ``leaky_relu`` and
    ``hardswish`` need workspace scratch and report unsupported without it.
    """
    if name not in INPLACE_ACTIVATIONS:
        return False
    if name == "identity":
        return True
    if name == "relu":
        np.maximum(x, 0, out=x)
        return True
    if name == "relu6":
        np.clip(x, 0, 6, out=x)
        return True
    if name == "tanh":
        np.tanh(x, out=x)
        return True
    if name == "hardsigmoid":
        x /= 6.0
        x += 0.5
        np.clip(x, 0.0, 1.0, out=x)
        return True
    if workspace is None:
        return False
    if name == "leaky_relu":
        slope = 0.1 if alpha is None else float(alpha)
        scaled = workspace.get(x.shape, x.dtype, "act_scaled")
        np.multiply(x, slope, out=scaled)
        mask = workspace.get(x.shape, np.bool_, "act_mask")
        np.less(x, 0, out=mask)
        np.copyto(x, scaled, where=mask)
        return True
    # hardswish: x * hardsigmoid(x) with the gate built in scratch.
    gate = workspace.get(x.shape, x.dtype, "act_gate")
    np.copyto(gate, x)
    gate /= 6.0
    gate += 0.5
    np.clip(gate, 0.0, 1.0, out=gate)
    np.multiply(x, gate, out=x)
    return True


# -- pooling ------------------------------------------------------------------

def _pool2d(data: np.ndarray, kernel, stride, padding, reducer,
            pad_value: float, out: Optional[np.ndarray] = None,
            workspace: Optional[Workspace] = None) -> np.ndarray:
    kernel = _pair(kernel)
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        if workspace is not None:
            data = _pad_into(
                workspace.get((n, c, h + 2 * ph, w + 2 * pw), data.dtype,
                              "pool_pad"),
                data, ph, pw, pad_value)
        else:
            data = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                          constant_values=pad_value)
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if workspace is not None:
        windows = workspace.get((n, c, oh, ow, kh * kw), data.dtype,
                                "pool_windows")
    else:
        windows = np.empty((n, c, oh, ow, kh * kw), dtype=data.dtype)
    idx = 0
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            windows[..., idx] = data[:, :, i:i_end:sh, j:j_end:sw]
            idx += 1
    if out is not None:
        return reducer(windows, axis=-1, out=out)
    return reducer(windows, axis=-1)


def maxpool2d(data: np.ndarray, kernel, stride=None, padding=0,
              out: Optional[np.ndarray] = None,
              workspace: Optional[Workspace] = None) -> np.ndarray:
    stride = kernel if stride is None else stride
    return _pool2d(data, kernel, stride, padding, np.max, -np.inf,
                   out=out, workspace=workspace)


def avgpool2d(data: np.ndarray, kernel, stride=None, padding=0,
              out: Optional[np.ndarray] = None,
              workspace: Optional[Workspace] = None) -> np.ndarray:
    """Average pooling with *count-include-pad* semantics.

    Padded positions contribute zeros to the window sum and are counted in
    the divisor (every window divides by ``kh * kw``), matching ONNX
    AveragePool's ``count_include_pad=1`` — not PyTorch's default of
    excluding padding from the divisor.
    """
    stride = kernel if stride is None else stride
    return _pool2d(data, kernel, stride, padding, np.mean, 0.0,
                   out=out, workspace=workspace)


def global_avgpool2d(data: np.ndarray) -> np.ndarray:
    return data.mean(axis=(2, 3), keepdims=True)


def upsample2d(data: np.ndarray, scale: int,
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Nearest-neighbour upsampling by an integer factor."""
    if out is None:
        return data.repeat(scale, axis=2).repeat(scale, axis=3)
    n, c, h, w = data.shape
    view = out.reshape(n, c, h, scale, w, scale)
    view[...] = data[:, :, :, None, :, None]
    return out


def pad(data: np.ndarray, pads,
        out: Optional[np.ndarray] = None) -> np.ndarray:
    if out is None:
        return np.pad(data, [(int(b), int(a)) for b, a in pads])
    out.fill(0)
    interior = tuple(slice(int(b), int(b) + dim)
                     for (b, _), dim in zip(pads, data.shape))
    out[interior] = data
    return out


# -- sharded entry points ------------------------------------------------------
#
# Intra-op parallelism splits one wide kernel call along the *batch/row*
# axis into independent slices computed by different pool workers, each
# writing directly into a disjoint view of the preallocated ``out=``
# buffer.  The split must be bitwise-invisible: conv qualifies because
# numpy's batched matmul issues one identical (M, N, K) GEMM per image
# whether the batch loop covers all images or a slice, and integer GEMMs
# qualify because integer accumulation is exact under any grouping.
# Float *dense* row/column splits do NOT qualify — changing the GEMM's M
# or N flips OpenBLAS micro-kernel selection and the last ulp with it
# (measured; see DESIGN.md) — the same class of prohibition as split-K,
# so float dense is never sharded.


def shard_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` near-equal [lo, hi) slices."""
    parts = max(1, min(int(parts), int(total)))
    edges = [total * i // parts for i in range(parts + 1)]
    return [(edges[i], edges[i + 1]) for i in range(parts)]


def conv2d_rows(data: np.ndarray, weight: np.ndarray, lo: int, hi: int,
                out: np.ndarray, bias=None, stride=1, padding=0,
                groups: int = 1, workspace: Optional[Workspace] = None,
                packed_weight: Optional[np.ndarray] = None) -> np.ndarray:
    """Convolve images ``lo:hi`` of the batch into ``out[lo:hi]``.

    Row-sliced entry point for intra-op batch sharding: the slice runs
    the same per-image GEMM calls the full-batch kernel would, so the
    assembled output is bitwise-identical to one unsharded call.
    """
    return conv2d(data[lo:hi], weight, bias=bias, stride=stride,
                  padding=padding, groups=groups, out=out[lo:hi],
                  workspace=workspace, packed_weight=packed_weight)


def dense_rows(data: np.ndarray, weight: np.ndarray, lo: int, hi: int,
               out: np.ndarray, bias=None,
               workspace: Optional[Workspace] = None) -> np.ndarray:
    """Dense rows ``lo:hi`` into ``out[lo:hi]``.

    Only bitwise-safe for *integer* operands (exact accumulation); float
    callers must keep the whole GEMM in one call (see module comment).
    """
    return dense(data[lo:hi], weight, bias=bias, out=out[lo:hi],
                 workspace=workspace)
