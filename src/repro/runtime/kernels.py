"""Numpy reference kernels for every IR operator.

These implement the float semantics of the op set.  They favour clarity and
vectorization over micro-optimization: conv2d uses an im2col formulation so
small models execute in milliseconds, which is all the toolchain tests and
the use-case pipelines need (large models are evaluated analytically by the
hardware performance model, not executed).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def im2col(data: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int]) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NCHW input into (N, C*kh*kw, oh*ow) patch columns."""
    n, c, h, w = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        data = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    # Gather all kernel offsets via strided slicing; avoids Python loops over
    # output pixels (the dominant cost for reference conv).
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=data.dtype)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            cols[:, :, i, j] = data[:, :, i:i_end:sh, j:j_end:sw]
    return cols.reshape(n, c * kh * kw, oh * ow), (oh, ow)


def conv2d(data: np.ndarray, weight: np.ndarray, bias=None,
           stride=1, padding=0, groups: int = 1) -> np.ndarray:
    """2-D convolution, NCHW input, OIHW weight, optional groups."""
    stride = _pair(stride)
    padding = _pair(padding)
    n = data.shape[0]
    out_c, in_c, kh, kw = weight.shape
    if groups == 1:
        cols, (oh, ow) = im2col(data, (kh, kw), stride, padding)
        w2 = weight.reshape(out_c, in_c * kh * kw)
        if data.dtype == np.float16:
            # FP16 semantics: half-precision storage, single-precision
            # accumulation (what FP16 tensor units actually do).
            cols = cols.astype(np.float32)
            w2 = w2.astype(np.float32)
        out = np.einsum("of,nfp->nop", w2, cols, optimize=True)
        out = out.reshape(n, out_c, oh, ow)
    else:
        in_per_group = data.shape[1] // groups
        out_per_group = out_c // groups
        outputs = []
        for g in range(groups):
            d = data[:, g * in_per_group:(g + 1) * in_per_group]
            w = weight[g * out_per_group:(g + 1) * out_per_group]
            outputs.append(conv2d(d, w, stride=stride, padding=padding))
        out = np.concatenate(outputs, axis=1)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    if np.issubdtype(data.dtype, np.floating):
        out = out.astype(data.dtype, copy=False)
    return out


def dense(data: np.ndarray, weight: np.ndarray, bias=None) -> np.ndarray:
    """Affine map over the last axis: y = x @ W.T + b (weight is (out, in))."""
    if data.dtype == np.float16:
        out = (data.astype(np.float32) @ weight.astype(np.float32).T)
    else:
        out = data @ weight.T
    if bias is not None:
        out = out + bias
    if np.issubdtype(data.dtype, np.floating):
        out = out.astype(data.dtype, copy=False)
    return out


def batchnorm(data: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
              mean: np.ndarray, var: np.ndarray,
              epsilon: float = 1e-5) -> np.ndarray:
    """Inference-mode batch normalization over the channel axis (axis 1)."""
    shape = [1] * data.ndim
    shape[1] = -1
    scale = (gamma / np.sqrt(var + epsilon)).reshape(shape)
    shift = (beta - mean * gamma / np.sqrt(var + epsilon)).reshape(shape)
    return data * scale + shift


# -- activations -------------------------------------------------------------

def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0, 6)


def leaky_relu(x: np.ndarray, alpha: float = 0.1) -> np.ndarray:
    return np.where(x >= 0, x, alpha * x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Split positive/negative branches for numerical stability.
    out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def hardsigmoid(x: np.ndarray) -> np.ndarray:
    return np.clip(x / 6.0 + 0.5, 0.0, 1.0)


def hardswish(x: np.ndarray) -> np.ndarray:
    return x * hardsigmoid(x)


def mish(x: np.ndarray) -> np.ndarray:
    # x * tanh(softplus(x)); softplus computed stably.
    sp = np.logaddexp(0.0, x)
    return x * np.tanh(sp)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


ACTIVATIONS = {
    "relu": relu,
    "relu6": relu6,
    "leaky_relu": leaky_relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "hardswish": hardswish,
    "hardsigmoid": hardsigmoid,
    "mish": mish,
    "identity": lambda x: x,
}


def resolve_activation(name, alpha=None):
    """Bind an activation name (and optional ``leaky_relu`` slope) once.

    Returns ``None`` for no activation, otherwise a unary callable.  This
    is the single place fused-activation attributes are interpreted, so
    every dispatch site (float, binary, quantized) agrees on the slope
    instead of silently falling back to ``leaky_relu``'s default.
    """
    if name is None:
        return None
    if name == "leaky_relu":
        slope = 0.1 if alpha is None else float(alpha)
        return lambda x: leaky_relu(x, alpha=slope)
    return ACTIVATIONS[name]


# -- pooling ------------------------------------------------------------------

def _pool2d(data: np.ndarray, kernel, stride, padding, reducer,
            pad_value: float) -> np.ndarray:
    kernel = _pair(kernel)
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        data = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                      constant_values=pad_value)
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    windows = np.empty((n, c, oh, ow, kh * kw), dtype=data.dtype)
    idx = 0
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            windows[..., idx] = data[:, :, i:i_end:sh, j:j_end:sw]
            idx += 1
    return reducer(windows, axis=-1)


def maxpool2d(data: np.ndarray, kernel, stride=None, padding=0) -> np.ndarray:
    stride = kernel if stride is None else stride
    return _pool2d(data, kernel, stride, padding, np.max, -np.inf)


def avgpool2d(data: np.ndarray, kernel, stride=None, padding=0) -> np.ndarray:
    """Average pooling with *count-include-pad* semantics.

    Padded positions contribute zeros to the window sum and are counted in
    the divisor (every window divides by ``kh * kw``), matching ONNX
    AveragePool's ``count_include_pad=1`` — not PyTorch's default of
    excluding padding from the divisor.
    """
    stride = kernel if stride is None else stride
    return _pool2d(data, kernel, stride, padding, np.mean, 0.0)


def global_avgpool2d(data: np.ndarray) -> np.ndarray:
    return data.mean(axis=(2, 3), keepdims=True)


def upsample2d(data: np.ndarray, scale: int) -> np.ndarray:
    """Nearest-neighbour upsampling by an integer factor."""
    return data.repeat(scale, axis=2).repeat(scale, axis=3)


def pad(data: np.ndarray, pads) -> np.ndarray:
    return np.pad(data, [(int(b), int(a)) for b, a in pads])
