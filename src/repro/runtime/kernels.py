"""Numpy reference kernels for every IR operator.

These implement the float semantics of the op set.  They favour clarity and
vectorization over micro-optimization, with two deliberate fast
formulations on the conv hot path:

* **Implicit-GEMM convolution** (the default, ``REPRO_CONV_MODE=implicit``).
  Pointwise convs (1x1, stride 1, no padding, no groups) feed the GEMM a
  zero-copy ``reshape`` view of the input — no column buffer exists at
  all.  General convs skip the materialized *padded* input: a per-geometry
  column buffer is border-zeroed **once** at creation and every call
  copies only the clipped in-bounds patch rectangles straight out of the
  unpadded input (``_gather_cols``).  Both forms hand the GEMM a buffer
  with bit-identical content and memory layout to the classic
  materialized im2col, so the results are bitwise-identical — the same
  BLAS call sees the same bytes.  ``REPRO_CONV_MODE=im2col`` (or
  :func:`set_conv_mode`) selects the reference path: pad-buffer copy plus
  full strided gather, kept as the equivalence oracle for the property
  tests and benchmarks.
* **Exact blocked integer GEMM** (:func:`qconv2d_acc`,
  :func:`qdense_acc`).  int8 x int8 products are at most ``127 * 128``
  and the guarded reduction width keeps every partial sum far below
  ``2**53``, so a float64 GEMM computes the *exact* integer accumulator
  regardless of summation order — which makes it bitwise-safe to run the
  quantized matmuls through BLAS dgemm (numpy's integer matmul has no
  BLAS path) and to tile them over L2-sized column panels
  (``QGEMM_PANEL_BYTES``).  Reductions wider than
  ``EXACT_GEMM_MAX_REDUCE`` fall back to the int32 reference path, whose
  wrap-on-overflow semantics float64 would not reproduce.

Split-K (splitting the *reduction* axis of a float GEMM) remains
forbidden everywhere: it reassociates floating-point accumulation and is
not bitwise-safe.  The integer paths may tile only because their
arithmetic is exact; the float conv never splits or re-blocks its GEMM —
the implicit path changes how the column buffer is *filled*, never the
GEMM call itself.

Every hot kernel additionally accepts scratch buffers so the serving
engine's steady-state path performs no large allocations: ``out=`` receives
a preallocated destination (normally from a plan's
:class:`repro.runtime.arena.ScratchArena`) and ``workspace=`` a
:class:`Workspace` holding reusable intra-kernel scratch (column buffers,
fp32 accumulators, f64 GEMM panels) keyed by (tag, shape, dtype).  The
scratch variants are bitwise-identical to the allocating path: both sides
run the same ufunc/BLAS calls in the same order, only the destination
differs.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..telemetry import collectors as _telemetry


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


# -- kernel-mode switches ------------------------------------------------------
#
# Both switches exist so the reference formulations stay runnable as the
# equivalence oracle: the property tests and the Txt-P benchmark flip
# them to compare the fast paths against the classic ones bit for bit.

# Widest reduction (C*kh*kw or K) the exact float64 integer GEMM accepts.
# int8 products are <= 127*128 = 16256, so K = 2**16 bounds every partial
# sum below 2**30.6 * ... well below 2**53 — the dgemm result is the exact
# integer.  Beyond this the int32 reference path runs instead: its
# wrap-on-overflow semantics are part of the observable behaviour and
# float64 would not reproduce them.  Matches
# quantized.ZERO_POINT_ROW_TERM_MAX_REDUCE.
EXACT_GEMM_MAX_REDUCE = 1 << 16

# Target panel size (bytes of f64 accumulator columns) for the
# cache-blocked quantized GEMMs.  512 KiB keeps one panel of columns plus
# the weight pack stripe resident in a typical 1 MiB L2.
QGEMM_PANEL_BYTES = 1 << 19

_CONV_MODES = ("implicit", "im2col")

_conv_mode = os.environ.get("REPRO_CONV_MODE", "implicit")
if _conv_mode not in _CONV_MODES:
    _conv_mode = "implicit"

_exact_qgemm = os.environ.get("REPRO_EXACT_QGEMM", "1") != "0"


def conv_mode() -> str:
    """Current float-conv formulation: ``"implicit"`` or ``"im2col"``."""
    return _conv_mode


def set_conv_mode(mode: str) -> str:
    """Select the conv formulation; returns the previous mode."""
    global _conv_mode
    if mode not in _CONV_MODES:
        raise ValueError(f"unknown conv mode: {mode!r} (expected one of "
                         f"{_CONV_MODES})")
    previous = _conv_mode
    _conv_mode = mode
    return previous


def exact_qgemm_enabled() -> bool:
    """Whether prepacking may emit float64 exact-GEMM quantized packs."""
    return _exact_qgemm


def set_exact_qgemm(enabled: bool) -> bool:
    """Enable/disable exact-GEMM quantized packs; returns previous value."""
    global _exact_qgemm
    previous = _exact_qgemm
    _exact_qgemm = bool(enabled)
    return previous


class Workspace:
    """Reusable scratch buffers keyed by (tag, shape, dtype).

    A kernel asks for the same scratch shape on every call, so each key
    allocates exactly once and is then recycled for the lifetime of the
    plan instance.  The tag separates buffers a single kernel needs
    simultaneously (columns vs. padded input vs. accumulator); the
    implicit-GEMM conv additionally encodes the conv *geometry* in its
    tag, because its border-zeroed column buffers are initialized once
    and may only be shared by calls that never write the border.

    Because the full key is (tag, shape, dtype), two kernels that reuse
    a tag with different shapes or dtypes always receive **different**
    buffers — handing back a mismatched buffer would corrupt results,
    which the workspace regression tests guard.

    ``init`` (optional) runs exactly once, when the buffer is created —
    the hook the border-zeroed column buffers use to write their zeros
    outside the per-call hot path.

    ``peak_bytes`` is the high-water mark of resident scratch across the
    workspace's lifetime (it survives :meth:`clear`), surfaced by the
    telemetry collectors and the kernel-speed benchmark.
    """

    __slots__ = ("_buffers", "allocations", "allocated_bytes", "hits",
                 "peak_bytes", "__weakref__")

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}
        self.allocations = 0
        self.allocated_bytes = 0
        self.hits = 0
        self.peak_bytes = 0
        # Scrape-time telemetry: registered through a weak reference,
        # the hot get() path pays nothing.
        _telemetry.track_workspace(self)

    def get(self, shape, dtype, tag: str = "",
            init: Optional[Callable[[np.ndarray], None]] = None
            ) -> np.ndarray:
        key = (tag, tuple(int(d) for d in shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(key[1], dtype=np.dtype(key[2]))
            if init is not None:
                init(buf)
            self._buffers[key] = buf
            self.allocations += 1
            self.allocated_bytes += buf.nbytes
            self.peak_bytes = max(self.peak_bytes, self.nbytes())
        else:
            self.hits += 1
        return buf

    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


def _pad_into(buffer: np.ndarray, data: np.ndarray, ph: int, pw: int,
              value: float) -> np.ndarray:
    """Fill ``buffer`` with ``data`` surrounded by a constant border."""
    h, w = data.shape[2], data.shape[3]
    buffer[:, :, :ph, :] = value
    buffer[:, :, ph + h:, :] = value
    buffer[:, :, :, :pw] = value
    buffer[:, :, :, pw + w:] = value
    buffer[:, :, ph:ph + h, pw:pw + w] = data
    return buffer


def im2col(data: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int], out: Optional[np.ndarray] = None,
           pad_buffer: Optional[np.ndarray] = None,
           ) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NCHW input into (N, C*kh*kw, oh*ow) patch columns.

    ``out`` may be a preallocated column buffer (its dtype wins: slice
    assignment upcasts fp16 data exactly, which is how the fp16 path
    builds fp32 columns without an intermediate copy).  ``pad_buffer`` is
    a reusable (N, C, H+2ph, W+2pw) scratch for the padded input; padding
    is always zero-filled explicitly so fp16 inputs keep their dtype and
    pad value through ``np.pad``.
    """
    n, c, h, w = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        if pad_buffer is not None:
            data = _pad_into(pad_buffer, data, ph, pw, 0)
        else:
            data = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                          constant_values=0)
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    # Gather all kernel offsets via strided slicing; avoids Python loops over
    # output pixels (the dominant cost for reference conv).
    if out is None:
        cols = np.empty((n, c, kh, kw, oh, ow), dtype=data.dtype)
    else:
        cols = out.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            cols[:, :, i, j] = data[:, :, i:i_end:sh, j:j_end:sw]
    return cols.reshape(n, c * kh * kw, oh * ow), (oh, ow)


def _gather_cols(data: np.ndarray, cols6: np.ndarray, kernel, stride,
                 padding, row_offset: int = 0) -> None:
    """Fill patch columns straight from the *unpadded* input.

    ``cols6`` is an (N, C, kh, kw, rows, ow) view of a column buffer whose
    border entries (positions where the receptive field falls into the
    padding) are already zero.  For each kernel offset (i, j) only the
    rectangle of output positions whose source pixel lies inside the
    input is copied — the strided copies touch exactly the same elements
    the pad-then-gather im2col writes there, so the buffer content is
    bit-identical without ever materializing the padded input.

    ``row_offset`` names the first output row covered by ``cols6`` so the
    cache-blocked quantized path can gather one output-row panel at a
    time.
    """
    n, c, h, w = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    rows, ow = cols6.shape[4], cols6.shape[5]
    for i in range(kh):
        # Output rows oy with 0 <= oy*sh + i - ph <= h-1, clipped to the
        # panel [row_offset, row_offset + rows).
        oy_lo = max(row_offset, -((i - ph) // sh))
        oy_hi = min(row_offset + rows, (h - 1 - i + ph) // sh + 1)
        if oy_hi <= oy_lo:
            continue
        y0 = oy_lo * sh + i - ph
        ycnt = oy_hi - oy_lo
        for j in range(kw):
            ox_lo = max(0, -((j - pw) // sw))
            ox_hi = min(ow, (w - 1 - j + pw) // sw + 1)
            if ox_hi <= ox_lo:
                continue
            x0 = ox_lo * sw + j - pw
            xcnt = ox_hi - ox_lo
            cols6[:, :, i, j,
                  oy_lo - row_offset:oy_hi - row_offset,
                  ox_lo:ox_hi] = \
                data[:, :,
                     y0:y0 + (ycnt - 1) * sh + 1:sh,
                     x0:x0 + (xcnt - 1) * sw + 1:sw]


def _implicit_cols(data: np.ndarray, kernel, stride, padding,
                   oh: int, ow: int, compute_dtype,
                   workspace: Optional[Workspace]) -> np.ndarray:
    """Column buffer for implicit-GEMM conv, (N, C*kh*kw, oh*ow).

    Skips the padded-input materialization entirely: the buffer's border
    is zeroed once (at workspace-buffer creation, or per call when
    allocating) and :func:`_gather_cols` copies only in-bounds patch
    rectangles.  The result has bit-identical content and layout to the
    classic :func:`im2col` output, so the downstream GEMM is unchanged.

    The workspace tag encodes the conv geometry: a border-zeroed buffer
    is only valid for calls that never write its border cells, so buffers
    from different geometries must never alias even at equal shape.
    """
    n, c, h, w = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    shape = (n, c * kh * kw, oh * ow)
    padded = bool(ph or pw)
    if workspace is not None:
        tag = f"cols:{h}x{w}:k{kh}x{kw}:s{sh}x{sw}:p{ph}x{pw}"
        init = (lambda buf: buf.fill(0)) if padded else None
        cols = workspace.get(shape, compute_dtype, tag, init=init)
    elif padded:
        cols = np.zeros(shape, dtype=compute_dtype)
    else:
        cols = np.empty(shape, dtype=compute_dtype)
    _gather_cols(data, cols.reshape(n, c, kh, kw, oh, ow),
                 kernel, stride, padding)
    return cols


def conv2d(data: np.ndarray, weight: np.ndarray, bias=None,
           stride=1, padding=0, groups: int = 1,
           out: Optional[np.ndarray] = None,
           workspace: Optional[Workspace] = None,
           packed_weight: Optional[np.ndarray] = None) -> np.ndarray:
    """2-D convolution, NCHW input, OIHW weight, optional groups.

    With ``out``/``workspace`` the kernel writes its result into the
    caller's buffer and draws all scratch (columns, padded input, fp32
    accumulator for fp16 data) from the workspace instead of the heap.

    ``packed_weight`` is an optional ``(out_c, in_c*kh*kw)`` matrix
    prepacked at plan-build time (already reshaped into im2col layout
    and, for fp16 data, already cast to fp32), so the hot loop skips the
    per-call reshape/cast.  ``weight`` still supplies the kernel shape.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, _, h, w = data.shape
    out_c, in_c, kh, kw = weight.shape
    ph, pw = padding
    oh = (h + 2 * ph - kh) // stride[0] + 1
    ow = (w + 2 * pw - kw) // stride[1] + 1
    if groups == 1:
        # FP16 semantics: half-precision storage, single-precision
        # accumulation (what FP16 tensor units actually do).
        halved = data.dtype == np.float16
        compute_dtype = np.float32 if halved else data.dtype
        pointwise = (kh == 1 and kw == 1 and stride == (1, 1)
                     and not (ph or pw))
        if _conv_mode == "implicit" and pointwise:
            # A 1x1/stride-1 conv is exactly a GEMM over the flattened
            # spatial axis: the reshape view already has the content and
            # layout its im2col would build, so no column buffer exists.
            if not halved:
                cols = data.reshape(n, in_c, h * w)
            elif workspace is not None:
                cols = workspace.get((n, in_c, h * w), np.float32, "im2col")
                np.copyto(cols, data.reshape(n, in_c, h * w))
            else:
                cols = data.reshape(n, in_c, h * w).astype(np.float32)
        elif _conv_mode == "implicit":
            cols = _implicit_cols(data, (kh, kw), stride, padding, oh, ow,
                                  compute_dtype, workspace)
        else:
            cols_buf = pad_buf = None
            if workspace is not None:
                cols_buf = workspace.get((n, in_c * kh * kw, oh * ow),
                                         compute_dtype, "im2col")
                if ph or pw:
                    pad_buf = workspace.get((n, in_c, h + 2 * ph, w + 2 * pw),
                                            data.dtype, "pad")
            cols, _ = im2col(data, (kh, kw), stride, padding,
                             out=cols_buf, pad_buffer=pad_buf)
        w2 = weight.reshape(out_c, in_c * kh * kw) \
            if packed_weight is None else packed_weight
        if halved:
            if cols.dtype != np.float32:
                cols = cols.astype(np.float32)
            if w2.dtype == np.float32:
                pass                     # prepacked fp32 copy, nothing to do
            elif workspace is not None:
                w32 = workspace.get(w2.shape, np.float32, "weight")
                np.copyto(w32, w2)
                w2 = w32
            else:
                w2 = w2.astype(np.float32)
        if out is not None and out.dtype == compute_dtype:
            acc = out.reshape(n, out_c, oh * ow)
            np.matmul(w2, cols, out=acc)
            res = out
        elif out is not None:
            if workspace is not None:
                acc_buf = workspace.get((n, out_c, oh * ow), compute_dtype,
                                        "acc")
            else:
                acc_buf = np.empty((n, out_c, oh * ow), dtype=compute_dtype)
            np.matmul(w2, cols, out=acc_buf)
            res = acc_buf.reshape(n, out_c, oh, ow)
        else:
            res = np.matmul(w2, cols).reshape(n, out_c, oh, ow)
    else:
        in_per_group = data.shape[1] // groups
        out_per_group = out_c // groups
        if out is None:
            parts = []
            for g in range(groups):
                d = data[:, g * in_per_group:(g + 1) * in_per_group]
                wg = weight[g * out_per_group:(g + 1) * out_per_group]
                parts.append(conv2d(d, wg, stride=stride, padding=padding,
                                    workspace=workspace))
            res = np.concatenate(parts, axis=1)
        else:
            for g in range(groups):
                d = data[:, g * in_per_group:(g + 1) * in_per_group]
                wg = weight[g * out_per_group:(g + 1) * out_per_group]
                gbuf = None
                if workspace is not None:
                    gbuf = workspace.get((n, out_per_group, oh, ow),
                                         out.dtype, "group_out")
                part = conv2d(d, wg, stride=stride, padding=padding,
                              out=gbuf, workspace=workspace)
                out[:, g * out_per_group:(g + 1) * out_per_group] = part
            res = out
    if bias is not None:
        b4 = bias.reshape(1, -1, 1, 1)
        if out is None:
            res = res + b4
        else:
            np.add(res, b4, out=res)
    if np.issubdtype(data.dtype, np.floating) and res.dtype != data.dtype:
        if out is not None:
            out[...] = res       # cast-copy (fp32 accumulator -> fp16 out)
            res = out
        else:
            res = res.astype(data.dtype, copy=False)
    return res


def dense(data: np.ndarray, weight: np.ndarray, bias=None,
          out: Optional[np.ndarray] = None,
          workspace: Optional[Workspace] = None) -> np.ndarray:
    """Affine map over the last axis: y = x @ W.T + b (weight is (out, in))."""
    halved = data.dtype == np.float16
    if halved:
        if workspace is None:
            a32 = data.astype(np.float32)
        else:
            a32 = workspace.get(data.shape, np.float32, "dense_in")
            np.copyto(a32, data)
        if weight.dtype == np.float32:
            w32 = weight                 # prepacked fp32 copy, reuse as-is
        elif workspace is None:
            w32 = weight.astype(np.float32)
        else:
            w32 = workspace.get(weight.shape, np.float32, "dense_w")
            np.copyto(w32, weight)
        if out is not None:
            acc_shape = data.shape[:-1] + (weight.shape[0],)
            if workspace is not None:
                acc = workspace.get(acc_shape, np.float32, "dense_acc")
            else:
                acc = np.empty(acc_shape, dtype=np.float32)
            np.matmul(a32, w32.T, out=acc)
            res = acc
        else:
            res = a32 @ w32.T
    elif out is not None:
        np.matmul(data, weight.T, out=out)
        res = out
    else:
        res = data @ weight.T
    if bias is not None:
        if out is None:
            res = res + bias
        else:
            np.add(res, bias, out=res)
    if np.issubdtype(data.dtype, np.floating) and res.dtype != data.dtype:
        if out is not None:
            out[...] = res
            res = out
        else:
            res = res.astype(data.dtype, copy=False)
    return res


# -- exact blocked quantized GEMM ---------------------------------------------
#
# The quantized matmuls accumulate integers, and integer accumulation is
# exact under any grouping — so unlike the float GEMMs these may be
# tiled into cache-sized panels and still produce bit-identical int32
# accumulators.  Running them as float64 BLAS GEMMs is what makes them
# fast: numpy's integer matmul has no BLAS path.  Exactness holds
# because every product is an integer of magnitude <= 255 * 128 and the
# reduction width is capped at EXACT_GEMM_MAX_REDUCE, keeping all
# partial sums far below 2**53.


def qconv2d_acc(q_data: np.ndarray, w2_f64: np.ndarray, kernel, stride,
                padding, input_zero: int = 0,
                workspace: Optional[Workspace] = None) -> np.ndarray:
    """Exact conv accumulator (N, out_c, oh, ow) float64 via blocked dgemm.

    ``q_data`` is the raw int8/uint8 NCHW activation; ``w2_f64`` the
    prepacked (out_c, C*kh*kw) float64 weight matrix (integer-valued).
    With ``input_zero`` the zero point is subtracted *before* the gather,
    so zero padding enters the columns as shifted-domain zeros — exactly
    the reference path's subtract-then-pad semantics.  With
    ``input_zero=0`` the raw codes are gathered directly (the caller
    corrects via the hoisted zero-point row term).

    The accumulation is tiled over output-row panels of roughly
    ``QGEMM_PANEL_BYTES`` of columns; every panel GEMM computes exact
    integers, so the blocking is bitwise-invisible.
    """
    kernel = _pair(kernel)
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = q_data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    out_c = w2_f64.shape[0]
    k = c * kh * kw
    padded = bool(ph or pw)
    if input_zero:
        if workspace is not None:
            src = workspace.get(q_data.shape, np.float64, "qshift")
        else:
            src = np.empty(q_data.shape, dtype=np.float64)
        np.subtract(q_data, float(input_zero), out=src, dtype=np.float64)
    else:
        src = q_data
    if workspace is not None:
        acc = workspace.get((n, out_c, oh, ow), np.float64, "qacc")
    else:
        acc = np.empty((n, out_c, oh, ow), dtype=np.float64)
    acc3 = acc.reshape(n, out_c, oh * ow)
    panel_rows = max(1, min(oh, QGEMM_PANEL_BYTES // max(1, k * ow * 8)))
    if panel_rows >= oh:
        cols = _implicit_cols(src, kernel, stride, padding, oh, ow,
                              np.float64, workspace)
        np.matmul(w2_f64, cols, out=acc3)
        return acc
    for r0 in range(0, oh, panel_rows):
        rows = min(panel_rows, oh - r0)
        m = rows * ow
        if workspace is not None:
            cbuf = workspace.get((n, c, kh, kw, rows, ow), np.float64,
                                 "qcols")
            pbuf = workspace.get((n, out_c, m), np.float64, "qpanel")
        else:
            cbuf = np.empty((n, c, kh, kw, rows, ow), dtype=np.float64)
            pbuf = np.empty((n, out_c, m), dtype=np.float64)
        if padded:
            cbuf.fill(0)
        _gather_cols(src, cbuf, kernel, stride, padding, row_offset=r0)
        np.matmul(w2_f64, cbuf.reshape(n, k, m), out=pbuf)
        acc3[:, :, r0 * ow:r0 * ow + m] = pbuf
    return acc


def qdense_acc(q_data: np.ndarray, wt_f64: np.ndarray, input_zero: int = 0,
               workspace: Optional[Workspace] = None) -> np.ndarray:
    """Exact dense accumulator (..., out) float64: (q - z) @ wt_f64.

    ``wt_f64`` is the prepacked (in, out) float64 transposed weight.  The
    GEMM is tiled over output-column panels; integer-exact, so blocking
    never changes a bit of the accumulator.
    """
    in_dim = q_data.shape[-1]
    out_dim = wt_f64.shape[1]
    if workspace is not None:
        a = workspace.get(q_data.shape, np.float64, "qdense_in")
    else:
        a = np.empty(q_data.shape, dtype=np.float64)
    np.subtract(q_data, float(input_zero), out=a, dtype=np.float64)
    acc_shape = q_data.shape[:-1] + (out_dim,)
    if workspace is not None:
        acc = workspace.get(acc_shape, np.float64, "qdense_acc")
    else:
        acc = np.empty(acc_shape, dtype=np.float64)
    m = 1
    for dim in q_data.shape[:-1]:
        m *= int(dim)
    a2 = a.reshape(m, in_dim)
    acc2 = acc.reshape(m, out_dim)
    panel_cols = max(1, min(out_dim, QGEMM_PANEL_BYTES // max(1, m * 8)))
    if panel_cols >= out_dim:
        np.matmul(a2, wt_f64, out=acc2)
        return acc
    for c0 in range(0, out_dim, panel_cols):
        c1 = min(out_dim, c0 + panel_cols)
        np.matmul(a2, wt_f64[:, c0:c1], out=acc2[:, c0:c1])
    return acc


def _gather_cols_nhwc(data: np.ndarray, cols6: np.ndarray, kernel, stride,
                      padding, row_offset: int = 0) -> None:
    """NHWC twin of :func:`_gather_cols`.

    ``cols6`` is (N, rows, ow, kh, kw, C): patch columns laid out so the
    flattened reduction axis is (i*kw + j)*C + ci — the order the NHWC
    weight pack uses.
    """
    n, h, w, c = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    rows, ow = cols6.shape[1], cols6.shape[2]
    for i in range(kh):
        oy_lo = max(row_offset, -((i - ph) // sh))
        oy_hi = min(row_offset + rows, (h - 1 - i + ph) // sh + 1)
        if oy_hi <= oy_lo:
            continue
        y0 = oy_lo * sh + i - ph
        ycnt = oy_hi - oy_lo
        for j in range(kw):
            ox_lo = max(0, -((j - pw) // sw))
            ox_hi = min(ow, (w - 1 - j + pw) // sw + 1)
            if ox_hi <= ox_lo:
                continue
            x0 = ox_lo * sw + j - pw
            xcnt = ox_hi - ox_lo
            cols6[:, oy_lo - row_offset:oy_hi - row_offset, ox_lo:ox_hi,
                  i, j, :] = \
                data[:,
                     y0:y0 + (ycnt - 1) * sh + 1:sh,
                     x0:x0 + (xcnt - 1) * sw + 1:sw, :]


def qconv2d_acc_nhwc(q_data: np.ndarray, w_f64: np.ndarray, kernel, stride,
                     padding, input_zero: int = 0,
                     workspace: Optional[Workspace] = None) -> np.ndarray:
    """Exact NHWC conv accumulator (N, oh, ow, out_c) float64.

    ``q_data`` is NHWC int8/uint8; ``w_f64`` the (kh*kw*C, out_c) float64
    weight pack whose rows follow the NHWC gather order.  Same zero-point
    and panel-blocking contract as :func:`qconv2d_acc`.
    """
    kernel = _pair(kernel)
    stride = _pair(stride)
    padding = _pair(padding)
    n, h, w, c = q_data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    out_c = w_f64.shape[1]
    k = kh * kw * c
    padded = bool(ph or pw)
    if input_zero:
        if workspace is not None:
            src = workspace.get(q_data.shape, np.float64, "qshift_nhwc")
        else:
            src = np.empty(q_data.shape, dtype=np.float64)
        np.subtract(q_data, float(input_zero), out=src, dtype=np.float64)
    else:
        src = q_data
    if workspace is not None:
        acc = workspace.get((n, oh, ow, out_c), np.float64, "qacc_nhwc")
    else:
        acc = np.empty((n, oh, ow, out_c), dtype=np.float64)
    panel_rows = max(1, min(oh, QGEMM_PANEL_BYTES // max(1, k * ow * 8)))
    if panel_rows >= oh:
        shape6 = (n, oh, ow, kh, kw, c)
        if workspace is not None:
            tag = f"qcols_nhwc:{h}x{w}:k{kh}x{kw}:s{sh}x{sw}:p{ph}x{pw}"
            init = (lambda buf: buf.fill(0)) if padded else None
            cols = workspace.get(shape6, np.float64, tag, init=init)
        elif padded:
            cols = np.zeros(shape6, dtype=np.float64)
        else:
            cols = np.empty(shape6, dtype=np.float64)
        _gather_cols_nhwc(src, cols, kernel, stride, padding)
        np.matmul(cols.reshape(n, oh * ow, k), w_f64,
                  out=acc.reshape(n, oh * ow, out_c))
        return acc
    for r0 in range(0, oh, panel_rows):
        rows = min(panel_rows, oh - r0)
        m = rows * ow
        if workspace is not None:
            cbuf = workspace.get((n, rows, ow, kh, kw, c), np.float64,
                                 "qcols_nhwc_panel")
            pbuf = workspace.get((n, m, out_c), np.float64, "qpanel_nhwc")
        else:
            cbuf = np.empty((n, rows, ow, kh, kw, c), dtype=np.float64)
            pbuf = np.empty((n, m, out_c), dtype=np.float64)
        if padded:
            cbuf.fill(0)
        _gather_cols_nhwc(src, cbuf, kernel, stride, padding, row_offset=r0)
        np.matmul(cbuf.reshape(n, m, k), w_f64, out=pbuf)
        acc[:, r0:r0 + rows] = pbuf.reshape(n, rows, ow, out_c)
    return acc


def batchnorm(data: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
              mean: np.ndarray, var: np.ndarray,
              epsilon: float = 1e-5,
              out: Optional[np.ndarray] = None) -> np.ndarray:
    """Inference-mode batch normalization over the channel axis (axis 1)."""
    shape = [1] * data.ndim
    shape[1] = -1
    scale = (gamma / np.sqrt(var + epsilon)).reshape(shape)
    shift = (beta - mean * gamma / np.sqrt(var + epsilon)).reshape(shape)
    if out is None:
        return data * scale + shift
    np.multiply(data, scale, out=out)
    np.add(out, shift, out=out)
    return out


# -- activations -------------------------------------------------------------

def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0, 6)


def leaky_relu(x: np.ndarray, alpha: float = 0.1) -> np.ndarray:
    return np.where(x >= 0, x, alpha * x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Split positive/negative branches for numerical stability.
    out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def hardsigmoid(x: np.ndarray) -> np.ndarray:
    return np.clip(x / 6.0 + 0.5, 0.0, 1.0)


def hardswish(x: np.ndarray) -> np.ndarray:
    return x * hardsigmoid(x)


def mish(x: np.ndarray) -> np.ndarray:
    # x * tanh(softplus(x)); softplus computed stably.
    sp = np.logaddexp(0.0, x)
    return x * np.tanh(sp)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


ACTIVATIONS = {
    "relu": relu,
    "relu6": relu6,
    "leaky_relu": leaky_relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "hardswish": hardswish,
    "hardsigmoid": hardsigmoid,
    "mish": mish,
    "identity": lambda x: x,
}

# Activations apply_activation_inplace can rewrite in place without
# changing a single output bit relative to the ACTIVATIONS entry.
INPLACE_ACTIVATIONS = frozenset({
    "identity", "relu", "relu6", "tanh", "leaky_relu",
    "hardsigmoid", "hardswish",
})


def resolve_activation(name, alpha=None):
    """Bind an activation name (and optional ``leaky_relu`` slope) once.

    Returns ``None`` for no activation, otherwise a unary callable.  This
    is the single place fused-activation attributes are interpreted, so
    every dispatch site (float, binary, quantized) agrees on the slope
    instead of silently falling back to ``leaky_relu``'s default.
    """
    if name is None:
        return None
    if name == "leaky_relu":
        slope = 0.1 if alpha is None else float(alpha)
        return lambda x: leaky_relu(x, alpha=slope)
    return ACTIVATIONS[name]


def apply_activation_inplace(name, x: np.ndarray,
                             workspace: Optional[Workspace] = None,
                             alpha=None) -> bool:
    """Apply an activation to ``x`` in place; return False if unsupported.

    Every supported rewrite performs exactly the operations of the
    allocating form, so the values written are bitwise-identical — the
    invariant the zoo equivalence suite asserts.  ``leaky_relu`` and
    ``hardswish`` need workspace scratch and report unsupported without it.
    """
    if name not in INPLACE_ACTIVATIONS:
        return False
    if name == "identity":
        return True
    if name == "relu":
        np.maximum(x, 0, out=x)
        return True
    if name == "relu6":
        np.clip(x, 0, 6, out=x)
        return True
    if name == "tanh":
        np.tanh(x, out=x)
        return True
    if name == "hardsigmoid":
        x /= 6.0
        x += 0.5
        np.clip(x, 0.0, 1.0, out=x)
        return True
    if workspace is None:
        return False
    if name == "leaky_relu":
        slope = 0.1 if alpha is None else float(alpha)
        scaled = workspace.get(x.shape, x.dtype, "act_scaled")
        np.multiply(x, slope, out=scaled)
        mask = workspace.get(x.shape, np.bool_, "act_mask")
        np.less(x, 0, out=mask)
        np.copyto(x, scaled, where=mask)
        return True
    # hardswish: x * hardsigmoid(x) with the gate built in scratch.
    gate = workspace.get(x.shape, x.dtype, "act_gate")
    np.copyto(gate, x)
    gate /= 6.0
    gate += 0.5
    np.clip(gate, 0.0, 1.0, out=gate)
    np.multiply(x, gate, out=x)
    return True


# -- pooling ------------------------------------------------------------------

def _pool2d(data: np.ndarray, kernel, stride, padding, reducer,
            pad_value: float, out: Optional[np.ndarray] = None,
            workspace: Optional[Workspace] = None) -> np.ndarray:
    kernel = _pair(kernel)
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        if workspace is not None:
            data = _pad_into(
                workspace.get((n, c, h + 2 * ph, w + 2 * pw), data.dtype,
                              "pool_pad"),
                data, ph, pw, pad_value)
        else:
            data = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                          constant_values=pad_value)
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if workspace is not None:
        windows = workspace.get((n, c, oh, ow, kh * kw), data.dtype,
                                "pool_windows")
    else:
        windows = np.empty((n, c, oh, ow, kh * kw), dtype=data.dtype)
    idx = 0
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            windows[..., idx] = data[:, :, i:i_end:sh, j:j_end:sw]
            idx += 1
    if out is not None:
        return reducer(windows, axis=-1, out=out)
    return reducer(windows, axis=-1)


def maxpool2d(data: np.ndarray, kernel, stride=None, padding=0,
              out: Optional[np.ndarray] = None,
              workspace: Optional[Workspace] = None) -> np.ndarray:
    stride = kernel if stride is None else stride
    return _pool2d(data, kernel, stride, padding, np.max, -np.inf,
                   out=out, workspace=workspace)


def avgpool2d(data: np.ndarray, kernel, stride=None, padding=0,
              out: Optional[np.ndarray] = None,
              workspace: Optional[Workspace] = None) -> np.ndarray:
    """Average pooling with *count-include-pad* semantics.

    Padded positions contribute zeros to the window sum and are counted in
    the divisor (every window divides by ``kh * kw``), matching ONNX
    AveragePool's ``count_include_pad=1`` — not PyTorch's default of
    excluding padding from the divisor.
    """
    stride = kernel if stride is None else stride
    return _pool2d(data, kernel, stride, padding, np.mean, 0.0,
                   out=out, workspace=workspace)


def _pad_into_nhwc(buffer: np.ndarray, data: np.ndarray, ph: int, pw: int,
                   value: float) -> np.ndarray:
    h, w = data.shape[1], data.shape[2]
    buffer[:, :ph, :, :] = value
    buffer[:, ph + h:, :, :] = value
    buffer[:, :, :pw, :] = value
    buffer[:, :, pw + w:, :] = value
    buffer[:, ph:ph + h, pw:pw + w, :] = data
    return buffer


def _pool2d_nhwc(data: np.ndarray, kernel, stride, padding, reducer,
                 pad_value: float, out: Optional[np.ndarray] = None,
                 workspace: Optional[Workspace] = None) -> np.ndarray:
    """NHWC twin of :func:`_pool2d`.

    The window gather visits kernel offsets in the same ``i*kw + j``
    order and reduces a last axis of the same length ``kh*kw``, so for
    every output element numpy performs the identical reduction over the
    identical value sequence — the result is the NCHW pool's output bits,
    merely transposed.
    """
    kernel = _pair(kernel)
    stride = _pair(stride)
    padding = _pair(padding)
    n, h, w, c = data.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        if workspace is not None:
            data = _pad_into_nhwc(
                workspace.get((n, h + 2 * ph, w + 2 * pw, c), data.dtype,
                              "pool_pad_nhwc"),
                data, ph, pw, pad_value)
        else:
            data = np.pad(data, ((0, 0), (ph, ph), (pw, pw), (0, 0)),
                          constant_values=pad_value)
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if workspace is not None:
        windows = workspace.get((n, oh, ow, c, kh * kw), data.dtype,
                                "pool_windows_nhwc")
    else:
        windows = np.empty((n, oh, ow, c, kh * kw), dtype=data.dtype)
    idx = 0
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            windows[..., idx] = data[:, i:i_end:sh, j:j_end:sw, :]
            idx += 1
    if out is not None:
        return reducer(windows, axis=-1, out=out)
    return reducer(windows, axis=-1)


def maxpool2d_nhwc(data: np.ndarray, kernel, stride=None, padding=0,
                   out: Optional[np.ndarray] = None,
                   workspace: Optional[Workspace] = None) -> np.ndarray:
    stride = kernel if stride is None else stride
    return _pool2d_nhwc(data, kernel, stride, padding, np.max, -np.inf,
                        out=out, workspace=workspace)


def avgpool2d_nhwc(data: np.ndarray, kernel, stride=None, padding=0,
                   out: Optional[np.ndarray] = None,
                   workspace: Optional[Workspace] = None) -> np.ndarray:
    stride = kernel if stride is None else stride
    return _pool2d_nhwc(data, kernel, stride, padding, np.mean, 0.0,
                        out=out, workspace=workspace)


def global_avgpool2d(data: np.ndarray) -> np.ndarray:
    return data.mean(axis=(2, 3), keepdims=True)


def upsample2d(data: np.ndarray, scale: int,
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Nearest-neighbour upsampling by an integer factor."""
    if out is None:
        return data.repeat(scale, axis=2).repeat(scale, axis=3)
    n, c, h, w = data.shape
    view = out.reshape(n, c, h, scale, w, scale)
    view[...] = data[:, :, :, None, :, None]
    return out


def pad(data: np.ndarray, pads,
        out: Optional[np.ndarray] = None) -> np.ndarray:
    if out is None:
        return np.pad(data, [(int(b), int(a)) for b, a in pads])
    out.fill(0)
    interior = tuple(slice(int(b), int(b) + dim)
                     for (b, _), dim in zip(pads, data.shape))
    out[interior] = data
    return out


# -- sharded entry points ------------------------------------------------------
#
# Intra-op parallelism splits one wide kernel call along the *batch/row*
# axis into independent slices computed by different pool workers, each
# writing directly into a disjoint view of the preallocated ``out=``
# buffer.  The split must be bitwise-invisible: conv qualifies because
# numpy's batched matmul issues one identical (M, N, K) GEMM per image
# whether the batch loop covers all images or a slice, and integer GEMMs
# qualify because integer accumulation is exact under any grouping.
# Float *dense* row/column splits do NOT qualify — changing the GEMM's M
# or N flips OpenBLAS micro-kernel selection and the last ulp with it
# (measured; see DESIGN.md) — the same class of prohibition as split-K,
# so float dense is never sharded.


def shard_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` near-equal [lo, hi) slices."""
    parts = max(1, min(int(parts), int(total)))
    edges = [total * i // parts for i in range(parts + 1)]
    return [(edges[i], edges[i + 1]) for i in range(parts)]


def conv2d_rows(data: np.ndarray, weight: np.ndarray, lo: int, hi: int,
                out: np.ndarray, bias=None, stride=1, padding=0,
                groups: int = 1, workspace: Optional[Workspace] = None,
                packed_weight: Optional[np.ndarray] = None) -> np.ndarray:
    """Convolve images ``lo:hi`` of the batch into ``out[lo:hi]``.

    Row-sliced entry point for intra-op batch sharding: the slice runs
    the same per-image GEMM calls the full-batch kernel would, so the
    assembled output is bitwise-identical to one unsharded call.
    """
    return conv2d(data[lo:hi], weight, bias=bias, stride=stride,
                  padding=padding, groups=groups, out=out[lo:hi],
                  workspace=workspace, packed_weight=packed_weight)


def dense_rows(data: np.ndarray, weight: np.ndarray, lo: int, hi: int,
               out: np.ndarray, bias=None,
               workspace: Optional[Workspace] = None) -> np.ndarray:
    """Dense rows ``lo:hi`` into ``out[lo:hi]``.

    Only bitwise-safe for *integer* operands (exact accumulation); float
    callers must keep the whole GEMM in one call (see module comment).
    """
    return dense(data[lo:hi], weight, bias=bias, out=out[lo:hi],
                 workspace=workspace)
