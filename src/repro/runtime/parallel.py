"""Shared persistent worker pool for multi-core plan execution.

The runtime's parallelism — inter-op graph scheduling in the executor and
intra-op batch sharding in the kernels — all runs on *one* process-wide
pool of daemon worker threads.  numpy's BLAS-bound kernels release the
GIL, so independent plan steps (and shards of one wide step) genuinely
overlap on multi-core hosts; everything else (scheduling bookkeeping,
small elementwise ops) serializes on the GIL and is kept deliberately
cheap.

Design rules that keep the pool deadlock-free under composition (the
serving engine runs whole batches on the pool, and each batch's executor
schedules its steps on the same pool):

* A caller that runs a plan in parallel always *participates* in its own
  run: ``Executor`` drives a claim loop on the calling thread and only
  *invites* pool workers to help.  If every pool worker is busy with
  other work, the run still completes on the caller's thread alone.
* Pool tasks never block waiting for other pool tasks to be *scheduled*;
  helpers wait only on the run's condition variable, which is always
  signalled by whichever thread (caller included) completes a step.

``REPRO_NUM_THREADS`` is the process-wide default thread count consumed
by :func:`resolve_num_threads`; ``Executor``, ``Profiler``, and
``InferenceEngine`` all resolve their ``num_threads`` knob through it, so
one environment variable turns the whole stack multi-core (the CI
threaded job runs the suite with ``REPRO_NUM_THREADS=4``).
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Callable, Optional

from ..telemetry import collectors as _telemetry

NUM_THREADS_ENV_VAR = "REPRO_NUM_THREADS"


def resolve_num_threads(explicit: Optional[int] = None) -> int:
    """Resolve a thread-count knob: explicit value, else the
    ``REPRO_NUM_THREADS`` environment default, else 1 (sequential)."""
    if explicit is not None:
        value = int(explicit)
    else:
        raw = os.environ.get(NUM_THREADS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{NUM_THREADS_ENV_VAR} must be an integer, got {raw!r}")
    if value < 1:
        raise ValueError(f"num_threads must be >= 1, got {value}")
    return value


class WorkerPool:
    """A persistent FIFO pool of daemon worker threads.

    Unlike ``concurrent.futures.ThreadPoolExecutor`` there are no
    futures and no shutdown ceremony: tasks are plain callables expected
    to do their own error handling, workers live for the life of the
    process, and :meth:`ensure` only ever grows the pool — multiple
    subsystems sharing the pool each state the capacity they need and
    the pool settles at the maximum.
    """

    def __init__(self, name: str = "repro-pool") -> None:
        self._name = name
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._tasks: deque = deque()
        self._threads: list = []
        # Lifetime task counters, read at telemetry scrape time; both
        # increments happen under locks the pool already takes.
        self.tasks_submitted = 0
        self.tasks_completed = 0
        _telemetry.track_pool(self)

    @property
    def size(self) -> int:
        return len(self._threads)

    def ensure(self, workers: int) -> int:
        """Grow the pool to at least ``workers`` threads; returns the
        resulting size.  Never shrinks."""
        with self._lock:
            while len(self._threads) < workers:
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self._name}-{len(self._threads)}",
                    daemon=True)
                self._threads.append(thread)
                thread.start()
            return len(self._threads)

    def submit(self, task: Callable[[], None]) -> None:
        """Enqueue a callable; it runs on some pool worker, FIFO order."""
        with self._lock:
            self._tasks.append(task)
            self.tasks_submitted += 1
            self._cond.notify()

    def pending(self) -> int:
        with self._lock:
            return len(self._tasks)

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._tasks:
                    self._cond.wait()
                task = self._tasks.popleft()
            try:
                task()
            except BaseException:
                # Tasks own their error handling (the executor records
                # failures into its run state); a task that still leaks
                # must not kill the shared worker.
                pass
            finally:
                with self._lock:
                    self.tasks_completed += 1


_shared_pool: Optional[WorkerPool] = None
_shared_pool_lock = threading.Lock()


def get_pool(ensure: Optional[int] = None) -> WorkerPool:
    """The process-wide shared pool, created on first use.

    ``ensure`` grows it to at least that many workers before returning.
    """
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = WorkerPool()
        pool = _shared_pool
    if ensure:
        pool.ensure(ensure)
    return pool
