"""Compiled execution plans: bind kernels once, free activations early.

The paper's toolchain (Sec. III) compiles a model once and then runs it
many times on a memory-constrained target.  This module is the compile
half of that split for the reference runtime: :func:`compile_plan` walks a
validated graph a single time and produces, per node, a *bound* kernel
callable with every attribute, quantization parameter, and shape already
resolved — the run loop does no attr lookups, dtype parsing, or
isinstance checks.

The plan also carries a liveness schedule derived from
:func:`repro.optim.memory_planner.compute_lifetimes`: after each step, the
intermediate tensors whose last consumer just ran are released, so the
executor's live set never exceeds the memory planner's
``peak_live_bytes`` lower bound (the arena-reuse semantics of
Sec. II-B's activation-memory study, applied to execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import DType, TensorSpec
from . import kernels
from .quantized import QuantParams, quantized_conv2d, quantized_dense

# A bound kernel: positional input arrays in, output arrays out.
KernelFn = Callable[[Sequence[np.ndarray]], List[np.ndarray]]


class ExecutionError(RuntimeError):
    """Raised when graph compilation or execution fails."""


@dataclass(frozen=True)
class CompiledStep:
    """One node of the plan: the IR node, its bound kernel, and the
    intermediate tensors whose storage may be reclaimed after it runs."""

    node: Node
    run: KernelFn
    release: Tuple[str, ...]


@dataclass
class ExecutionPlan:
    """The compiled form of a graph: an ordered list of bound steps."""

    graph_name: str
    steps: List[CompiledStep]
    specs: Dict[str, TensorSpec]
    peak_live_bytes: int

    def __len__(self) -> int:
        return len(self.steps)

    def summary(self) -> str:
        """Human-readable step listing with the release schedule."""
        lines = [
            f"execution plan for {self.graph_name!r}: {len(self.steps)} "
            f"steps, peak live {self.peak_live_bytes / 1024:.1f} KiB"
        ]
        for step in self.steps:
            frees = (f"  frees {', '.join(step.release)}"
                     if step.release else "")
            lines.append(
                f"  {step.node.name:<28} {step.node.op_type:<16}{frees}"
            )
        return "\n".join(lines)


# -- per-op kernel builders ----------------------------------------------------
#
# A builder runs once at compile time; everything it resolves from node
# attrs or specs is captured in the returned closure.

_BUILDERS: Dict[str, Callable[[Node, Dict[str, TensorSpec]], KernelFn]] = {}


def _builder(*op_types: str):
    def deco(fn):
        for op in op_types:
            _BUILDERS[op] = fn
        return fn
    return deco


def _conv_attrs(node: Node) -> Dict[str, object]:
    return {
        "stride": node.attrs.get("stride", 1),
        "padding": node.attrs.get("padding", 0),
        "groups": node.attrs.get("groups", 1),
    }


def _fused_activation(node: Node):
    return kernels.resolve_activation(
        node.attrs.get("activation"), node.attrs.get("activation_alpha"))


def _node_qparams(node: Node, prefix: str, channel_axis=None) -> QuantParams:
    dtype = node.attrs.get(f"{prefix}_dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    scale = np.asarray(node.attrs[f"{prefix}_scale"])
    axis = channel_axis if scale.size > 1 else None
    return QuantParams(
        scale, np.asarray(node.attrs[f"{prefix}_zero_point"]),
        dtype, channel_axis=axis,
    )


def _own_qparams(node: Node) -> QuantParams:
    dtype = node.attrs.get("dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    scale = np.asarray(node.attrs["scale"])
    axis = node.attrs.get("channel_axis") if scale.size > 1 else None
    return QuantParams(scale, np.asarray(node.attrs["zero_point"]), dtype,
                       channel_axis=axis)


@_builder("conv2d", "fused_conv2d")
def _build_conv2d(node: Node, specs) -> KernelFn:
    attrs = _conv_attrs(node)
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2

    def run(args):
        out = kernels.conv2d(args[0], args[1],
                             bias=args[2] if has_bias else None, **attrs)
        return [act(out) if act else out]
    return run


@_builder("dense", "fused_dense")
def _build_dense(node: Node, specs) -> KernelFn:
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2

    def run(args):
        out = kernels.dense(args[0], args[1],
                            bias=args[2] if has_bias else None)
        return [act(out) if act else out]
    return run


@_builder("bconv2d")
def _build_bconv2d(node: Node, specs) -> KernelFn:
    attrs = _conv_attrs(node)
    scale = np.asarray(node.attrs["scale"],
                       dtype=np.float32).reshape(1, -1, 1, 1)
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2

    def run(args):
        out = kernels.conv2d(args[0], args[1].astype(np.float32), **attrs)
        out = out * scale
        if has_bias:
            out = out + args[2].reshape(1, -1, 1, 1)
        return [act(out) if act else out]
    return run


@_builder("bdense")
def _build_bdense(node: Node, specs) -> KernelFn:
    scale = np.asarray(node.attrs["scale"], dtype=np.float32)
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2

    def run(args):
        out = kernels.dense(args[0], args[1].astype(np.float32)) * scale
        if has_bias:
            out = out + args[2]
        return [act(out) if act else out]
    return run


@_builder("qconv2d")
def _build_qconv2d(node: Node, specs) -> KernelFn:
    attrs = _conv_attrs(node)
    input_params = _node_qparams(node, "input")
    weight_params = _node_qparams(node, "weight", channel_axis=0)
    out_params = _node_qparams(node, "out")
    activation = node.attrs.get("activation")
    alpha = node.attrs.get("activation_alpha")
    has_bias = len(node.inputs) > 2

    def run(args):
        return [quantized_conv2d(
            args[0], input_params, args[1], weight_params,
            args[2] if has_bias else None, out_params,
            activation=activation, activation_alpha=alpha, **attrs)]
    return run


@_builder("qdense")
def _build_qdense(node: Node, specs) -> KernelFn:
    input_params = _node_qparams(node, "input")
    weight_params = _node_qparams(node, "weight", channel_axis=0)
    out_params = _node_qparams(node, "out")
    activation = node.attrs.get("activation")
    alpha = node.attrs.get("activation_alpha")
    has_bias = len(node.inputs) > 2

    def run(args):
        return [quantized_dense(
            args[0], input_params, args[1], weight_params,
            args[2] if has_bias else None, out_params,
            activation=activation, activation_alpha=alpha)]
    return run


@_builder("batchnorm")
def _build_batchnorm(node: Node, specs) -> KernelFn:
    epsilon = float(node.attrs.get("epsilon", 1e-5))

    def run(args):
        return [kernels.batchnorm(*args, epsilon=epsilon)]
    return run


@_builder("softmax")
def _build_softmax(node: Node, specs) -> KernelFn:
    axis = int(node.attrs.get("axis", -1))
    return lambda args: [kernels.softmax(args[0], axis=axis)]


@_builder("add")
def _build_add(node: Node, specs) -> KernelFn:
    return lambda args: [args[0] + args[1]]


@_builder("sub")
def _build_sub(node: Node, specs) -> KernelFn:
    return lambda args: [args[0] - args[1]]


@_builder("mul")
def _build_mul(node: Node, specs) -> KernelFn:
    return lambda args: [args[0] * args[1]]


@_builder("maximum")
def _build_maximum(node: Node, specs) -> KernelFn:
    return lambda args: [np.maximum(args[0], args[1])]


@_builder("maxpool2d")
def _build_maxpool2d(node: Node, specs) -> KernelFn:
    kernel = node.attrs["kernel"]
    stride = node.attrs.get("stride")
    padding = node.attrs.get("padding", 0)
    return lambda args: [kernels.maxpool2d(args[0], kernel, stride, padding)]


@_builder("avgpool2d")
def _build_avgpool2d(node: Node, specs) -> KernelFn:
    kernel = node.attrs["kernel"]
    stride = node.attrs.get("stride")
    padding = node.attrs.get("padding", 0)
    return lambda args: [kernels.avgpool2d(args[0], kernel, stride, padding)]


@_builder("global_avgpool2d")
def _build_global_avgpool2d(node: Node, specs) -> KernelFn:
    return lambda args: [kernels.global_avgpool2d(args[0])]


@_builder("upsample2d")
def _build_upsample2d(node: Node, specs) -> KernelFn:
    scale = int(node.attrs["scale"])
    return lambda args: [kernels.upsample2d(args[0], scale)]


@_builder("flatten")
def _build_flatten(node: Node, specs) -> KernelFn:
    return lambda args: [args[0].reshape(args[0].shape[0], -1)]


@_builder("reshape")
def _build_reshape(node: Node, specs) -> KernelFn:
    shape = specs[node.outputs[0]].shape
    return lambda args: [args[0].reshape(shape)]


@_builder("concat")
def _build_concat(node: Node, specs) -> KernelFn:
    axis = int(node.attrs.get("axis", 1))
    return lambda args: [np.concatenate(args, axis=axis)]


@_builder("pad")
def _build_pad(node: Node, specs) -> KernelFn:
    pads = node.attrs["pads"]
    return lambda args: [kernels.pad(args[0], pads)]


@_builder("quantize")
def _build_quantize(node: Node, specs) -> KernelFn:
    params = _own_qparams(node)
    return lambda args: [params.quantize(args[0])]


@_builder("dequantize")
def _build_dequantize(node: Node, specs) -> KernelFn:
    params = _own_qparams(node)
    return lambda args: [params.dequantize(args[0])]


def _build_activation(node: Node, specs) -> KernelFn:
    fn = kernels.resolve_activation(node.op_type, node.attrs.get("alpha"))
    return lambda args: [fn(args[0])]


for _name in kernels.ACTIVATIONS:
    _BUILDERS[_name] = _build_activation


# -- compilation ---------------------------------------------------------------

def compile_node(node: Node, specs: Dict[str, TensorSpec]) -> KernelFn:
    """Resolve one node into a bound kernel callable."""
    builder = _BUILDERS.get(node.op_type)
    if builder is None:
        raise ExecutionError(f"no kernel for op {node.op_type!r}")
    try:
        return builder(node, specs)
    except ExecutionError:
        raise
    except Exception as exc:
        raise ExecutionError(
            f"node {node.name!r} ({node.op_type}) failed to compile: {exc}"
        ) from exc


def compile_plan(graph: Graph,
                 specs: Optional[Dict[str, TensorSpec]] = None
                 ) -> ExecutionPlan:
    """Validate ``graph`` and compile it into an :class:`ExecutionPlan`."""
    # Deferred import: repro.optim pulls in passes that import this runtime
    # package at module scope.
    from ..optim.memory_planner import (
        compute_lifetimes, peak_live_bytes, release_schedule,
    )

    graph.validate()
    if specs is None:
        specs = graph.infer_specs()
    lifetimes = compute_lifetimes(graph)
    releases = release_schedule(graph, lifetimes)
    steps = [
        CompiledStep(node, compile_node(node, specs), releases[position])
        for position, node in enumerate(graph.nodes)
    ]
    return ExecutionPlan(graph.name, steps, specs,
                         peak_live_bytes(lifetimes))
