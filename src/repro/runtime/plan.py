"""Compiled execution plans: bind kernels once, free activations early.

The paper's toolchain (Sec. III) compiles a model once and then runs it
many times on a memory-constrained target.  This module is the compile
half of that split for the reference runtime: :func:`compile_plan` walks a
validated graph a single time and produces, per node, a *bound* kernel
callable with every attribute, quantization parameter, and shape already
resolved — the run loop does no attr lookups, dtype parsing, or
isinstance checks.

The plan also carries a liveness schedule derived from
:func:`repro.optim.memory_planner.compute_lifetimes`: after each step, the
intermediate tensors whose last consumer just ran are released, so the
executor's live set never exceeds the memory planner's
``peak_live_bytes`` lower bound (the arena-reuse semantics of
Sec. II-B's activation-memory study, applied to execution).

A plan *instance* additionally owns a scratch arena and kernel workspace
(:meth:`ExecutionPlan.with_buffers`): every bound kernel accepts an
optional :class:`repro.runtime.arena.RunContext` and, when given one,
writes its output into recycled arena buffers and draws intra-kernel
scratch from the workspace, so steady-state inference performs no large
allocations.  Compiled steps are immutable and shared — a worker pool
clones cheap per-worker instances over the same steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import DType, TensorSpec
from . import kernels
from .arena import RunContext, ScratchArena
from .quantized import QuantParams, quantized_conv2d, quantized_dense

# A bound kernel: positional input arrays in, output arrays out.  The
# optional context supplies arena/workspace buffers; kernels must behave
# identically (bitwise) with or without it.
KernelFn = Callable[..., List[np.ndarray]]


class ExecutionError(RuntimeError):
    """Raised when graph compilation or execution fails."""


@dataclass(frozen=True)
class CompiledStep:
    """One node of the plan: the IR node, its bound kernel, and the
    intermediate tensors whose storage may be reclaimed after it runs."""

    node: Node
    run: KernelFn
    release: Tuple[str, ...]


@dataclass
class ExecutionPlan:
    """The compiled form of a graph: an ordered list of bound steps.

    ``arena`` and ``workspace`` are per-instance scratch storage (None on
    a freshly compiled plan); :meth:`with_buffers` derives an instance
    that shares the immutable compiled steps but owns fresh buffers, which
    is how the serving engine's worker pool gets one plan instance per
    worker without recompiling.
    """

    graph_name: str
    steps: List[CompiledStep]
    specs: Dict[str, TensorSpec]
    peak_live_bytes: int
    arena: Optional[ScratchArena] = field(default=None, repr=False)
    workspace: Optional[kernels.Workspace] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.steps)

    def with_buffers(self) -> "ExecutionPlan":
        """A new plan instance sharing compiled steps, with its own
        scratch arena and kernel workspace."""
        return ExecutionPlan(self.graph_name, self.steps, self.specs,
                             self.peak_live_bytes,
                             arena=ScratchArena(),
                             workspace=kernels.Workspace())

    def summary(self) -> str:
        """Human-readable step listing with the release schedule."""
        lines = [
            f"execution plan for {self.graph_name!r}: {len(self.steps)} "
            f"steps, peak live {self.peak_live_bytes / 1024:.1f} KiB"
        ]
        for step in self.steps:
            frees = (f"  frees {', '.join(step.release)}"
                     if step.release else "")
            lines.append(
                f"  {step.node.name:<28} {step.node.op_type:<16}{frees}"
            )
        return "\n".join(lines)


# -- per-op kernel builders ----------------------------------------------------
#
# A builder runs once at compile time; everything it resolves from node
# attrs or specs is captured in the returned closure.  Each closure takes
# (args, ctx=None): without a context it allocates exactly as the seed
# kernels did; with one it routes outputs through the arena and scratch
# through the workspace.

_BUILDERS: Dict[str, Callable[[Node, Dict[str, TensorSpec]], KernelFn]] = {}


def _builder(*op_types: str):
    def deco(fn):
        for op in op_types:
            _BUILDERS[op] = fn
        return fn
    return deco


def _conv_attrs(node: Node) -> Dict[str, object]:
    return {
        "stride": node.attrs.get("stride", 1),
        "padding": node.attrs.get("padding", 0),
        "groups": node.attrs.get("groups", 1),
    }


def _fused_activation(node: Node):
    return kernels.resolve_activation(
        node.attrs.get("activation"), node.attrs.get("activation_alpha"))


def _out_spec(node: Node, specs) -> Tuple[Tuple[int, ...], np.dtype]:
    spec = specs[node.outputs[0]]
    return tuple(spec.shape), spec.dtype.to_numpy()


def _finish_activation(name, alpha, act, out: np.ndarray,
                       ctx: RunContext) -> np.ndarray:
    """Apply a fused activation to an arena-owned buffer.

    In-place when the activation supports it; otherwise fall back to the
    allocating form and hand the now-dead arena buffer straight back."""
    if act is None:
        return out
    if kernels.apply_activation_inplace(name, out, ctx.workspace,
                                        alpha=alpha):
        return out
    result = act(out)
    ctx.arena.release(out)
    return result


def _node_qparams(node: Node, prefix: str, channel_axis=None) -> QuantParams:
    dtype = node.attrs.get(f"{prefix}_dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    scale = np.asarray(node.attrs[f"{prefix}_scale"])
    axis = channel_axis if scale.size > 1 else None
    return QuantParams(
        scale, np.asarray(node.attrs[f"{prefix}_zero_point"]),
        dtype, channel_axis=axis,
    )


def _own_qparams(node: Node) -> QuantParams:
    dtype = node.attrs.get("dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    scale = np.asarray(node.attrs["scale"])
    axis = node.attrs.get("channel_axis") if scale.size > 1 else None
    return QuantParams(scale, np.asarray(node.attrs["zero_point"]), dtype,
                       channel_axis=axis)


@_builder("conv2d", "fused_conv2d")
def _build_conv2d(node: Node, specs) -> KernelFn:
    attrs = _conv_attrs(node)
    act_name = node.attrs.get("activation")
    act_alpha = node.attrs.get("activation_alpha")
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        bias = args[2] if has_bias else None
        if ctx is None:
            out = kernels.conv2d(args[0], args[1], bias=bias, **attrs)
            return [act(out) if act else out]
        out = kernels.conv2d(args[0], args[1], bias=bias,
                             out=ctx.alloc(shape, dtype),
                             workspace=ctx.workspace, **attrs)
        return [_finish_activation(act_name, act_alpha, act, out, ctx)]
    return run


@_builder("dense", "fused_dense")
def _build_dense(node: Node, specs) -> KernelFn:
    act_name = node.attrs.get("activation")
    act_alpha = node.attrs.get("activation_alpha")
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        bias = args[2] if has_bias else None
        if ctx is None:
            out = kernels.dense(args[0], args[1], bias=bias)
            return [act(out) if act else out]
        out = kernels.dense(args[0], args[1], bias=bias,
                            out=ctx.alloc(shape, dtype),
                            workspace=ctx.workspace)
        return [_finish_activation(act_name, act_alpha, act, out, ctx)]
    return run


@_builder("bconv2d")
def _build_bconv2d(node: Node, specs) -> KernelFn:
    attrs = _conv_attrs(node)
    scale = np.asarray(node.attrs["scale"],
                       dtype=np.float32).reshape(1, -1, 1, 1)
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2

    def run(args, ctx=None):
        out = kernels.conv2d(args[0], args[1].astype(np.float32), **attrs)
        out = out * scale
        if has_bias:
            out = out + args[2].reshape(1, -1, 1, 1)
        return [act(out) if act else out]
    return run


@_builder("bdense")
def _build_bdense(node: Node, specs) -> KernelFn:
    scale = np.asarray(node.attrs["scale"], dtype=np.float32)
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2

    def run(args, ctx=None):
        out = kernels.dense(args[0], args[1].astype(np.float32)) * scale
        if has_bias:
            out = out + args[2]
        return [act(out) if act else out]
    return run


@_builder("qconv2d")
def _build_qconv2d(node: Node, specs) -> KernelFn:
    attrs = _conv_attrs(node)
    input_params = _node_qparams(node, "input")
    weight_params = _node_qparams(node, "weight", channel_axis=0)
    out_params = _node_qparams(node, "out")
    activation = node.attrs.get("activation")
    alpha = node.attrs.get("activation_alpha")
    has_bias = len(node.inputs) > 2

    def run(args, ctx=None):
        return [quantized_conv2d(
            args[0], input_params, args[1], weight_params,
            args[2] if has_bias else None, out_params,
            activation=activation, activation_alpha=alpha, **attrs)]
    return run


@_builder("qdense")
def _build_qdense(node: Node, specs) -> KernelFn:
    input_params = _node_qparams(node, "input")
    weight_params = _node_qparams(node, "weight", channel_axis=0)
    out_params = _node_qparams(node, "out")
    activation = node.attrs.get("activation")
    alpha = node.attrs.get("activation_alpha")
    has_bias = len(node.inputs) > 2

    def run(args, ctx=None):
        return [quantized_dense(
            args[0], input_params, args[1], weight_params,
            args[2] if has_bias else None, out_params,
            activation=activation, activation_alpha=alpha)]
    return run


@_builder("batchnorm")
def _build_batchnorm(node: Node, specs) -> KernelFn:
    epsilon = float(node.attrs.get("epsilon", 1e-5))
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [kernels.batchnorm(*args, epsilon=epsilon)]
        return [kernels.batchnorm(*args, epsilon=epsilon,
                                  out=ctx.alloc(shape, dtype))]
    return run


@_builder("softmax")
def _build_softmax(node: Node, specs) -> KernelFn:
    axis = int(node.attrs.get("axis", -1))
    return lambda args, ctx=None: [kernels.softmax(args[0], axis=axis)]


def _build_binop(ufunc):
    def build(node: Node, specs) -> KernelFn:
        shape, dtype = _out_spec(node, specs)

        def run(args, ctx=None):
            if ctx is None:
                return [ufunc(args[0], args[1])]
            return [ufunc(args[0], args[1], out=ctx.alloc(shape, dtype))]
        return run
    return build


_BUILDERS["add"] = _build_binop(np.add)
_BUILDERS["sub"] = _build_binop(np.subtract)
_BUILDERS["mul"] = _build_binop(np.multiply)
_BUILDERS["maximum"] = _build_binop(np.maximum)


def _build_pool(kernel_fn):
    def build(node: Node, specs) -> KernelFn:
        kernel = node.attrs["kernel"]
        stride = node.attrs.get("stride")
        padding = node.attrs.get("padding", 0)
        shape, dtype = _out_spec(node, specs)

        def run(args, ctx=None):
            if ctx is None:
                return [kernel_fn(args[0], kernel, stride, padding)]
            return [kernel_fn(args[0], kernel, stride, padding,
                              out=ctx.alloc(shape, dtype),
                              workspace=ctx.workspace)]
        return run
    return build


_BUILDERS["maxpool2d"] = _build_pool(kernels.maxpool2d)
_BUILDERS["avgpool2d"] = _build_pool(kernels.avgpool2d)


@_builder("global_avgpool2d")
def _build_global_avgpool2d(node: Node, specs) -> KernelFn:
    return lambda args, ctx=None: [kernels.global_avgpool2d(args[0])]


@_builder("upsample2d")
def _build_upsample2d(node: Node, specs) -> KernelFn:
    scale = int(node.attrs["scale"])
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [kernels.upsample2d(args[0], scale)]
        return [kernels.upsample2d(args[0], scale,
                                   out=ctx.alloc(shape, dtype))]
    return run


def _build_view_copy(node: Node, specs) -> KernelFn:
    """flatten/reshape: a view when allocating, an arena copy with a
    context (views into buffers the arena may recycle are never issued)."""
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [args[0].reshape(shape)]
        out = ctx.alloc(shape, dtype)
        out[...] = args[0].reshape(shape)
        return [out]
    return run


_BUILDERS["flatten"] = _build_view_copy
_BUILDERS["reshape"] = _build_view_copy


@_builder("concat")
def _build_concat(node: Node, specs) -> KernelFn:
    axis = int(node.attrs.get("axis", 1))
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [np.concatenate(args, axis=axis)]
        return [np.concatenate(args, axis=axis,
                               out=ctx.alloc(shape, dtype))]
    return run


@_builder("pad")
def _build_pad(node: Node, specs) -> KernelFn:
    pads = node.attrs["pads"]
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [kernels.pad(args[0], pads)]
        return [kernels.pad(args[0], pads, out=ctx.alloc(shape, dtype))]
    return run


@_builder("quantize")
def _build_quantize(node: Node, specs) -> KernelFn:
    params = _own_qparams(node)
    return lambda args, ctx=None: [params.quantize(args[0])]


@_builder("dequantize")
def _build_dequantize(node: Node, specs) -> KernelFn:
    params = _own_qparams(node)
    return lambda args, ctx=None: [params.dequantize(args[0])]


def _build_activation(node: Node, specs) -> KernelFn:
    name = node.op_type
    alpha = node.attrs.get("alpha")
    fn = kernels.resolve_activation(name, alpha)
    inplace = name in kernels.INPLACE_ACTIVATIONS
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None or not inplace:
            return [fn(args[0])]
        out = ctx.alloc(shape, dtype)
        np.copyto(out, args[0])
        if not kernels.apply_activation_inplace(name, out, ctx.workspace,
                                                alpha=alpha):
            ctx.arena.release(out)
            return [fn(args[0])]
        return [out]
    return run


for _name in kernels.ACTIVATIONS:
    _BUILDERS[_name] = _build_activation


# -- compilation ---------------------------------------------------------------

def compile_node(node: Node, specs: Dict[str, TensorSpec]) -> KernelFn:
    """Resolve one node into a bound kernel callable."""
    builder = _BUILDERS.get(node.op_type)
    if builder is None:
        raise ExecutionError(f"no kernel for op {node.op_type!r}")
    try:
        return builder(node, specs)
    except ExecutionError:
        raise
    except Exception as exc:
        raise ExecutionError(
            f"node {node.name!r} ({node.op_type}) failed to compile: {exc}"
        ) from exc


def compile_plan(graph: Graph,
                 specs: Optional[Dict[str, TensorSpec]] = None
                 ) -> ExecutionPlan:
    """Validate ``graph`` and compile it into an :class:`ExecutionPlan`."""
    # Deferred import: repro.optim pulls in passes that import this runtime
    # package at module scope.
    from ..optim.memory_planner import (
        compute_lifetimes, peak_live_bytes, release_schedule,
    )

    graph.validate()
    if specs is None:
        specs = graph.infer_specs()
    lifetimes = compute_lifetimes(graph)
    releases = release_schedule(graph, lifetimes)
    steps = [
        CompiledStep(node, compile_node(node, specs), releases[position])
        for position, node in enumerate(graph.nodes)
    ]
    return ExecutionPlan(graph.name, steps, specs,
                         peak_live_bytes(lifetimes))
