"""Compiled execution plans: bind kernels once, free activations early.

The paper's toolchain (Sec. III) compiles a model once and then runs it
many times on a memory-constrained target.  This module is the compile
half of that split for the reference runtime: :func:`compile_plan` walks a
validated graph a single time and produces, per node, a *bound* kernel
callable with every attribute, quantization parameter, and shape already
resolved — the run loop does no attr lookups, dtype parsing, or
isinstance checks.

Ahead-of-time weight prepacking extends the same bind-once idea to the
weights themselves.  A :func:`prepack_graph` sweep runs the
``_PREPACKERS`` registry over every node whose weights are initializers
and precomputes the arrays the kernels would otherwise derive per call:
conv filters reshaped into the im2col GEMM layout, fp16 weights cast up
to the fp32 compute dtype, binary weights packed to a 1-bit bitplane,
integer weights pre-cast (and, for ``qdense``, pre-transposed — integer
matmul is exact, so the transposed call form is bitwise-identical), and
quantized zero-point row-sums folded into a single additive term.
Exact-GEMM-eligible quantized nodes (single group, reduction within
``kernels.EXACT_GEMM_MAX_REDUCE``) instead pack float64 weight matrices
(``w2_f64``/``wt_f64``, or ``w_nhwc_f64`` for NHWC-layout regions) that
feed the blocked float64 GEMMs in :mod:`repro.runtime.kernels` — the
accumulators are exact integers, so these packs are bitwise-identical to
the int32 forms they replace.  Float
GEMM weights are deliberately *not* pre-transposed: ``x @ W.T`` and
``x @ ascontiguousarray(W.T)`` take different BLAS code paths (NT vs NN)
whose results differ in the last ulp, and every specialized path must
stay bitwise-identical to the interpreter (see DESIGN.md).  Packs are
plain ``{name: ndarray}`` dicts, so a plan's prepack state can be
persisted by :mod:`repro.runtime.plan_cache` and rebound on a warm start
without re-deriving anything.

The plan also carries a liveness schedule derived from
:func:`repro.optim.memory_planner.compute_lifetimes`: after each step, the
intermediate tensors whose last consumer just ran are released, so the
executor's live set never exceeds the memory planner's
``peak_live_bytes`` lower bound (the arena-reuse semantics of
Sec. II-B's activation-memory study, applied to execution).

A plan *instance* additionally owns a scratch arena and kernel workspace
(:meth:`ExecutionPlan.with_buffers`): every bound kernel accepts an
optional :class:`repro.runtime.arena.RunContext` and, when given one,
writes its output into recycled arena buffers and draws intra-kernel
scratch from the workspace, so steady-state inference performs no large
allocations.  Compiled steps are immutable and shared — a worker pool
clones cheap per-worker instances over the same steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor import DType, TensorSpec
from . import kernels
from .arena import RunContext, ScratchArena
from .quantized import (
    QuantParams,
    build_requant_plan,
    quantized_conv2d,
    quantized_dense,
    zero_point_row_term,
)

# A bound kernel: positional input arrays in, output arrays out.  The
# optional context supplies arena/workspace buffers; kernels must behave
# identically (bitwise) with or without it.
KernelFn = Callable[..., List[np.ndarray]]

# Version of the prepack entry layout.  Part of the plan-cache key, so a
# change to what any prepacker stores invalidates stale cache entries.
# v2: quantized packs for exact-GEMM-eligible nodes store float64 weight
# matrices ("w2_f64"/"wt_f64"/"w_nhwc_f64") instead of int32 tensors,
# and NHWC-layout convs store the NHWC-ordered pack + row term.
PACK_FORMAT_VERSION = 2


class ExecutionError(RuntimeError):
    """Raised when graph compilation or execution fails."""


@dataclass(frozen=True)
class ShardPlan:
    """Row-axis sharding recipe for one wide step.

    ``run_shard(args, out, lo, hi, workspace)`` computes output rows
    ``[lo, hi)`` of the step directly into the matching view of the
    preallocated ``out`` buffer, so shards from different worker threads
    write disjoint memory and need no reduction step.  Only ops whose
    output rows are fully independent carry a shard plan: conv2d (the
    im2col GEMM is batched per image, so a batch split runs the *same*
    per-image GEMMs) and the integer quantized GEMMs (integer arithmetic
    is exact under any split).  The split is always over the batch/row
    axis, never the reduction axis — split-K reassociates floating-point
    accumulation — and float ``dense`` is never sharded at all: even a
    pure row split changes which OpenBLAS micro-kernel handles the
    fringe rows, and measured results differ in the last ulp
    (see DESIGN.md).
    """

    rows: int
    shape: Tuple[int, ...]
    dtype: np.dtype
    run_shard: Callable[..., None]


@dataclass(frozen=True)
class CompiledStep:
    """One node of the plan: the IR node, its bound kernel, and the
    intermediate tensors whose storage may be reclaimed after it runs.
    ``shard`` is the optional row-sharding recipe the parallel executor
    uses for wide steps; the sequential path ignores it."""

    node: Node
    run: KernelFn
    release: Tuple[str, ...]
    shard: Optional[ShardPlan] = None
    layout: str = "NCHW"


@dataclass(frozen=True)
class PlanSchedule:
    """Dependency-counted schedule derived from topology + liveness.

    Everything the parallel executor needs to dispatch steps out of
    order while preserving the sequential executor's semantics:

    * ``indegree[i]`` — how many producer steps step ``i`` waits on; a
      step becomes *ready* when its count reaches zero.
    * ``successors[i]`` — step indices consuming step ``i``'s outputs
      (their indegrees are decremented when ``i`` completes).
    * ``refcounts[name]`` — number of distinct consumer steps of each
      releasable intermediate.  Positional release lists assume the
      sequential order ("free after step i"), which is meaningless when
      steps finish out of order; a per-buffer count that drops to zero
      exactly when the *last* consumer finishes frees each buffer at
      the same point in the dependency order the sequential schedule
      would, never earlier.  A count of zero means the value is dead on
      arrival (produced, never consumed) and is freed by its producer.
    * ``levels``/``depth``/``max_width`` — ASAP level per step, critical
      path length, and the widest level: the plan's intrinsic
      parallelism, reported by :meth:`ExecutionPlan.summary`.

    The whole structure is plain ints/strings so the plan cache can
    persist it as JSON (:meth:`to_dict`/:meth:`from_dict`).
    """

    indegree: Tuple[int, ...]
    successors: Tuple[Tuple[int, ...], ...]
    refcounts: Dict[str, int]
    levels: Tuple[int, ...]
    depth: int
    max_width: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "indegree": list(self.indegree),
            "successors": [list(s) for s in self.successors],
            "refcounts": dict(self.refcounts),
            "levels": list(self.levels),
            "depth": self.depth,
            "max_width": self.max_width,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "PlanSchedule":
        return PlanSchedule(
            indegree=tuple(int(d) for d in data["indegree"]),
            successors=tuple(tuple(int(i) for i in s)
                             for s in data["successors"]),
            refcounts={str(k): int(v)
                       for k, v in data["refcounts"].items()},
            levels=tuple(int(v) for v in data["levels"]),
            depth=int(data["depth"]),
            max_width=int(data["max_width"]),
        )


def build_schedule(steps: Sequence[CompiledStep]) -> PlanSchedule:
    """Derive the dependency-counted schedule from compiled steps.

    Steps arrive in the graph's validated topological order, so one
    forward sweep resolves producers, indegrees, and ASAP levels.
    """
    producer: Dict[str, int] = {}
    for index, step in enumerate(steps):
        for name in step.node.outputs:
            producer[name] = index
    indegree = [0] * len(steps)
    successors: List[List[int]] = [[] for _ in steps]
    levels = [0] * len(steps)
    for index, step in enumerate(steps):
        deps = {producer[name] for name in step.node.inputs
                if name in producer and producer[name] != index}
        indegree[index] = len(deps)
        level = 0
        for dep in deps:
            successors[dep].append(index)
            level = max(level, levels[dep] + 1)
        levels[index] = level
    releasable = set()
    for step in steps:
        releasable.update(step.release)
    refcounts = {name: 0 for name in releasable}
    for step in steps:
        for name in set(step.node.inputs):
            if name in refcounts:
                refcounts[name] += 1
    depth = max(levels) + 1 if levels else 0
    width: Dict[int, int] = {}
    for level in levels:
        width[level] = width.get(level, 0) + 1
    return PlanSchedule(
        indegree=tuple(indegree),
        successors=tuple(tuple(s) for s in successors),
        refcounts=refcounts,
        levels=tuple(levels),
        depth=depth,
        max_width=max(width.values()) if width else 0,
    )


@dataclass
class ExecutionPlan:
    """The compiled form of a graph: an ordered list of bound steps.

    ``packs`` holds the per-node prepacked weight arrays (empty when the
    plan was compiled with ``prepack=False``); the plan cache persists
    exactly this mapping.  ``arena`` and ``workspace`` are per-instance
    scratch storage (None on a freshly compiled plan);
    :meth:`with_buffers` derives an instance that shares the immutable
    compiled steps but owns fresh buffers, which is how the serving
    engine's worker pool gets one plan instance per worker without
    recompiling.
    """

    graph_name: str
    steps: List[CompiledStep]
    specs: Dict[str, TensorSpec]
    peak_live_bytes: int
    packs: Dict[str, Dict[str, np.ndarray]] = field(
        default_factory=dict, repr=False)
    schedule: Optional[PlanSchedule] = field(default=None, repr=False)
    arena: Optional[ScratchArena] = field(default=None, repr=False)
    workspace: Optional[kernels.Workspace] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.steps)

    def with_buffers(self, prewarm: bool = False) -> "ExecutionPlan":
        """A new plan instance sharing compiled steps, with its own
        scratch arena and kernel workspace.

        With ``prewarm=True`` the arena's free pool is pre-populated with
        one buffer per activation (shape, dtype) at its peak concurrency
        under the release schedule, so even the *first* run draws from
        the pool instead of the heap — the serving engine's cold-start
        smoothing.
        """
        arena = ScratchArena()
        if prewarm:
            for (shape, dtype), count in self._peak_concurrency().items():
                arena.reserve(shape, dtype, count)
        return ExecutionPlan(self.graph_name, self.steps, self.specs,
                             self.peak_live_bytes, packs=self.packs,
                             schedule=self.schedule, arena=arena,
                             workspace=kernels.Workspace())

    def _peak_concurrency(self) -> Dict[Tuple[Tuple[int, ...], str], int]:
        """Max simultaneously-live activation count per (shape, dtype),
        walking the steps against the release schedule."""
        live: Dict[str, Tuple[Tuple[int, ...], str]] = {}
        count: Dict[Tuple[Tuple[int, ...], str], int] = {}
        peak: Dict[Tuple[Tuple[int, ...], str], int] = {}
        for step in self.steps:
            for name in step.node.outputs:
                spec = self.specs.get(name)
                if spec is None:
                    continue
                key = (tuple(spec.shape), np.dtype(spec.dtype.to_numpy()).str)
                live[name] = key
                count[key] = count.get(key, 0) + 1
                peak[key] = max(peak.get(key, 0), count[key])
            for name in step.release:
                key = live.pop(name, None)
                if key is not None:
                    count[key] -= 1
        return peak

    def summary(self) -> str:
        """Human-readable step listing with the release schedule."""
        packed = sum(len(p) for p in self.packs.values())
        lines = [
            f"execution plan for {self.graph_name!r}: {len(self.steps)} "
            f"steps, peak live {self.peak_live_bytes / 1024:.1f} KiB, "
            f"{packed} prepacked arrays"
        ]
        if self.schedule is not None:
            lines.append(
                f"  schedule depth {self.schedule.depth} (critical path), "
                f"max width {self.schedule.max_width}"
            )
        for step in self.steps:
            frees = (f"  frees {', '.join(step.release)}"
                     if step.release else "")
            lines.append(
                f"  {step.node.name:<28} {step.node.op_type:<16}{frees}"
            )
        return "\n".join(lines)


# -- per-op kernel builders ----------------------------------------------------
#
# A builder runs once at compile time; everything it resolves from node
# attrs, specs, or the optional prepack entry is captured in the returned
# closure.  Each closure takes (args, ctx=None): without a context it
# allocates exactly as the seed kernels did; with one it routes outputs
# through the arena and scratch through the workspace.

_BUILDERS: Dict[str, Callable[..., KernelFn]] = {}


def _builder(*op_types: str):
    def deco(fn):
        for op in op_types:
            _BUILDERS[op] = fn
        return fn
    return deco


def _conv_attrs(node: Node) -> Dict[str, object]:
    return {
        "stride": node.attrs.get("stride", 1),
        "padding": node.attrs.get("padding", 0),
        "groups": node.attrs.get("groups", 1),
    }


def _fused_activation(node: Node):
    return kernels.resolve_activation(
        node.attrs.get("activation"), node.attrs.get("activation_alpha"))


def _out_spec(node: Node, specs) -> Tuple[Tuple[int, ...], np.dtype]:
    spec = specs[node.outputs[0]]
    return tuple(spec.shape), spec.dtype.to_numpy()


def _finish_activation(name, alpha, act, out: np.ndarray,
                       ctx: RunContext) -> np.ndarray:
    """Apply a fused activation to an arena-owned buffer.

    In-place when the activation supports it; otherwise fall back to the
    allocating form and hand the now-dead arena buffer straight back."""
    if act is None:
        return out
    if kernels.apply_activation_inplace(name, out, ctx.workspace,
                                        alpha=alpha):
        return out
    result = act(out)
    ctx.arena.release(out)
    return result


def _node_qparams(node: Node, prefix: str, channel_axis=None) -> QuantParams:
    dtype = node.attrs.get(f"{prefix}_dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    scale = np.asarray(node.attrs[f"{prefix}_scale"])
    axis = node.attrs.get(f"{prefix}_channel_axis", channel_axis)
    if scale.size == 1:
        axis = None
    return QuantParams(
        scale, np.asarray(node.attrs[f"{prefix}_zero_point"]),
        dtype, channel_axis=axis,
    )


def _own_qparams(node: Node) -> QuantParams:
    dtype = node.attrs.get("dtype", DType.INT8)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    scale = np.asarray(node.attrs["scale"])
    axis = node.attrs.get("channel_axis") if scale.size > 1 else None
    return QuantParams(scale, np.asarray(node.attrs["zero_point"]), dtype,
                       channel_axis=axis)


def _unpack_bitplane(pack: Dict[str, np.ndarray]) -> np.ndarray:
    """Expand a 1-bit sign plane back to the ±1.0 fp32 weights.

    Inverse of the ``bits``/``bshape`` entries written by the binary
    prepackers; ``2 * bit - 1`` reproduces ``signs.astype(float32)``
    exactly for the ±1 sign tensors BinarizePass emits.
    """
    shape = tuple(int(d) for d in pack["bshape"])
    size = int(np.prod(shape))
    bits = np.unpackbits(pack["bits"], count=size)
    return (bits.astype(np.float32) * 2.0 - 1.0).reshape(shape)


@_builder("conv2d", "fused_conv2d")
def _build_conv2d(node: Node, specs, pack=None) -> KernelFn:
    attrs = _conv_attrs(node)
    act_name = node.attrs.get("activation")
    act_alpha = node.attrs.get("activation_alpha")
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2
    shape, dtype = _out_spec(node, specs)
    w2 = pack.get("w2") if pack else None

    def run(args, ctx=None):
        bias = args[2] if has_bias else None
        if ctx is None:
            out = kernels.conv2d(args[0], args[1], bias=bias,
                                 packed_weight=w2, **attrs)
            return [act(out) if act else out]
        out = kernels.conv2d(args[0], args[1], bias=bias,
                             out=ctx.alloc(shape, dtype),
                             workspace=ctx.workspace,
                             packed_weight=w2, **attrs)
        return [_finish_activation(act_name, act_alpha, act, out, ctx)]
    return run


@_builder("dense", "fused_dense")
def _build_dense(node: Node, specs, pack=None) -> KernelFn:
    act_name = node.attrs.get("activation")
    act_alpha = node.attrs.get("activation_alpha")
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2
    shape, dtype = _out_spec(node, specs)
    w32 = pack.get("w32") if pack else None

    def run(args, ctx=None):
        weight = w32 if w32 is not None else args[1]
        bias = args[2] if has_bias else None
        if ctx is None:
            out = kernels.dense(args[0], weight, bias=bias)
            return [act(out) if act else out]
        out = kernels.dense(args[0], weight, bias=bias,
                            out=ctx.alloc(shape, dtype),
                            workspace=ctx.workspace)
        return [_finish_activation(act_name, act_alpha, act, out, ctx)]
    return run


@_builder("bconv2d")
def _build_bconv2d(node: Node, specs, pack=None) -> KernelFn:
    attrs = _conv_attrs(node)
    scale = np.asarray(node.attrs["scale"],
                       dtype=np.float32).reshape(1, -1, 1, 1)
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2
    signs32 = _unpack_bitplane(pack) if pack and "bits" in pack else None
    w2 = None
    if signs32 is not None and int(attrs["groups"]) == 1:
        w2 = signs32.reshape(signs32.shape[0], -1)

    def run(args, ctx=None):
        weight = signs32 if signs32 is not None \
            else args[1].astype(np.float32)
        out = kernels.conv2d(args[0], weight, packed_weight=w2, **attrs)
        out = out * scale
        if has_bias:
            out = out + args[2].reshape(1, -1, 1, 1)
        return [act(out) if act else out]
    return run


@_builder("bdense")
def _build_bdense(node: Node, specs, pack=None) -> KernelFn:
    scale = np.asarray(node.attrs["scale"], dtype=np.float32)
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2
    signs32 = _unpack_bitplane(pack) if pack and "bits" in pack else None

    def run(args, ctx=None):
        weight = signs32 if signs32 is not None \
            else args[1].astype(np.float32)
        out = kernels.dense(args[0], weight) * scale
        if has_bias:
            out = out + args[2]
        return [act(out) if act else out]
    return run


def _conv_kernel_hw(node: Node, specs) -> Tuple[int, int]:
    w_spec = specs[node.inputs[1]]
    return int(w_spec.shape[2]), int(w_spec.shape[3])


@_builder("qconv2d")
def _build_qconv2d(node: Node, specs, pack=None) -> KernelFn:
    attrs = _conv_attrs(node)
    input_params = _node_qparams(node, "input")
    weight_params = _node_qparams(node, "weight", channel_axis=0)
    out_params = _node_qparams(node, "out")
    activation = node.attrs.get("activation")
    alpha = node.attrs.get("activation_alpha")
    has_bias = len(node.inputs) > 2

    if node.attrs.get("layout") == "NHWC":
        # Layout-pass region: activations flow NHWC through this node.
        # Weights are still OIHW initializers; the pack carries the
        # NHWC-ordered float64 matrix.  Without a pack, semantics are
        # *defined* by transposing back to the NCHW reference.
        if pack and "w_nhwc_f64" in pack and (not has_bias or "bias" in pack):
            w_f64 = pack["w_nhwc_f64"]
            row_term = pack.get("row_term_nhwc")
            input_zero = int(input_params.zero_point.ravel()[0])
            requant = build_requant_plan(
                input_params, weight_params,
                pack.get("bias") if has_bias else None, out_params,
                channel_ndim=4, activation=activation,
                activation_alpha=alpha, channel_axis=-1)
            kernel_hw = _conv_kernel_hw(node, specs)
            stride, padding = attrs["stride"], attrs["padding"]

            def run(args, ctx=None):
                ws = ctx.workspace if ctx is not None else None
                acc = kernels.qconv2d_acc_nhwc(
                    args[0], w_f64, kernel_hw, stride, padding,
                    input_zero=0 if row_term is not None else input_zero,
                    workspace=ws)
                if row_term is not None:
                    acc -= row_term
                return [requant(acc)]
            return run

        def run(args, ctx=None):
            nchw = np.ascontiguousarray(args[0].transpose(0, 3, 1, 2))
            out = quantized_conv2d(
                nchw, input_params, args[1], weight_params,
                args[2] if has_bias else None, out_params,
                activation=activation, activation_alpha=alpha, **attrs)
            return [np.ascontiguousarray(out.transpose(0, 2, 3, 1))]
        return run

    if pack and "w2_f64" in pack and (not has_bias or "bias" in pack):
        # Exact blocked-GEMM path: the float64 accumulator holds the same
        # integers the int32 reference computes (see kernels module
        # docstring), and the requant plan's first op converts int32 to
        # float64 anyway — identical bits either way.
        w2_f64 = pack["w2_f64"]
        row_term = pack.get("row_term")
        input_zero = int(input_params.zero_point.ravel()[0])
        requant = build_requant_plan(
            input_params, weight_params,
            pack.get("bias") if has_bias else None, out_params,
            channel_ndim=4, activation=activation, activation_alpha=alpha)
        kernel_hw = _conv_kernel_hw(node, specs)
        stride, padding = attrs["stride"], attrs["padding"]

        def run(args, ctx=None):
            ws = ctx.workspace if ctx is not None else None
            acc = kernels.qconv2d_acc(
                args[0], w2_f64, kernel_hw, stride, padding,
                input_zero=0 if row_term is not None else input_zero,
                workspace=ws)
            if row_term is not None:
                acc -= row_term
            return [requant(acc)]
        return run

    if pack and "w_int" in pack and (not has_bias or "bias" in pack):
        w_int = pack["w_int"]
        row_term = pack.get("row_term")
        input_zero = int(input_params.zero_point.ravel()[0])
        requant = build_requant_plan(
            input_params, weight_params,
            pack.get("bias") if has_bias else None, out_params,
            channel_ndim=4, activation=activation, activation_alpha=alpha)
        w2 = (w_int.reshape(w_int.shape[0], -1)
              if int(attrs["groups"]) == 1 else None)

        def run(args, ctx=None):
            q = args[0].astype(np.int32)
            if row_term is None:
                acc = kernels.conv2d(q - input_zero, w_int,
                                     packed_weight=w2, **attrs)
            else:
                # (q - z) * W == q * W - z * rowsum(W): integer-exact, so
                # the shift folds into the prepacked additive term.
                acc = kernels.conv2d(q, w_int, packed_weight=w2, **attrs)
                acc -= row_term
            return [requant(acc)]
        return run

    def run(args, ctx=None):
        return [quantized_conv2d(
            args[0], input_params, args[1], weight_params,
            args[2] if has_bias else None, out_params,
            activation=activation, activation_alpha=alpha, **attrs)]
    return run


@_builder("qdense")
def _build_qdense(node: Node, specs, pack=None) -> KernelFn:
    input_params = _node_qparams(node, "input")
    weight_params = _node_qparams(node, "weight", channel_axis=0)
    out_params = _node_qparams(node, "out")
    activation = node.attrs.get("activation")
    alpha = node.attrs.get("activation_alpha")
    has_bias = len(node.inputs) > 2

    if pack and "wt_f64" in pack and (not has_bias or "bias" in pack):
        wt_f64 = pack["wt_f64"]
        row_term = pack.get("row_term")
        input_zero = int(input_params.zero_point.ravel()[0])
        requant = build_requant_plan(
            input_params, weight_params,
            pack.get("bias") if has_bias else None, out_params,
            channel_ndim=2, activation=activation, activation_alpha=alpha)

        def run(args, ctx=None):
            ws = ctx.workspace if ctx is not None else None
            acc = kernels.qdense_acc(
                args[0], wt_f64,
                input_zero=0 if row_term is not None else input_zero,
                workspace=ws)
            if row_term is not None:
                acc -= row_term
            return [requant(acc)]
        return run

    if pack and "wt_int" in pack and (not has_bias or "bias" in pack):
        wt_int = pack["wt_int"]
        row_term = pack.get("row_term")
        input_zero = int(input_params.zero_point.ravel()[0])
        requant = build_requant_plan(
            input_params, weight_params,
            pack.get("bias") if has_bias else None, out_params,
            channel_ndim=2, activation=activation, activation_alpha=alpha)

        def run(args, ctx=None):
            q = args[0].astype(np.int32)
            if row_term is None:
                acc = (q - input_zero) @ wt_int
            else:
                acc = q @ wt_int
                acc -= row_term
            return [requant(acc)]
        return run

    def run(args, ctx=None):
        return [quantized_dense(
            args[0], input_params, args[1], weight_params,
            args[2] if has_bias else None, out_params,
            activation=activation, activation_alpha=alpha)]
    return run


@_builder("batchnorm")
def _build_batchnorm(node: Node, specs, pack=None) -> KernelFn:
    epsilon = float(node.attrs.get("epsilon", 1e-5))
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [kernels.batchnorm(*args, epsilon=epsilon)]
        return [kernels.batchnorm(*args, epsilon=epsilon,
                                  out=ctx.alloc(shape, dtype))]
    return run


@_builder("softmax")
def _build_softmax(node: Node, specs, pack=None) -> KernelFn:
    axis = int(node.attrs.get("axis", -1))
    return lambda args, ctx=None: [kernels.softmax(args[0], axis=axis)]


def _build_binop(ufunc):
    def build(node: Node, specs, pack=None) -> KernelFn:
        shape, dtype = _out_spec(node, specs)

        def run(args, ctx=None):
            if ctx is None:
                return [ufunc(args[0], args[1])]
            return [ufunc(args[0], args[1], out=ctx.alloc(shape, dtype))]
        return run
    return build


_BUILDERS["add"] = _build_binop(np.add)
_BUILDERS["sub"] = _build_binop(np.subtract)
_BUILDERS["mul"] = _build_binop(np.multiply)
_BUILDERS["maximum"] = _build_binop(np.maximum)


def _build_pool(kernel_fn, kernel_fn_nhwc):
    def build(node: Node, specs, pack=None) -> KernelFn:
        kernel = node.attrs["kernel"]
        stride = node.attrs.get("stride")
        padding = node.attrs.get("padding", 0)
        shape, dtype = _out_spec(node, specs)
        # NHWC windows reduce the same kh*kw values per output element in
        # the same gather order, so the pooled bits match the NCHW pool's
        # output exactly, merely transposed.
        fn = kernel_fn_nhwc if node.attrs.get("layout") == "NHWC" \
            else kernel_fn

        def run(args, ctx=None):
            if ctx is None:
                return [fn(args[0], kernel, stride, padding)]
            return [fn(args[0], kernel, stride, padding,
                       out=ctx.alloc(shape, dtype),
                       workspace=ctx.workspace)]
        return run
    return build


_BUILDERS["maxpool2d"] = _build_pool(kernels.maxpool2d,
                                     kernels.maxpool2d_nhwc)
_BUILDERS["avgpool2d"] = _build_pool(kernels.avgpool2d,
                                     kernels.avgpool2d_nhwc)


@_builder("transpose")
def _build_transpose(node: Node, specs, pack=None) -> KernelFn:
    perm = tuple(int(p) for p in node.attrs["perm"])
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [np.ascontiguousarray(args[0].transpose(perm))]
        out = ctx.alloc(shape, dtype)
        np.copyto(out, args[0].transpose(perm))
        return [out]
    return run


@_builder("global_avgpool2d")
def _build_global_avgpool2d(node: Node, specs, pack=None) -> KernelFn:
    return lambda args, ctx=None: [kernels.global_avgpool2d(args[0])]


@_builder("upsample2d")
def _build_upsample2d(node: Node, specs, pack=None) -> KernelFn:
    scale = int(node.attrs["scale"])
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [kernels.upsample2d(args[0], scale)]
        return [kernels.upsample2d(args[0], scale,
                                   out=ctx.alloc(shape, dtype))]
    return run


def _build_view_copy(node: Node, specs, pack=None) -> KernelFn:
    """flatten/reshape: a view when allocating, an arena copy with a
    context (views into buffers the arena may recycle are never issued)."""
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [args[0].reshape(shape)]
        out = ctx.alloc(shape, dtype)
        out[...] = args[0].reshape(shape)
        return [out]
    return run


_BUILDERS["flatten"] = _build_view_copy
_BUILDERS["reshape"] = _build_view_copy


@_builder("concat")
def _build_concat(node: Node, specs, pack=None) -> KernelFn:
    axis = int(node.attrs.get("axis", 1))
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [np.concatenate(args, axis=axis)]
        return [np.concatenate(args, axis=axis,
                               out=ctx.alloc(shape, dtype))]
    return run


@_builder("pad")
def _build_pad(node: Node, specs, pack=None) -> KernelFn:
    pads = node.attrs["pads"]
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None:
            return [kernels.pad(args[0], pads)]
        return [kernels.pad(args[0], pads, out=ctx.alloc(shape, dtype))]
    return run


@_builder("quantize")
def _build_quantize(node: Node, specs, pack=None) -> KernelFn:
    params = _own_qparams(node)
    return lambda args, ctx=None: [params.quantize(args[0])]


@_builder("dequantize")
def _build_dequantize(node: Node, specs, pack=None) -> KernelFn:
    params = _own_qparams(node)
    return lambda args, ctx=None: [params.dequantize(args[0])]


def _build_activation(node: Node, specs, pack=None) -> KernelFn:
    name = node.op_type
    alpha = node.attrs.get("alpha")
    fn = kernels.resolve_activation(name, alpha)
    inplace = name in kernels.INPLACE_ACTIVATIONS
    shape, dtype = _out_spec(node, specs)

    def run(args, ctx=None):
        if ctx is None or not inplace:
            return [fn(args[0])]
        out = ctx.alloc(shape, dtype)
        np.copyto(out, args[0])
        if not kernels.apply_activation_inplace(name, out, ctx.workspace,
                                                alpha=alpha):
            ctx.arena.release(out)
            return [fn(args[0])]
        return [out]
    return run


for _name in kernels.ACTIVATIONS:
    _BUILDERS[_name] = _build_activation


# -- intra-op shard builders ---------------------------------------------------
#
# A shard builder inspects one node at compile time and, when the op is
# both row-independent (bitwise-safe to split — see ShardPlan) and wide
# enough to amortize dispatch, returns a ShardPlan whose ``run_shard``
# computes output rows [lo, hi) into a view of the preallocated out
# buffer.  Narrow or unsafe steps return None and run unsharded (they
# still parallelize across branches via the inter-op schedule).

_SHARD_BUILDERS: Dict[str, Callable[..., Optional[ShardPlan]]] = {}

# Minimum estimated MACs (output elements x reduction width) before a
# step is worth sharding: below this, thread dispatch costs more than
# the kernel.
SHARD_MIN_WORK = 1 << 17


def _shard_builder(*op_types: str):
    def deco(fn):
        for op in op_types:
            _SHARD_BUILDERS[op] = fn
        return fn
    return deco


def _shard_worth(node: Node, specs, rows: int) -> bool:
    if rows < 2:
        return False
    out_elems = int(np.prod(specs[node.outputs[0]].shape))
    reduce_width = int(np.prod(specs[node.inputs[1]].shape[1:]))
    return out_elems * reduce_width >= SHARD_MIN_WORK


@_shard_builder("conv2d", "fused_conv2d")
def _shard_conv2d(node: Node, specs, pack=None) -> Optional[ShardPlan]:
    shape, dtype = _out_spec(node, specs)
    if len(shape) != 4 or not _shard_worth(node, specs, shape[0]):
        return None
    attrs = _conv_attrs(node)
    act_name = node.attrs.get("activation")
    act_alpha = node.attrs.get("activation_alpha")
    act = _fused_activation(node)
    has_bias = len(node.inputs) > 2
    w2 = pack.get("w2") if pack else None

    def run_shard(args, out, lo, hi, workspace=None):
        kernels.conv2d_rows(args[0], args[1], lo, hi, out,
                            bias=args[2] if has_bias else None,
                            workspace=workspace, packed_weight=w2, **attrs)
        if act is not None:
            # Fused activations are elementwise, hence row-independent;
            # applying them per shard is bitwise-identical.
            view = out[lo:hi]
            if not kernels.apply_activation_inplace(
                    act_name, view, workspace, alpha=act_alpha):
                view[...] = act(view)
    return ShardPlan(int(shape[0]), shape, np.dtype(dtype), run_shard)


@_shard_builder("qconv2d")
def _shard_qconv2d(node: Node, specs, pack=None) -> Optional[ShardPlan]:
    if node.attrs.get("layout") == "NHWC":
        # NHWC steps run whole: the exact GEMM already blocks internally
        # and a batch split would duplicate the panel scratch per worker.
        return None
    shape, dtype = _out_spec(node, specs)
    if len(shape) != 4 or not _shard_worth(node, specs, shape[0]):
        return None
    attrs = _conv_attrs(node)
    input_params = _node_qparams(node, "input")
    weight_params = _node_qparams(node, "weight", channel_axis=0)
    out_params = _node_qparams(node, "out")
    activation = node.attrs.get("activation")
    alpha = node.attrs.get("activation_alpha")
    has_bias = len(node.inputs) > 2

    if pack and "w2_f64" in pack and (not has_bias or "bias" in pack):
        # Exact float64 GEMM on a batch slice: integer accumulation is
        # exact under any split, so shards reproduce their rows bit for
        # bit (same argument as the int32 shard below).
        w2_f64 = pack["w2_f64"]
        row_term = pack.get("row_term")
        input_zero = int(input_params.zero_point.ravel()[0])
        requant = build_requant_plan(
            input_params, weight_params,
            pack.get("bias") if has_bias else None, out_params,
            channel_ndim=4, activation=activation, activation_alpha=alpha)
        kernel_hw = _conv_kernel_hw(node, specs)
        stride, padding = attrs["stride"], attrs["padding"]

        def run_shard(args, out, lo, hi, workspace=None):
            acc = kernels.qconv2d_acc(
                args[0][lo:hi], w2_f64, kernel_hw, stride, padding,
                input_zero=0 if row_term is not None else input_zero,
                workspace=workspace)
            if row_term is not None:
                acc -= row_term
            out[lo:hi] = requant(acc)
        return ShardPlan(int(shape[0]), shape, np.dtype(dtype), run_shard)

    if pack and "w_int" in pack and (not has_bias or "bias" in pack):
        # Mirror the prepacked builder on a row slice: the integer conv
        # is exact under a batch split and requantization is elementwise
        # with channel-broadcast constants, so each shard reproduces its
        # rows of the full result bit for bit.
        w_int = pack["w_int"]
        row_term = pack.get("row_term")
        input_zero = int(input_params.zero_point.ravel()[0])
        requant = build_requant_plan(
            input_params, weight_params,
            pack.get("bias") if has_bias else None, out_params,
            channel_ndim=4, activation=activation, activation_alpha=alpha)
        w2 = (w_int.reshape(w_int.shape[0], -1)
              if int(attrs["groups"]) == 1 else None)

        def run_shard(args, out, lo, hi, workspace=None):
            q = args[0][lo:hi].astype(np.int32)
            if row_term is None:
                acc = kernels.conv2d(q - input_zero, w_int,
                                     packed_weight=w2, **attrs)
            else:
                acc = kernels.conv2d(q, w_int, packed_weight=w2, **attrs)
                acc -= row_term
            out[lo:hi] = requant(acc)
    else:
        def run_shard(args, out, lo, hi, workspace=None):
            out[lo:hi] = quantized_conv2d(
                args[0][lo:hi], input_params, args[1], weight_params,
                args[2] if has_bias else None, out_params,
                activation=activation, activation_alpha=alpha, **attrs)
    return ShardPlan(int(shape[0]), shape, np.dtype(dtype), run_shard)


@_shard_builder("qdense")
def _shard_qdense(node: Node, specs, pack=None) -> Optional[ShardPlan]:
    shape, dtype = _out_spec(node, specs)
    if len(shape) != 2 or not _shard_worth(node, specs, shape[0]):
        return None
    input_params = _node_qparams(node, "input")
    weight_params = _node_qparams(node, "weight", channel_axis=0)
    out_params = _node_qparams(node, "out")
    activation = node.attrs.get("activation")
    alpha = node.attrs.get("activation_alpha")
    has_bias = len(node.inputs) > 2

    if pack and "wt_f64" in pack and (not has_bias or "bias" in pack):
        wt_f64 = pack["wt_f64"]
        row_term = pack.get("row_term")
        input_zero = int(input_params.zero_point.ravel()[0])
        requant = build_requant_plan(
            input_params, weight_params,
            pack.get("bias") if has_bias else None, out_params,
            channel_ndim=2, activation=activation, activation_alpha=alpha)

        def run_shard(args, out, lo, hi, workspace=None):
            acc = kernels.qdense_acc(
                args[0][lo:hi], wt_f64,
                input_zero=0 if row_term is not None else input_zero,
                workspace=workspace)
            if row_term is not None:
                acc -= row_term
            out[lo:hi] = requant(acc)
    elif pack and "wt_int" in pack and (not has_bias or "bias" in pack):
        wt_int = pack["wt_int"]
        row_term = pack.get("row_term")
        input_zero = int(input_params.zero_point.ravel()[0])
        requant = build_requant_plan(
            input_params, weight_params,
            pack.get("bias") if has_bias else None, out_params,
            channel_ndim=2, activation=activation, activation_alpha=alpha)

        def run_shard(args, out, lo, hi, workspace=None):
            q = args[0][lo:hi].astype(np.int32)
            if row_term is None:
                acc = (q - input_zero) @ wt_int
            else:
                acc = q @ wt_int
                acc -= row_term
            out[lo:hi] = requant(acc)
    else:
        def run_shard(args, out, lo, hi, workspace=None):
            out[lo:hi] = quantized_dense(
                args[0][lo:hi], input_params, args[1], weight_params,
                args[2] if has_bias else None, out_params,
                activation=activation, activation_alpha=alpha)
    return ShardPlan(int(shape[0]), shape, np.dtype(dtype), run_shard)


# NOTE: float `dense`/`fused_dense` (and the binary ops built on float
# GEMMs) deliberately have no shard builder.  A row split of a float
# matmul is mathematically lossless but *not* bitwise-stable: OpenBLAS
# picks different micro-kernels for fringe row counts, and measured
# outputs differ in the last ulp (e.g. M=3 and M=5 slices of an
# M=8 GEMM).  Conv is safe because its im2col GEMM is batched per image
# — a batch split runs the identical per-image GEMMs (see DESIGN.md).


def build_shard(node: Node, specs: Dict[str, TensorSpec],
                pack: Optional[Dict[str, np.ndarray]] = None
                ) -> Optional[ShardPlan]:
    """The row-sharding recipe for one node, or None when the op is
    narrow, not row-independent, or not bitwise-safe to split."""
    builder = _SHARD_BUILDERS.get(node.op_type)
    if builder is None:
        return None
    return builder(node, specs, pack)


# -- weight prepacking ---------------------------------------------------------
#
# A prepacker inspects one node whose weights are graph initializers and
# returns the ``{entry: ndarray}`` pack its builder consumes, or None
# when nothing about the node can be specialized (dynamic weights,
# unsupported layout).  Every entry must be a plain ndarray so the plan
# cache can persist packs losslessly in an .npz archive.

_PREPACKERS: Dict[str, Callable[..., Optional[Dict[str, np.ndarray]]]] = {}


def _prepacker(*op_types: str):
    def deco(fn):
        for op in op_types:
            _PREPACKERS[op] = fn
        return fn
    return deco


def _weight_init(node: Node, graph: Graph) -> Optional[np.ndarray]:
    if len(node.inputs) < 2:
        return None
    return graph.initializers.get(node.inputs[1])


def _bias_init(node: Node, graph: Graph) -> Optional[np.ndarray]:
    if len(node.inputs) < 3:
        return None
    return graph.initializers.get(node.inputs[2])


def _padding_is_zero(node: Node) -> bool:
    padding = node.attrs.get("padding", 0)
    if isinstance(padding, (tuple, list)):
        return not any(int(p) for p in padding)
    return int(padding) == 0


@_prepacker("conv2d", "fused_conv2d")
def _prepack_conv2d(node, graph, specs):
    weight = _weight_init(node, graph)
    if weight is None or int(node.attrs.get("groups", 1)) != 1:
        return None
    w2 = weight.reshape(weight.shape[0], -1)
    if specs[node.inputs[0]].dtype.to_numpy() == np.float16:
        # The fp16 path accumulates in fp32; prepack the upcast so the
        # hot loop's workspace copy disappears.  Same values into the
        # same GEMM call form, hence bitwise-identical.
        w2 = w2.astype(np.float32)
    return {"w2": np.ascontiguousarray(w2)}


@_prepacker("dense", "fused_dense")
def _prepack_dense(node, graph, specs):
    weight = _weight_init(node, graph)
    if weight is None or not np.issubdtype(weight.dtype, np.floating) \
            or weight.dtype == np.float32:
        # fp32 GEMM weights stay untouched: pre-transposing would flip
        # OpenBLAS from its NT to its NN kernel, whose results are not
        # bitwise-identical (see DESIGN.md).  Only the fp16 upcast — the
        # same values entering the same call form — is safe to hoist.
        return None
    return {"w32": weight.astype(np.float32)}


@_prepacker("bconv2d", "bdense")
def _prepack_binary(node, graph, specs):
    signs = _weight_init(node, graph)
    if signs is None:
        return None
    # BinarizePass emits strict ±1 sign tensors, so one bit per weight
    # round-trips exactly (bit = sign > 0, weight = 2 * bit - 1).
    return {
        "bits": np.packbits(signs.reshape(-1) > 0),
        "bshape": np.asarray(signs.shape, dtype=np.int64),
    }


def _exact_qconv_eligible(node: Node, q_weight: np.ndarray) -> bool:
    """Whether the conv may run through the exact float64 blocked GEMM:
    single-group, reduction narrow enough that every partial sum is an
    exact integer in float64 *and* matches the int32 reference (which
    cannot overflow below this width either)."""
    k = int(np.prod(q_weight.shape[1:]))
    return (kernels.exact_qgemm_enabled()
            and int(node.attrs.get("groups", 1)) == 1
            and k <= kernels.EXACT_GEMM_MAX_REDUCE)


@_prepacker("qconv2d")
def _prepack_qconv2d(node, graph, specs):
    q_weight = _weight_init(node, graph)
    if q_weight is None:
        return None
    layout = node.attrs.get("layout", "NCHW")
    out_c = q_weight.shape[0]
    k = int(np.prod(q_weight.shape[1:]))
    exact = _exact_qconv_eligible(node, q_weight)
    if layout == "NHWC":
        if not exact:
            # The layout pass only tags exact-eligible convs; a stale
            # tag (e.g. exact GEMM disabled after planning) falls back
            # to the transposing reference builder, which needs no pack.
            return None
        # OIHW -> (kh, kw, in_c, out_c): row index (i*kw + j)*C + ci,
        # the NHWC column gather order.
        pack = {"w_nhwc_f64": np.ascontiguousarray(
            q_weight.transpose(2, 3, 1, 0).reshape(k, out_c)
            .astype(np.float64))}
    elif exact:
        pack = {"w2_f64": np.ascontiguousarray(
            q_weight.reshape(out_c, k).astype(np.float64))}
    else:
        pack = {"w_int": q_weight.astype(np.int32)}
    bias = _bias_init(node, graph)
    if len(node.inputs) > 2:
        if bias is None:
            return None  # dynamic bias: requant cannot be hoisted
        pack["bias"] = bias
    if _padding_is_zero(node):
        # Zero padding injects literal zeros *after* the zero-point
        # shift, so the rowsum identity only holds for unpadded convs.
        row_term = zero_point_row_term(
            q_weight, _node_qparams(node, "input"), (1, 2, 3))
        if row_term is not None:
            if layout == "NHWC":
                pack["row_term_nhwc"] = row_term.reshape(1, 1, 1, -1)
            else:
                pack["row_term"] = row_term.reshape(1, -1, 1, 1)
    return pack


@_prepacker("qdense")
def _prepack_qdense(node, graph, specs):
    q_weight = _weight_init(node, graph)
    if q_weight is None:
        return None
    # Integer matmul is exact, so the pre-transposed contiguous call
    # form is bitwise-identical to the strided `q @ W.T` it replaces —
    # and, within the exact-GEMM reduction bound, so is the float64
    # BLAS form (see kernels module docstring).
    if kernels.exact_qgemm_enabled() \
            and q_weight.shape[1] <= kernels.EXACT_GEMM_MAX_REDUCE:
        pack = {"wt_f64": np.ascontiguousarray(
            q_weight.astype(np.float64).T)}
    else:
        pack = {"wt_int": np.ascontiguousarray(q_weight.astype(np.int32).T)}
    bias = _bias_init(node, graph)
    if len(node.inputs) > 2:
        if bias is None:
            return None
        pack["bias"] = bias
    row_term = zero_point_row_term(
        q_weight, _node_qparams(node, "input"), (1,))
    if row_term is not None:
        pack["row_term"] = row_term
    return pack


def prepack_graph(graph: Graph,
                  specs: Optional[Dict[str, TensorSpec]] = None
                  ) -> Dict[str, Dict[str, np.ndarray]]:
    """Precompute every weight-derived array the kernels would otherwise
    build per call.  Returns ``{node_name: {entry: ndarray}}``."""
    if specs is None:
        specs = graph.infer_specs()
    packs: Dict[str, Dict[str, np.ndarray]] = {}
    for node in graph.nodes:
        packer = _PREPACKERS.get(node.op_type)
        if packer is None:
            continue
        pack = packer(node, graph, specs)
        if pack:
            packs[node.name] = pack
    return packs


# -- compilation ---------------------------------------------------------------

def compile_node(node: Node, specs: Dict[str, TensorSpec],
                 pack: Optional[Dict[str, np.ndarray]] = None) -> KernelFn:
    """Resolve one node into a bound kernel callable."""
    builder = _BUILDERS.get(node.op_type)
    if builder is None:
        raise ExecutionError(f"no kernel for op {node.op_type!r}")
    try:
        return builder(node, specs, pack)
    except ExecutionError:
        raise
    except Exception as exc:
        raise ExecutionError(
            f"node {node.name!r} ({node.op_type}) failed to compile: {exc}"
        ) from exc


def compile_plan(graph: Graph,
                 specs: Optional[Dict[str, TensorSpec]] = None,
                 *,
                 prepack: bool = True,
                 packs: Optional[Dict[str, Dict[str, np.ndarray]]] = None,
                 releases: Optional[Sequence[Sequence[str]]] = None,
                 peak_live: Optional[int] = None,
                 schedule: Optional[PlanSchedule] = None) -> ExecutionPlan:
    """Compile ``graph`` into an :class:`ExecutionPlan`.

    The keyword-only arguments are the warm-start seams the plan cache
    uses: when ``specs``, ``releases``/``peak_live``, ``packs``, and
    ``schedule`` are all supplied (from a cache hit), compilation skips
    validation, shape inference, liveness analysis, prepacking, and
    schedule derivation — only the cheap kernel binding remains.  A cold
    call computes all of them.
    """
    # Deferred import: repro.optim pulls in passes that import this runtime
    # package at module scope.
    from ..optim.memory_planner import (
        compute_lifetimes, peak_live_bytes, release_schedule,
    )

    if specs is None:
        graph.validate()
        specs = graph.infer_specs()
    if releases is None or peak_live is None:
        lifetimes = compute_lifetimes(graph)
        releases = release_schedule(graph, lifetimes)
        peak_live = peak_live_bytes(lifetimes)
    if packs is None:
        packs = prepack_graph(graph, specs) if prepack else {}
    steps = [
        CompiledStep(node, compile_node(node, specs, packs.get(node.name)),
                     tuple(releases[position]),
                     shard=build_shard(node, specs, packs.get(node.name)),
                     layout=str(node.attrs.get("layout", "NCHW")))
        for position, node in enumerate(graph.nodes)
    ]
    if schedule is None or len(schedule.indegree) != len(steps):
        schedule = build_schedule(steps)
    return ExecutionPlan(graph.name, steps, specs, int(peak_live),
                         packs=packs, schedule=schedule)
