"""Execution profiler: per-op wall-clock latency and memory accounting.

Provides the measurement half of the Kenning-style benchmarking flow
(paper Sec. III): inference duration, per-layer breakdown, and peak
activation memory.  The analytic hardware model (repro.hw) predicts what a
*target* would do; this profiler measures what the reference runtime
actually does on the host.

Memory accounting follows the executor's liveness schedule: a tensor's
bytes are counted live from the node that produces it until its last
consumer has run, so ``peak_activation_bytes`` is the true live-set peak
— the same quantity the activation-memory planner lower-bounds with
``plan_memory(graph).peak_live_bytes`` — not the monotone sum of every
output ever produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..ir.graph import Graph, Node
from .executor import Executor


@dataclass
class LayerProfile:
    """Aggregated timing of one node across profiled runs."""

    name: str
    op_type: str
    calls: int = 0
    total_seconds: float = 0.0
    output_bytes: int = 0
    # Analytic work for one call of this node (from the op schema's cost
    # model); zero when the op has no cost model or specs are missing.
    macs: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def achieved_gflops(self) -> float:
        """Achieved GFLOP/s across profiled calls (2 FLOPs per MAC)."""
        if not self.total_seconds or not self.macs:
            return 0.0
        return 2.0 * self.macs * self.calls / self.total_seconds / 1e9


@dataclass
class ProfileResult:
    """Result of profiling a graph over one or more runs."""

    graph_name: str
    runs: int
    total_seconds: float
    layers: List[LayerProfile] = field(default_factory=list)
    peak_activation_bytes: int = 0
    planned_peak_bytes: int = 0     # the plan's predicted live-set peak
    # Scratch-arena behaviour over the timed runs (zero when profiling
    # without reuse_buffers): steady-state inference should show
    # arena_allocations == 0 and a growing arena_reuses.
    arena_allocations: int = 0
    arena_reuses: int = 0
    # Parallel-execution telemetry: thread count the profiled executor
    # ran with, and the observed concurrency (sum of per-step wall spans
    # divided by total wall time — 1.0 means fully serial, N means N
    # steps/shards genuinely overlapped on average).
    num_threads: int = 1
    observed_concurrency: float = 1.0

    @property
    def mean_latency_seconds(self) -> float:
        return self.total_seconds / self.runs if self.runs else 0.0

    def by_op_type(self) -> Dict[str, float]:
        """Total seconds grouped by operator kind (hot-spot summary)."""
        totals: Dict[str, float] = {}
        for layer in self.layers:
            totals[layer.op_type] = totals.get(layer.op_type, 0.0) + layer.total_seconds
        return totals

    def report(self, top: int = 10) -> str:
        """Human-readable profile summary, hottest layers first."""
        lines = [
            f"profile of {self.graph_name!r}: {self.runs} runs, "
            f"mean latency {self.mean_latency_seconds * 1e3:.3f} ms, "
            f"peak activations {self.peak_activation_bytes / 1024:.1f} KiB",
        ]
        if self.num_threads > 1:
            lines.append(
                f"  {self.num_threads} threads, observed concurrency "
                f"{self.observed_concurrency:.2f}x"
            )
        hottest = sorted(self.layers, key=lambda l: l.total_seconds, reverse=True)
        for layer in hottest[:top]:
            share = (layer.total_seconds / self.total_seconds * 100
                     if self.total_seconds else 0.0)
            rate = (f"  {layer.achieved_gflops:6.2f} GFLOP/s"
                    if layer.macs else "")
            lines.append(
                f"  {layer.name:<28} {layer.op_type:<16} "
                f"{layer.mean_seconds * 1e6:9.1f} us/call  {share:5.1f}%"
                f"{rate}"
            )
        return "\n".join(lines)


class Profiler:
    """Wraps an :class:`Executor` with timing hooks.

    With ``reuse_buffers=True`` the profiled executor runs on its scratch
    arena (outputs are recycled between runs), so the result reports how
    many real allocations the timed runs performed — zero in steady state.

    With ``num_threads > 1`` the executor runs its parallel schedule and
    the per-node hooks (whose ordering is sequential by contract) are
    replaced by the executor's span timeline: each step (or shard)
    records its own wall span, and the result reports *observed
    concurrency* — the ratio of summed span time to total wall time —
    so a speedup (or its absence) is explainable per layer.
    """

    def __init__(self, graph: Graph, reuse_buffers: bool = False,
                 num_threads: Optional[int] = None) -> None:
        self.executor = Executor(graph, reuse_buffers=reuse_buffers,
                                 num_threads=num_threads)
        self.graph = graph

    def _node_macs(self, node: Node) -> int:
        """Analytic MACs for one call of ``node``, 0 when unmodelled."""
        from ..ir.ops import get_op

        specs = self.executor.specs
        try:
            schema = get_op(node.op_type)
            inputs = [specs[name] for name in node.inputs]
            outputs = [specs[name] for name in node.outputs]
            return int(schema.cost(inputs, outputs, node.attrs).macs)
        except Exception:
            return 0

    def _new_layers(self) -> Dict[str, LayerProfile]:
        return {
            node.name: LayerProfile(node.name, node.op_type,
                                    macs=self._node_macs(node))
            for node in self.graph.nodes
        }

    def profile(
        self, feeds: Mapping[str, np.ndarray], runs: int = 3, warmup: int = 1,
    ) -> ProfileResult:
        """Execute ``runs`` timed inferences (after ``warmup`` untimed ones)."""
        if runs < 1:
            raise ValueError("runs must be >= 1")
        if self.executor.num_threads > 1:
            return self._profile_parallel(feeds, runs, warmup)
        layers: Dict[str, LayerProfile] = self._new_layers()
        # Tensors whose last consumer is each node: after that node runs
        # (and its outputs are counted), their bytes leave the live set.
        releases = {step.node.name: step.release
                    for step in self.executor.plan.steps}
        state = {"last": 0.0, "live_bytes": 0, "peak": 0}
        sizes: Dict[str, int] = {}

        def timing_hook(node: Node, outputs):
            now = time.perf_counter()
            profile = layers[node.name]
            profile.calls += 1
            profile.total_seconds += now - state["last"]
            out_bytes = 0
            for name, out in zip(node.outputs, outputs):
                nbytes = int(out.nbytes)
                sizes[name] = nbytes
                out_bytes += nbytes
            profile.output_bytes = out_bytes
            state["live_bytes"] += out_bytes
            state["peak"] = max(state["peak"], state["live_bytes"])
            for name in releases[node.name]:
                state["live_bytes"] -= sizes.pop(name, 0)
            state["last"] = time.perf_counter()
            return None

        for _ in range(warmup):
            self.executor.recycle(self.executor.run(feeds))

        arena = self.executor.plan.arena
        baseline = arena.stats.snapshot() if arena is not None else None
        self.executor.add_hook(timing_hook)
        total = 0.0
        try:
            for _ in range(runs):
                state["live_bytes"] = 0
                sizes.clear()
                start = time.perf_counter()
                state["last"] = start
                out = self.executor.run(feeds)
                total += time.perf_counter() - start
                self.executor.recycle(out)
        finally:
            self.executor.clear_hooks()

        return ProfileResult(
            graph_name=self.graph.name,
            runs=runs,
            total_seconds=total,
            layers=list(layers.values()),
            peak_activation_bytes=state["peak"],
            planned_peak_bytes=self.executor.plan.peak_live_bytes,
            arena_allocations=(arena.stats.allocations - baseline.allocations
                               if arena is not None else 0),
            arena_reuses=(arena.stats.reuses - baseline.reuses
                          if arena is not None else 0),
        )

    # -- parallel profiling ----------------------------------------------------

    def _tensor_bytes(self) -> Dict[str, int]:
        specs = self.executor.specs
        return {
            name: int(np.prod(spec.shape))
            * np.dtype(spec.dtype.to_numpy()).itemsize
            for name, spec in specs.items()
        }

    def _replay_peak(self, timeline, sizes: Dict[str, int]) -> int:
        """Live-set peak of one parallel run, replayed from the actual
        completion order of its timeline (per-buffer refcounts mirror the
        executor's release rule)."""
        schedule = self.executor.plan.schedule
        if schedule is None or not timeline:
            return 0
        finished: Dict[str, float] = {}
        for entry in timeline:
            name = entry["name"]
            finished[name] = max(finished.get(name, 0.0), entry["end"])
        nodes = {node.name: node for node in self.graph.nodes}
        refcounts = dict(schedule.refcounts)
        live = peak = 0
        for name in sorted(finished, key=finished.get):
            node = nodes[name]
            for out_name in node.outputs:
                live += sizes.get(out_name, 0)
            peak = max(peak, live)
            for out_name in node.outputs:
                if refcounts.get(out_name) == 0:
                    live -= sizes.get(out_name, 0)
            for in_name in set(node.inputs):
                count = refcounts.get(in_name)
                if count is None:
                    continue
                refcounts[in_name] = count - 1
                if count == 1 and in_name not in {
                        spec.name for spec in self.graph.inputs}:
                    live -= sizes.get(in_name, 0)
        return peak

    def _profile_parallel(self, feeds: Mapping[str, np.ndarray],
                          runs: int, warmup: int) -> ProfileResult:
        executor = self.executor
        layers: Dict[str, LayerProfile] = self._new_layers()
        sizes = self._tensor_bytes()
        node_out_bytes = {
            node.name: sum(sizes.get(name, 0) for name in node.outputs)
            for node in self.graph.nodes
        }
        for _ in range(warmup):
            executor.recycle(executor.run(feeds))
        arena = executor.plan.arena
        baseline = arena.stats.snapshot() if arena is not None else None
        executor.record_timeline = True
        total = span_total = 0.0
        peak = 0
        try:
            for _ in range(runs):
                start = time.perf_counter()
                out = executor.run(feeds)
                total += time.perf_counter() - start
                timeline = executor.last_timeline or []
                seen = set()
                for entry in timeline:
                    profile = layers[entry["name"]]
                    span = float(entry["end"]) - float(entry["start"])
                    profile.total_seconds += span
                    span_total += span
                    if entry["name"] not in seen:
                        seen.add(entry["name"])
                        profile.calls += 1
                        profile.output_bytes = node_out_bytes[entry["name"]]
                peak = max(peak, self._replay_peak(timeline, sizes))
                executor.recycle(out)
        finally:
            executor.record_timeline = False
        return ProfileResult(
            graph_name=self.graph.name,
            runs=runs,
            total_seconds=total,
            layers=list(layers.values()),
            peak_activation_bytes=peak,
            planned_peak_bytes=executor.plan.peak_live_bytes,
            arena_allocations=(arena.stats.allocations - baseline.allocations
                               if arena is not None else 0),
            arena_reuses=(arena.stats.reuses - baseline.reuses
                          if arena is not None else 0),
            num_threads=executor.num_threads,
            observed_concurrency=(span_total / total if total > 0 else 1.0),
        )


def profile_graph(graph: Graph, feeds: Mapping[str, np.ndarray],
                  runs: int = 3, warmup: int = 1) -> ProfileResult:
    """One-shot convenience wrapper around :class:`Profiler`."""
    return Profiler(graph).profile(feeds, runs=runs, warmup=warmup)
