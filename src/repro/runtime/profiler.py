"""Execution profiler: per-op wall-clock latency and memory accounting.

Provides the measurement half of the Kenning-style benchmarking flow
(paper Sec. III): inference duration, per-layer breakdown, and peak
activation memory.  The analytic hardware model (repro.hw) predicts what a
*target* would do; this profiler measures what the reference runtime
actually does on the host.

Memory accounting follows the executor's liveness schedule: a tensor's
bytes are counted live from the node that produces it until its last
consumer has run, so ``peak_activation_bytes`` is the true live-set peak
— the same quantity the activation-memory planner lower-bounds with
``plan_memory(graph).peak_live_bytes`` — not the monotone sum of every
output ever produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..ir.graph import Graph, Node
from .executor import Executor


@dataclass
class LayerProfile:
    """Aggregated timing of one node across profiled runs."""

    name: str
    op_type: str
    calls: int = 0
    total_seconds: float = 0.0
    output_bytes: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


@dataclass
class ProfileResult:
    """Result of profiling a graph over one or more runs."""

    graph_name: str
    runs: int
    total_seconds: float
    layers: List[LayerProfile] = field(default_factory=list)
    peak_activation_bytes: int = 0
    planned_peak_bytes: int = 0     # the plan's predicted live-set peak
    # Scratch-arena behaviour over the timed runs (zero when profiling
    # without reuse_buffers): steady-state inference should show
    # arena_allocations == 0 and a growing arena_reuses.
    arena_allocations: int = 0
    arena_reuses: int = 0

    @property
    def mean_latency_seconds(self) -> float:
        return self.total_seconds / self.runs if self.runs else 0.0

    def by_op_type(self) -> Dict[str, float]:
        """Total seconds grouped by operator kind (hot-spot summary)."""
        totals: Dict[str, float] = {}
        for layer in self.layers:
            totals[layer.op_type] = totals.get(layer.op_type, 0.0) + layer.total_seconds
        return totals

    def report(self, top: int = 10) -> str:
        """Human-readable profile summary, hottest layers first."""
        lines = [
            f"profile of {self.graph_name!r}: {self.runs} runs, "
            f"mean latency {self.mean_latency_seconds * 1e3:.3f} ms, "
            f"peak activations {self.peak_activation_bytes / 1024:.1f} KiB",
        ]
        hottest = sorted(self.layers, key=lambda l: l.total_seconds, reverse=True)
        for layer in hottest[:top]:
            share = (layer.total_seconds / self.total_seconds * 100
                     if self.total_seconds else 0.0)
            lines.append(
                f"  {layer.name:<28} {layer.op_type:<16} "
                f"{layer.mean_seconds * 1e6:9.1f} us/call  {share:5.1f}%"
            )
        return "\n".join(lines)


class Profiler:
    """Wraps an :class:`Executor` with timing hooks.

    With ``reuse_buffers=True`` the profiled executor runs on its scratch
    arena (outputs are recycled between runs), so the result reports how
    many real allocations the timed runs performed — zero in steady state.
    """

    def __init__(self, graph: Graph, reuse_buffers: bool = False) -> None:
        self.executor = Executor(graph, reuse_buffers=reuse_buffers)
        self.graph = graph

    def profile(
        self, feeds: Mapping[str, np.ndarray], runs: int = 3, warmup: int = 1,
    ) -> ProfileResult:
        """Execute ``runs`` timed inferences (after ``warmup`` untimed ones)."""
        if runs < 1:
            raise ValueError("runs must be >= 1")
        layers: Dict[str, LayerProfile] = {
            node.name: LayerProfile(node.name, node.op_type)
            for node in self.graph.nodes
        }
        # Tensors whose last consumer is each node: after that node runs
        # (and its outputs are counted), their bytes leave the live set.
        releases = {step.node.name: step.release
                    for step in self.executor.plan.steps}
        state = {"last": 0.0, "live_bytes": 0, "peak": 0}
        sizes: Dict[str, int] = {}

        def timing_hook(node: Node, outputs):
            now = time.perf_counter()
            profile = layers[node.name]
            profile.calls += 1
            profile.total_seconds += now - state["last"]
            out_bytes = 0
            for name, out in zip(node.outputs, outputs):
                nbytes = int(out.nbytes)
                sizes[name] = nbytes
                out_bytes += nbytes
            profile.output_bytes = out_bytes
            state["live_bytes"] += out_bytes
            state["peak"] = max(state["peak"], state["live_bytes"])
            for name in releases[node.name]:
                state["live_bytes"] -= sizes.pop(name, 0)
            state["last"] = time.perf_counter()
            return None

        for _ in range(warmup):
            self.executor.recycle(self.executor.run(feeds))

        arena = self.executor.plan.arena
        baseline = arena.stats.snapshot() if arena is not None else None
        self.executor.add_hook(timing_hook)
        total = 0.0
        try:
            for _ in range(runs):
                state["live_bytes"] = 0
                sizes.clear()
                start = time.perf_counter()
                state["last"] = start
                out = self.executor.run(feeds)
                total += time.perf_counter() - start
                self.executor.recycle(out)
        finally:
            self.executor.clear_hooks()

        return ProfileResult(
            graph_name=self.graph.name,
            runs=runs,
            total_seconds=total,
            layers=list(layers.values()),
            peak_activation_bytes=state["peak"],
            planned_peak_bytes=self.executor.plan.peak_live_bytes,
            arena_allocations=(arena.stats.allocations - baseline.allocations
                               if arena is not None else 0),
            arena_reuses=(arena.stats.reuses - baseline.reuses
                          if arena is not None else 0),
        )


def profile_graph(graph: Graph, feeds: Mapping[str, np.ndarray],
                  runs: int = 3, warmup: int = 1) -> ProfileResult:
    """One-shot convenience wrapper around :class:`Profiler`."""
    return Profiler(graph).profile(feeds, runs=runs, warmup=warmup)
