"""Motor Condition Classification: a battery-powered monitoring box.

Paper Sec. V-B: "design and build a prototype of a battery-powered
ultra-low energy deep learning-driven small box that can be attached to
large electric asynchronous motors and continuously monitors the motor.
The states to monitor are the operational, thermal and mechanical
conditions of the motor, and upon specified events, e.g. a ball bearing
failure, a message is sent to an operator."

Modeled: duty-cycled sampling and inference on an MCU-class accelerator,
a battery budget, state-change debouncing so the operator gets one message
per event, and input-quality monitoring upstream of the classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...datasets.timeseries import (
    MOTOR_CLASSES,
    motor_vibration_window,
    vibration_features,
)
from ...hw.accelerators import AcceleratorSpec, get_accelerator
from ...hw.performance_model import RooflineModel
from ...ir.graph import Graph
from ...runtime.executor import Executor
from ...safety.monitors import MonitorPipeline


@dataclass
class BatteryModel:
    """Primary-cell battery with an idle floor and per-event costs."""

    capacity_j: float = 2.0 * 3600 * 3.0       # 2 Ah at 3 V in joules
    idle_power_w: float = 0.0008               # deep-sleep floor
    radio_energy_per_message_j: float = 0.15   # LPWAN uplink burst

    def lifetime_days(self, duty_energy_j_per_s: float,
                      messages_per_day: float = 4.0) -> float:
        """Battery life under a steady monitoring duty cycle."""
        per_second = (self.idle_power_w + duty_energy_j_per_s
                      + messages_per_day * self.radio_energy_per_message_j
                      / 86_400.0)
        return self.capacity_j / per_second / 86_400.0


@dataclass
class Alert:
    """Message sent to the operator on a confirmed state change."""

    at_window: int
    state: str
    confidence: float


@dataclass
class MonitoringResult:
    """Outcome of monitoring one vibration stream."""

    windows: int = 0
    alerts: List[Alert] = field(default_factory=list)
    state_counts: Dict[str, int] = field(default_factory=dict)
    rejected_windows: int = 0
    inference_energy_j: float = 0.0

    @property
    def detected_states(self) -> List[str]:
        return [a.state for a in self.alerts]


class MotorConditionMonitor:
    """The monitoring box: sample -> quality gate -> classify -> alert.

    Parameters
    ----------
    model
        Trained ``motor_net`` graph (batch 1).
    platform
        MCU/NPU the box runs on; supplies per-inference energy.
    quality_gate
        Optional input monitors applied to raw windows before features.
    debounce
        Consecutive windows agreeing on a *new* state before alerting
        (suppresses single-window misclassifications).
    """

    def __init__(self, model: Graph,
                 platform: Optional[AcceleratorSpec] = None,
                 quality_gate: Optional[MonitorPipeline] = None,
                 debounce: int = 3,
                 window: int = 256) -> None:
        if debounce < 1:
            raise ValueError("debounce must be >= 1")
        self.executor = Executor(model)
        self.input_name = model.inputs[0].name
        self.output_name = model.output_names[0]
        self.quality_gate = quality_gate
        self.debounce = debounce
        self.window = window
        platform = platform or get_accelerator("GAP8")
        prediction = RooflineModel(platform).predict(model, batch=1)
        self.energy_per_inference_j = prediction.energy_per_inference_j
        self.latency_per_inference_s = prediction.latency_s

    def classify_window(self, signal: np.ndarray) -> Tuple[Optional[str], float]:
        """Classify one raw vibration window; None if the gate rejects it."""
        if self.quality_gate is not None:
            verdict = self.quality_gate.process(signal)
            if not verdict.usable:
                return None, 0.0
            signal = verdict.sample
        features = vibration_features(signal)[None][None]  # (1, 1, 8, w/16)
        probs = self.executor.run({self.input_name: features})[self.output_name]
        index = int(np.argmax(probs))
        return MOTOR_CLASSES[index], float(probs.reshape(-1)[index])

    def monitor_stream(self, windows: Sequence[np.ndarray],
                       initial_state: str = "healthy") -> MonitoringResult:
        """Process a stream of windows, emitting debounced alerts."""
        result = MonitoringResult()
        confirmed = initial_state
        candidate: Optional[str] = None
        run_length = 0
        for index, signal in enumerate(windows):
            result.windows += 1
            state, confidence = self.classify_window(signal)
            if state is None:
                result.rejected_windows += 1
                continue
            result.inference_energy_j += self.energy_per_inference_j
            result.state_counts[state] = result.state_counts.get(state, 0) + 1
            if state == confirmed:
                candidate = None
                run_length = 0
                continue
            if state == candidate:
                run_length += 1
            else:
                candidate = state
                run_length = 1
            if run_length >= self.debounce:
                confirmed = state
                candidate = None
                run_length = 0
                result.alerts.append(Alert(index, state, confidence))
        return result

    def duty_cycle_power_w(self, windows_per_hour: float) -> float:
        """Average inference power at a given sampling cadence."""
        return self.energy_per_inference_j * windows_per_hour / 3600.0

    def battery_life_days(self, windows_per_hour: float = 60.0,
                          battery: Optional[BatteryModel] = None) -> float:
        battery = battery or BatteryModel()
        return battery.lifetime_days(self.duty_cycle_power_w(windows_per_hour))


def synthetic_motor_stream(schedule: Sequence[Tuple[str, int]],
                           window: int = 256, noise: float = 0.05,
                           seed: int = 0) -> List[np.ndarray]:
    """A stream following a (state, num_windows) schedule."""
    rng = np.random.default_rng(seed)
    stream: List[np.ndarray] = []
    for state, count in schedule:
        for _ in range(count):
            stream.append(motor_vibration_window(state, window=window,
                                                 noise=noise, rng=rng))
    return stream
