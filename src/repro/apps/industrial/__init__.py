"""Industrial IoT use cases: motor monitoring and arc detection (Sec. V-B)."""

from .motor import (
    Alert,
    BatteryModel,
    MonitoringResult,
    MotorConditionMonitor,
    synthetic_motor_stream,
)
from .arc import (
    ArcDetector,
    CampaignStats,
    StreamResult,
    TripEvent,
    run_arc_campaign,
)

__all__ = [
    "Alert", "BatteryModel", "MonitoringResult", "MotorConditionMonitor",
    "synthetic_motor_stream",
    "ArcDetector", "CampaignStats", "StreamResult", "TripEvent",
    "run_arc_campaign",
]
