"""Arc Detection in DC power distribution cabinets.

Paper Sec. V-B: "detect unwanted arcs in DC power distribution cabinets
using deep learning technology.  A challenge is to guarantee a very low
latency from the first spark till inference, including sensing and
pre-processing, and an ultra-low false-negative error rate for a smooth
operation."

The detector slides a window over the current stream, classifies each hop
with the trained ``arc_net``, and trips after ``k`` positive windows out of
the last ``n`` (the debounce that trades FPR against detection latency —
benchmarked in Txt-F).  Latency is accounted from the first arc sample:
remaining window fill + feature extraction + inference + decision hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...datasets.timeseries import arc_features, dc_current_window
from ...hw.accelerators import AcceleratorSpec, get_accelerator
from ...hw.performance_model import RooflineModel
from ...ir.graph import Graph
from ...runtime.executor import Executor


@dataclass
class TripEvent:
    """The breaker-trip decision."""

    at_sample: int                # stream index where the trip fired
    latency_s: float              # from first arc sample (inf if no arc)


@dataclass
class StreamResult:
    """Outcome of scanning one current stream."""

    windows: int
    positives: int
    trip: Optional[TripEvent]
    arc_start_sample: Optional[int]

    @property
    def tripped(self) -> bool:
        return self.trip is not None


class ArcDetector:
    """Sliding-window arc detector with k-of-n trip debouncing.

    Parameters
    ----------
    model
        Trained ``arc_net`` (batch 1) over spectral features.
    fs
        Sampling rate of the current sensor (Hz).
    window / hop
        Window length and hop size in samples.
    k_of_n
        Trip after ``k`` positive windows among the last ``n``.
    platform
        Accelerator executing the detector; its predicted latency is added
        to the first-spark-to-trip accounting.
    """

    def __init__(self, model: Graph, fs: float = 100_000.0,
                 window: int = 128, hop: int = 32,
                 k_of_n: Tuple[int, int] = (2, 3),
                 threshold: float = 0.5,
                 platform: Optional[AcceleratorSpec] = None) -> None:
        k, n = k_of_n
        if not 1 <= k <= n:
            raise ValueError("need 1 <= k <= n")
        if hop < 1 or hop > window:
            raise ValueError("hop must be in [1, window]")
        self.executor = Executor(model)
        self.input_name = model.inputs[0].name
        self.output_name = model.output_names[0]
        self.fs = fs
        self.window = window
        self.hop = hop
        self.k = k
        self.n = n
        self.threshold = threshold
        platform = platform or get_accelerator("K210")
        prediction = RooflineModel(platform).predict(model, batch=1)
        self.inference_latency_s = prediction.latency_s
        self.energy_per_inference_j = prediction.energy_per_inference_j

    def window_probability(self, signal: np.ndarray) -> float:
        """P(arc) for one raw current window."""
        features = arc_features(signal)[None]
        probs = self.executor.run({self.input_name: features})[self.output_name]
        return float(probs.reshape(-1)[1])

    def scan(self, stream: np.ndarray,
             arc_start_sample: Optional[int] = None) -> StreamResult:
        """Scan a stream; returns trip decision and first-spark latency."""
        history: List[bool] = []
        positives = 0
        windows = 0
        for start in range(0, len(stream) - self.window + 1, self.hop):
            end = start + self.window
            probability = self.window_probability(stream[start:end])
            positive = probability >= self.threshold
            windows += 1
            positives += int(positive)
            history.append(positive)
            if len(history) > self.n:
                history.pop(0)
            if sum(history) >= self.k:
                # Trip latency: samples elapsed since the first arc sample
                # until this window completed, plus compute per evaluated
                # window since the arc began.
                if arc_start_sample is not None:
                    samples_after = max(0, end - arc_start_sample)
                    windows_since = samples_after // self.hop + 1
                    latency = (samples_after / self.fs
                               + windows_since * self.inference_latency_s)
                else:
                    latency = float("inf")
                return StreamResult(windows, positives,
                                    TripEvent(end, latency), arc_start_sample)
        return StreamResult(windows, positives, None, arc_start_sample)


@dataclass
class CampaignStats:
    """FNR/FPR/latency over many simulated streams."""

    arcs: int = 0
    arcs_detected: int = 0
    normals: int = 0
    false_trips: int = 0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def false_negative_rate(self) -> float:
        return 1.0 - self.arcs_detected / self.arcs if self.arcs else 0.0

    @property
    def false_positive_rate(self) -> float:
        return self.false_trips / self.normals if self.normals else 0.0

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.latencies_s)) if self.latencies_s else float("nan")

    @property
    def p99_latency_s(self) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(self.latencies_s, 99))


def run_arc_campaign(detector: ArcDetector, num_streams: int = 60,
                     stream_samples: int = 2_048, noise: float = 0.02,
                     seed: int = 0) -> CampaignStats:
    """Evaluate the detector on fresh synthetic streams (half with arcs)."""
    rng = np.random.default_rng(seed)
    stats = CampaignStats()
    for index in range(num_streams):
        has_arc = index % 2 == 0
        if has_arc:
            arc_start = int(rng.integers(stream_samples // 4,
                                         stream_samples // 2))
            stream = _stream_with_arc(stream_samples, arc_start, noise, rng)
            result = detector.scan(stream, arc_start_sample=arc_start)
            stats.arcs += 1
            if result.tripped:
                stats.arcs_detected += 1
                stats.latencies_s.append(result.trip.latency_s)
        else:
            stream = _stream_with_arc(stream_samples, None, noise, rng)
            result = detector.scan(stream)
            stats.normals += 1
            if result.tripped:
                stats.false_trips += 1
    return stats


def _stream_with_arc(samples: int, arc_start: Optional[int], noise: float,
                     rng: np.random.Generator) -> np.ndarray:
    """A long current stream, arcing from ``arc_start`` (None = clean)."""
    if arc_start is None:
        return dc_current_window(False, window=samples, noise=noise, rng=rng)
    clean = dc_current_window(False, window=arc_start, noise=noise, rng=rng)
    arcing = dc_current_window(True, window=samples - arc_start, noise=noise,
                               arc_start=0, rng=rng)
    return np.concatenate([clean, arcing])
