"""Use-case applications: automotive, industrial IoT, and smart home."""

from . import automotive, industrial, smarthome

__all__ = ["automotive", "industrial", "smarthome"]
