"""Layer-wise model splitting between car and edge (Neurosurgeon-style).

Completes the PAEB distribution spectrum (Sec. V-A: "the distribution of
the deep learning models … between different on-car systems and edge
devices"): instead of choosing *where* to run the whole detector, cut it
after any layer — the head runs on-car, the boundary activations cross the
mobile network, the tail runs on the edge station.

The study is analytic: per-layer roofline times on each platform (prefix
sums) plus boundary traffic per cut, so the full curve over hundreds of
cut positions costs two model predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...core.partition import enumerate_splits
from ...hw.accelerators import AcceleratorSpec
from ...hw.performance_model import RooflineModel
from ...ir.graph import Graph
from .network import ChannelSample


@dataclass(frozen=True)
class SplitOption:
    """One strategy: cut after ``position`` layers (0 = all edge, N = all car).

    ``boundary_bytes`` is what crosses the network: the raw input frame for
    position 0, the cut activations otherwise, nothing at position N.
    """

    position: int
    boundary_bytes: int
    latency_s: float
    oncar_energy_j: float
    after_node: str

    @property
    def kind(self) -> str:
        if self.position == 0:
            return "all-edge"
        if self.boundary_bytes == 0:
            return "all-oncar"
        return "split"


class SplitOffloadStudy:
    """Evaluates every cut of a detector between two platforms."""

    def __init__(self, detector: Graph, oncar: AcceleratorSpec,
                 edge: AcceleratorSpec,
                 radio_tx_power_w: float = 2.2,
                 activation_compression: float = 1.0) -> None:
        """``activation_compression`` > 1 models quantizing/compressing the
        boundary activations before transmission (e.g. 4.0 for INT8)."""
        self.detector = detector
        self.radio_tx_power_w = radio_tx_power_w
        self.activation_compression = activation_compression
        oncar_prediction = RooflineModel(oncar).predict(detector, batch=1,
                                                        keep_layers=True)
        edge_prediction = RooflineModel(edge).predict(detector, batch=1,
                                                      keep_layers=True)
        self._oncar_layer_s = [l.seconds for l in oncar_prediction.layers]
        self._edge_layer_s = [l.seconds for l in edge_prediction.layers]
        self._oncar_power_w = oncar_prediction.avg_power_w
        self._splits = enumerate_splits(detector)
        self._input_bytes = sum(s.size_bytes for s in detector.inputs)

    # -- per-strategy costing ---------------------------------------------------

    def _option(self, position: int, channel: ChannelSample) -> SplitOption:
        total = len(self._oncar_layer_s)
        head_s = sum(self._oncar_layer_s[:position])
        tail_s = sum(self._edge_layer_s[position:])
        if position == 0:
            boundary = self._input_bytes
            after = "(input frame)"
        elif position == total:
            boundary = 0
            after = "(no transfer)"
        else:
            point = self._splits[position - 1]
            boundary = int(point.boundary_bytes
                           / self.activation_compression)
            after = point.after_node
        transfer_s = channel.uplink_seconds(boundary) if boundary else 0.0
        latency = head_s + transfer_s + tail_s
        energy = (self._oncar_power_w * head_s
                  + self.radio_tx_power_w * transfer_s)
        return SplitOption(position, boundary, latency, energy, after)

    # -- the study ------------------------------------------------------------------

    def curve(self, channel: ChannelSample) -> List[SplitOption]:
        """Every strategy from all-edge (0) to all-on-car (N)."""
        total = len(self._oncar_layer_s)
        return [self._option(position, channel)
                for position in range(total + 1)]

    def best(self, channel: ChannelSample, deadline_s: float,
             objective: str = "oncar_energy") -> SplitOption:
        """Best feasible strategy under ``deadline_s``.

        ``objective`` is ``"oncar_energy"`` (the paper's goal) or
        ``"latency"``.  Falls back to the lowest-latency option when
        nothing meets the deadline.
        """
        options = self.curve(channel)
        feasible = [o for o in options if o.latency_s <= deadline_s]
        if not feasible:
            return min(options, key=lambda o: o.latency_s)
        if objective == "latency":
            return min(feasible, key=lambda o: o.latency_s)
        return min(feasible, key=lambda o: o.oncar_energy_j)

    def endpoints(self, channel: ChannelSample
                  ) -> Sequence[SplitOption]:
        """(all-edge, all-on-car) for baseline comparison."""
        total = len(self._oncar_layer_s)
        return (self._option(0, channel), self._option(total, channel))
