"""Mobile-network model for the PAEB offloading use case.

Paper Sec. V-A: "Dynamic distributing of sensor data to edge stations …
requires quick monitoring of available mobile networks, their speed and
latency, available computing resources of the edge devices and a management
system that can quickly react to the current situation."

The channel model captures what matters for the offload decision: effective
uplink bandwidth and round-trip latency that degrade with vehicle speed
(handovers, Doppler), log-normal fading, and occasional outages.  It is the
calibrated stochastic substitute for a real cellular modem (DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ChannelSample:
    """Network state observed during one monitoring interval."""

    bandwidth_mbps: float
    rtt_ms: float
    available: bool

    def uplink_seconds(self, num_bytes: int) -> float:
        """Time to push ``num_bytes`` plus half the RTT."""
        if not self.available:
            return float("inf")
        return num_bytes * 8 / (self.bandwidth_mbps * 1e6) \
            + self.rtt_ms / 2 * 1e-3

    def downlink_seconds(self, num_bytes: int) -> float:
        if not self.available:
            return float("inf")
        # Downlink is typically several times faster than uplink.
        return num_bytes * 8 / (self.bandwidth_mbps * 4 * 1e6) \
            + self.rtt_ms / 2 * 1e-3


class MobileNetwork:
    """Speed-dependent stochastic cellular channel.

    Parameters
    ----------
    base_bandwidth_mbps
        Uplink bandwidth when stationary under good coverage.
    base_rtt_ms
        Round-trip latency when stationary.
    speed_knee_kmh
        Speed at which bandwidth has dropped to half (handover churn).
    outage_probability
        Per-sample probability of a total outage (coverage hole).
    fading_sigma
        Log-normal shadow-fading spread.
    """

    def __init__(self, base_bandwidth_mbps: float = 40.0,
                 base_rtt_ms: float = 25.0,
                 speed_knee_kmh: float = 90.0,
                 outage_probability: float = 0.01,
                 fading_sigma: float = 0.35,
                 seed: int = 0) -> None:
        if base_bandwidth_mbps <= 0 or base_rtt_ms <= 0:
            raise ValueError("bandwidth and RTT must be positive")
        if not 0 <= outage_probability < 1:
            raise ValueError("outage probability must be in [0, 1)")
        self.base_bandwidth_mbps = base_bandwidth_mbps
        self.base_rtt_ms = base_rtt_ms
        self.speed_knee_kmh = speed_knee_kmh
        self.outage_probability = outage_probability
        self.fading_sigma = fading_sigma
        self.rng = np.random.default_rng(seed)

    def mean_bandwidth_mbps(self, speed_kmh: float) -> float:
        """Deterministic speed-degradation curve (before fading)."""
        knee = self.speed_knee_kmh
        return self.base_bandwidth_mbps * knee / (knee + max(0.0, speed_kmh))

    def mean_rtt_ms(self, speed_kmh: float) -> float:
        return self.base_rtt_ms * (1.0 + max(0.0, speed_kmh) / 200.0)

    def sample(self, speed_kmh: float) -> ChannelSample:
        """Draw the channel state for one monitoring interval."""
        if self.rng.random() < self.outage_probability:
            return ChannelSample(0.0, float("inf"), False)
        fading = float(np.exp(self.rng.normal(0.0, self.fading_sigma)))
        bandwidth = self.mean_bandwidth_mbps(speed_kmh) * fading
        jitter = float(np.exp(self.rng.normal(0.0, 0.2)))
        rtt = self.mean_rtt_ms(speed_kmh) * jitter
        return ChannelSample(bandwidth, rtt, True)

    def reliability(self, speed_kmh: float, deadline_s: float,
                    payload_bytes: int, samples: int = 64) -> float:
        """Monte-Carlo estimate of P(round trip fits in ``deadline_s``).

        This is the "quick monitoring" statistic the decision engine keys
        on; it degrades with speed, which drives the paper's crossover.
        """
        hits = 0
        for _ in range(samples):
            channel = self.sample(speed_kmh)
            total = channel.uplink_seconds(payload_bytes) \
                + channel.downlink_seconds(256)
            if total <= deadline_s:
                hits += 1
        return hits / samples
