"""Automotive use case: PAEB with dynamic edge offloading (paper Sec. V-A)."""

from .network import ChannelSample, MobileNetwork
from .split import SplitOffloadStudy, SplitOption
from .paeb import (
    DriveStats,
    EdgeStation,
    ExecutionOption,
    OffloadDecisionEngine,
    PaebSimulation,
    braking_deadline_s,
    default_paeb_setup,
)

__all__ = [
    "ChannelSample", "MobileNetwork",
    "DriveStats", "EdgeStation", "ExecutionOption", "OffloadDecisionEngine",
    "PaebSimulation", "braking_deadline_s", "default_paeb_setup",
    "SplitOffloadStudy", "SplitOption",
]
