"""Pedestrian Automatic Emergency Braking with dynamic edge offloading.

Paper Sec. V-A: PAEB is the automotive use case — distribute "the deep
learning models and the decision making between different on-car systems
and edge devices at varying speeds and reliability of mobile networks …
The overall goal is to optimize the energy efficiency in total and minimize
the on-car energy consumption.  Sending raw sensor data via a mobile
network to an edge station always implies a high-security risk.  Therefore,
an integration of VEDLIoT's remote attestation approach is of importance."

Pieces modeled here:

* braking physics -> per-frame detection deadline as a function of speed,
* on-car vs. edge execution costs (roofline predictions on real platform
  specs, channel transfer times),
* the offload decision engine (energy-optimal subject to deadline and
  reliability, with optional hysteresis — the DESIGN.md ablation),
* attestation gating: raw frames go only to edge nodes that pass remote
  attestation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...hw.accelerators import AcceleratorSpec, get_accelerator
from ...hw.performance_model import Prediction, RooflineModel
from ...ir.graph import Graph
from .network import ChannelSample, MobileNetwork

GRAVITY = 9.81


def braking_deadline_s(speed_kmh: float, sensing_range_m: float = 60.0,
                       reaction_margin_s: float = 0.15,
                       friction: float = 0.7) -> float:
    """Detection deadline: time budget before braking must begin.

    The car must finish detection + decision while the pedestrian is still
    far enough away that braking (at ``friction`` x g) stops the car short:
    deadline = (range - braking_distance) / v - reaction margin.
    """
    v = max(speed_kmh, 1.0) / 3.6
    braking_distance = v * v / (2 * friction * GRAVITY)
    slack_m = sensing_range_m - braking_distance
    deadline = slack_m / v - reaction_margin_s
    return max(deadline, 0.01)


@dataclass(frozen=True)
class ExecutionOption:
    """Cost of running the detector in one place for one frame."""

    where: str                    # "oncar" | edge node name
    latency_s: float
    oncar_energy_j: float
    total_energy_j: float
    feasible: bool


@dataclass
class EdgeStation:
    """An edge node offering inference service."""

    name: str
    platform: AcceleratorSpec
    attested: bool = True
    load_factor: float = 1.0      # >1 when shared with other clients

    def prediction(self, graph: Graph) -> Prediction:
        return RooflineModel(self.platform).predict(graph, batch=1)


class OffloadDecisionEngine:
    """Chooses where each frame is processed.

    Policy: among feasible options (meets deadline with margin; edge
    options additionally need channel reliability and attestation), pick
    the one minimizing *on-car* energy — the paper's stated objective.
    Falls back to on-car execution when no edge option qualifies; on-car is
    always executed even if the deadline is tight (braking is safety-
    critical, the kernel handles the miss).

    ``hysteresis`` > 0 keeps the previous placement unless the new one is
    better by that relative margin, suppressing flapping on a noisy channel
    (ablated in the Txt-E benchmark).
    """

    def __init__(self, detector: Graph, oncar_platform: AcceleratorSpec,
                 stations: Sequence[EdgeStation],
                 frame_bytes: int = 60_000,  # JPEG/H.264-compressed frame
                 deadline_margin: float = 0.8,
                 min_reliability: float = 0.9,
                 radio_tx_power_w: float = 2.2,
                 hysteresis: float = 0.0) -> None:
        self.detector = detector
        self.oncar = RooflineModel(oncar_platform).predict(detector, batch=1)
        self.stations = list(stations)
        self.edge_predictions: Dict[str, Prediction] = {
            s.name: s.prediction(detector) for s in self.stations
        }
        self.frame_bytes = frame_bytes
        self.deadline_margin = deadline_margin
        self.min_reliability = min_reliability
        self.radio_tx_power_w = radio_tx_power_w
        self.hysteresis = hysteresis
        self._last_choice: Optional[str] = None

    # -- option costing ------------------------------------------------------------

    def oncar_option(self, deadline_s: float) -> ExecutionOption:
        latency = self.oncar.latency_s
        energy = self.oncar.energy_per_inference_j
        return ExecutionOption(
            "oncar", latency, energy, energy,
            feasible=latency <= deadline_s * self.deadline_margin,
        )

    def edge_option(self, station: EdgeStation, channel: ChannelSample,
                    reliability: float, deadline_s: float) -> ExecutionOption:
        uplink = channel.uplink_seconds(self.frame_bytes)
        downlink = channel.downlink_seconds(256)
        compute = self.edge_predictions[station.name].latency_s \
            * station.load_factor
        latency = uplink + compute + downlink
        oncar_energy = self.radio_tx_power_w * uplink  # radio is the car's cost
        total = oncar_energy + \
            self.edge_predictions[station.name].energy_per_inference_j
        feasible = (station.attested
                    and reliability >= self.min_reliability
                    and latency <= deadline_s * self.deadline_margin)
        return ExecutionOption(station.name, latency, oncar_energy, total,
                               feasible)

    # -- the decision ---------------------------------------------------------------

    def decide(self, speed_kmh: float, channel: ChannelSample,
               reliability: float) -> ExecutionOption:
        deadline = braking_deadline_s(speed_kmh)
        options = [self.oncar_option(deadline)]
        for station in self.stations:
            options.append(self.edge_option(station, channel, reliability,
                                            deadline))
        feasible = [o for o in options if o.feasible]
        if not feasible:
            choice = options[0]  # on-car fallback, deadline or not
        else:
            best = min(feasible, key=lambda o: o.oncar_energy_j)
            choice = best
            if self.hysteresis and self._last_choice:
                previous = next((o for o in feasible
                                 if o.where == self._last_choice), None)
                if previous is not None and best.where != previous.where:
                    improvement = (previous.oncar_energy_j
                                   - best.oncar_energy_j)
                    if improvement < self.hysteresis * previous.oncar_energy_j:
                        choice = previous
        self._last_choice = choice.where
        return choice


@dataclass
class DriveStats:
    """Aggregate outcome of a simulated drive."""

    frames: int = 0
    offloaded: int = 0
    deadline_misses: int = 0
    oncar_energy_j: float = 0.0
    total_energy_j: float = 0.0
    always_oncar_energy_j: float = 0.0
    switches: int = 0

    @property
    def offload_fraction(self) -> float:
        return self.offloaded / self.frames if self.frames else 0.0

    @property
    def oncar_energy_saving(self) -> float:
        if not self.always_oncar_energy_j:
            return 0.0
        return 1.0 - self.oncar_energy_j / self.always_oncar_energy_j


class PaebSimulation:
    """Frame-by-frame simulation of a drive with dynamic offloading."""

    def __init__(self, engine: OffloadDecisionEngine,
                 network: MobileNetwork, frame_rate_hz: float = 10.0) -> None:
        self.engine = engine
        self.network = network
        self.frame_rate_hz = frame_rate_hz

    def run(self, speed_profile_kmh: Sequence[float]) -> DriveStats:
        stats = DriveStats()
        previous_choice: Optional[str] = None
        for speed in speed_profile_kmh:
            deadline = braking_deadline_s(speed)
            channel = self.network.sample(speed)
            reliability = self.network.reliability(
                speed, deadline * self.engine.deadline_margin,
                self.engine.frame_bytes, samples=24)
            option = self.engine.decide(speed, channel, reliability)
            stats.frames += 1
            if option.where != "oncar":
                stats.offloaded += 1
            if option.latency_s > deadline:
                stats.deadline_misses += 1
            stats.oncar_energy_j += option.oncar_energy_j
            stats.total_energy_j += option.total_energy_j
            stats.always_oncar_energy_j += \
                self.engine.oncar.energy_per_inference_j
            if previous_choice is not None and option.where != previous_choice:
                stats.switches += 1
            previous_choice = option.where
        return stats


def default_paeb_setup(detector: Graph,
                       oncar: str = "JetsonTX2",
                       edge: str = "GTX1660",
                       seed: int = 0,
                       hysteresis: float = 0.0
                       ) -> Tuple[OffloadDecisionEngine, MobileNetwork]:
    """The reference configuration: TX2 on-car, GTX1660 edge station."""
    engine = OffloadDecisionEngine(
        detector,
        oncar_platform=get_accelerator(oncar),
        stations=[EdgeStation("edge-0", get_accelerator(edge))],
        hysteresis=hysteresis,
    )
    return engine, MobileNetwork(seed=seed)
