"""Smart home use case: the smart-mirror demonstrator (paper Sec. V-C)."""

from .mirror import (
    GESTURE_CLASSES,
    PipelineSpec,
    PrivacyBoundary,
    PrivacyViolation,
    SmartMirror,
    TickResult,
    build_default_mirror,
)

__all__ = [
    "GESTURE_CLASSES", "PipelineSpec", "PrivacyBoundary", "PrivacyViolation",
    "SmartMirror", "TickResult", "build_default_mirror",
]
