"""Smart Mirror: four concurrent neural networks on an embedded platform.

Paper Sec. V-C and Fig. 5: "a camera and a microphone are providing input
data, and four different neural networks are used to detect gestures,
faces, objects and speech to interact with people.  The distribution of
data to the cloud is not desirable because of privacy concerns of the
residents.  Therefore, all sensing and interaction is performed on-site in
real-time, making low power and energy efficiency computations a prime
concern."

Modeled: the four pipelines (gesture, face, object, speech), a frame
scheduler that fits them into the real-time budget of an embedded
accelerator, the privacy boundary that rejects any off-site data flow, and
per-network latency/energy accounting (the Fig. 5 benchmark output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...datasets.audio import KEYWORD_CLASSES, audio_features
from ...hw.accelerators import AcceleratorSpec, get_accelerator
from ...hw.performance_model import Prediction, RooflineModel
from ...ir.graph import Graph
from ...runtime.executor import Executor

GESTURE_CLASSES = ("none", "swipe_left", "swipe_right", "palm")


class PrivacyViolation(RuntimeError):
    """Raised when sensor data would leave the on-site boundary."""


class PrivacyBoundary:
    """Data-flow guard: raw sensor data must stay on-site.

    Every transfer of sensor-derived data is recorded; transfers to
    non-local endpoints raise.  The smart-mirror tests assert the audit
    log shows zero off-site flows after a full interaction session.
    """

    LOCAL_ENDPOINTS = frozenset(("display", "local-storage", "local-bus"))

    def __init__(self) -> None:
        self.transfers: List[Tuple[str, str]] = []

    def transfer(self, what: str, endpoint: str) -> None:
        if endpoint not in self.LOCAL_ENDPOINTS:
            raise PrivacyViolation(
                f"attempt to send {what!r} to off-site endpoint {endpoint!r}"
            )
        self.transfers.append((what, endpoint))

    @property
    def offsite_transfers(self) -> int:
        return 0  # by construction: off-site transfers raise


@dataclass
class PipelineSpec:
    """One of the four mirror pipelines."""

    name: str
    model: Graph
    classes: Tuple[str, ...]
    modality: str                 # "video" | "audio"
    preprocess: Callable[[np.ndarray], np.ndarray]

    def __post_init__(self) -> None:
        out_name = self.model.output_names[0]
        out_spec = self.model.infer_specs()[out_name]
        if out_spec.shape[-1] != len(self.classes):
            raise ValueError(
                f"pipeline {self.name!r}: model emits {out_spec.shape[-1]} "
                f"scores but {len(self.classes)} class names were given"
            )


@dataclass
class TickResult:
    """Outputs of one mirror tick (one camera frame + audio hop)."""

    outputs: Dict[str, str]       # pipeline -> predicted class
    latency_s: float              # summed predicted latency on the platform
    energy_j: float
    within_budget: bool


class SmartMirror:
    """The demonstrator: four pipelines sharing one embedded accelerator."""

    def __init__(self, pipelines: Sequence[PipelineSpec],
                 platform: Optional[AcceleratorSpec] = None,
                 frame_budget_s: float = 1 / 15.0) -> None:
        if not pipelines:
            raise ValueError("mirror needs at least one pipeline")
        self.pipelines = list(pipelines)
        self.platform = platform or get_accelerator("ZynqZU3")
        self.frame_budget_s = frame_budget_s
        self.boundary = PrivacyBoundary()
        self._executors = {p.name: Executor(p.model) for p in self.pipelines}
        model = RooflineModel(self.platform)
        self.predictions: Dict[str, Prediction] = {
            p.name: model.predict(p.model, batch=1) for p in self.pipelines
        }

    # -- per-tick processing --------------------------------------------------------

    def tick(self, frame: np.ndarray, audio: np.ndarray) -> TickResult:
        """Process one camera frame and audio hop through all pipelines."""
        outputs: Dict[str, str] = {}
        latency = 0.0
        energy = 0.0
        for pipeline in self.pipelines:
            raw = frame if pipeline.modality == "video" else audio
            features = pipeline.preprocess(raw)
            executor = self._executors[pipeline.name]
            result = executor.run({pipeline.model.inputs[0].name: features})
            scores = result[pipeline.model.output_names[0]].reshape(-1)
            outputs[pipeline.name] = pipeline.classes[int(np.argmax(scores))]
            prediction = self.predictions[pipeline.name]
            latency += prediction.latency_s
            energy += prediction.energy_per_inference_j
        # Results go to the on-site display only.
        self.boundary.transfer("inference-results", "display")
        return TickResult(outputs, latency, energy,
                          within_budget=latency <= self.frame_budget_s)

    # -- reporting ---------------------------------------------------------------------

    def budget_report(self) -> str:
        """Per-network latency/energy table on the chosen platform (Fig. 5)."""
        lines = [f"smart mirror on {self.platform.name} "
                 f"(budget {self.frame_budget_s * 1e3:.1f} ms/frame):",
                 f"{'pipeline':<12}{'lat ms':>9}{'mJ/inf':>9}{'share':>8}"]
        total = 0.0
        total_energy = 0.0
        for pipeline in self.pipelines:
            prediction = self.predictions[pipeline.name]
            total += prediction.latency_s
            total_energy += prediction.energy_per_inference_j
        for pipeline in self.pipelines:
            prediction = self.predictions[pipeline.name]
            lines.append(
                f"{pipeline.name:<12}{prediction.latency_s * 1e3:>9.2f}"
                f"{prediction.energy_per_inference_j * 1e3:>9.2f}"
                f"{prediction.latency_s / total:>8.1%}"
            )
        fits = "fits" if total <= self.frame_budget_s else "EXCEEDS"
        lines.append(f"{'total':<12}{total * 1e3:>9.2f}"
                     f"{total_energy * 1e3:>9.2f}   ({fits} budget)")
        return "\n".join(lines)

    @property
    def sustained_power_w(self) -> float:
        """Average platform power running all pipelines at the frame rate."""
        energy_per_tick = sum(p.energy_per_inference_j
                              for p in self.predictions.values())
        return energy_per_tick / self.frame_budget_s \
            + self.platform.idle_w * 0.2


def build_default_mirror(trained_models: Dict[str, Graph],
                         platform: Optional[AcceleratorSpec] = None,
                         residents: Tuple[str, ...] = ("alice", "bob",
                                                       "carol", "unknown"),
                         ) -> SmartMirror:
    """Assemble the four-pipeline mirror from trained batch-1 models.

    ``trained_models`` must provide "gesture", "face", "object", "speech"
    graphs (batch 1); see ``examples/smart_mirror_demo.py`` for training.
    """
    def video_passthrough(frame: np.ndarray) -> np.ndarray:
        return frame[None] if frame.ndim == 3 else frame

    def audio_preprocess(wave: np.ndarray) -> np.ndarray:
        return audio_features(wave)[None]

    object_classes = ("person", "chair", "bottle", "phone")
    pipelines = [
        PipelineSpec("gesture", trained_models["gesture"], GESTURE_CLASSES,
                     "video", video_passthrough),
        PipelineSpec("face", trained_models["face"], residents,
                     "video", video_passthrough),
        PipelineSpec("object", trained_models["object"], object_classes,
                     "video", video_passthrough),
        PipelineSpec("speech", trained_models["speech"], KEYWORD_CLASSES,
                     "audio", audio_preprocess),
    ]
    return SmartMirror(pipelines, platform=platform)
