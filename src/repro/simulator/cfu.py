"""Custom Function Units: ML accelerators tightly coupled to the CPU.

"During the course of the project, Renode is enhanced with capabilities of
simulating Custom Function Units, or CFUs … providing functionality
explicitly designed for the planned ML workflow" (paper Sec. II-B).  The
CFUs here mirror the CFU-Playground style of accelerator: a SIMD
multiply-accumulate unit for quantized inference inner loops, plus simple
combinational helpers.  The Txt-H benchmark compares a software dot product
against the CFU-accelerated version on the same simulated core.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .cpu import Cfu

_MASK32 = 0xFFFFFFFF


def _s8(byte: int) -> int:
    byte &= 0xFF
    return byte - 256 if byte & 0x80 else byte


class SimdMacCfu(Cfu):
    """SIMD int8 multiply-accumulate unit with an internal accumulator.

    Operations (funct3):
        0: acc += dot4(rs1, rs2)   four int8 x int8 products; returns acc
        1: read accumulator
        2: reset accumulator to rs1
        3: dot4 without accumulation (combinational)
    """

    name = "simd_mac"

    def __init__(self) -> None:
        self.accumulator = 0
        self.mac_count = 0

    def _dot4(self, a: int, b: int) -> int:
        return sum(
            _s8(a >> shift) * _s8(b >> shift) for shift in (0, 8, 16, 24)
        )

    def execute(self, funct3: int, funct7: int, rs1: int, rs2: int) -> int:
        if funct3 == 0:
            self.accumulator = (self.accumulator + self._dot4(rs1, rs2)) \
                & _MASK32
            self.mac_count += 1
            return self.accumulator
        if funct3 == 1:
            return self.accumulator
        if funct3 == 2:
            self.accumulator = rs1 & _MASK32
            return self.accumulator
        if funct3 == 3:
            return self._dot4(rs1, rs2) & _MASK32
        raise ValueError(f"{self.name}: unknown funct3 {funct3}")

    def cycles(self, funct3: int, funct7: int) -> int:
        return 1  # fully pipelined


class PopcountCfu(Cfu):
    """Combinational popcount/bit-reverse helpers (binary networks)."""

    name = "popcount"

    def execute(self, funct3: int, funct7: int, rs1: int, rs2: int) -> int:
        if funct3 == 0:
            return bin(rs1 & _MASK32).count("1")
        if funct3 == 1:  # xnor-popcount: the binary-network inner product
            return bin(~(rs1 ^ rs2) & _MASK32).count("1")
        if funct3 == 2:
            return int(f"{rs1 & _MASK32:032b}"[::-1], 2)
        raise ValueError(f"{self.name}: unknown funct3 {funct3}")


class MultiCfu(Cfu):
    """Dispatches funct7 to one of several sub-CFUs (a CFU 'bus')."""

    name = "multi"

    def __init__(self, units: Dict[int, Cfu]) -> None:
        if not units:
            raise ValueError("MultiCfu needs at least one unit")
        self.units = dict(units)

    def _unit(self, funct7: int) -> Cfu:
        try:
            return self.units[funct7]
        except KeyError:
            raise ValueError(f"no CFU at funct7={funct7}") from None

    def execute(self, funct3: int, funct7: int, rs1: int, rs2: int) -> int:
        return self._unit(funct7).execute(funct3, 0, rs1, rs2)

    def cycles(self, funct3: int, funct7: int) -> int:
        return self._unit(funct7).cycles(funct3, 0)
