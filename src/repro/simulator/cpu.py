"""RV32IM functional CPU core with M/U privilege modes and CFU support.

The interpreter executes the RV32I base set plus the M extension, the
Zicsr system instructions, and the custom-0 opcode used to attach Custom
Function Units ("a CFU is an accelerator tightly coupled with the CPU",
paper Sec. II-B).  Privilege handling covers exactly the M-mode/U-mode
split the VEDLIoT PMP work targets; all memory traffic flows through the
system bus where the PMP guard can deny it, turning denials into access
fault traps.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .memory import (
    AccessType,
    AccessViolation,
    BusError,
    PrivilegeMode,
    SystemBus,
)

# Trap causes (mcause values).
CAUSE_INSTRUCTION_ACCESS_FAULT = 1
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_LOAD_ACCESS_FAULT = 5
CAUSE_STORE_ACCESS_FAULT = 7
CAUSE_ECALL_FROM_U = 8
CAUSE_ECALL_FROM_M = 11
# Interrupt causes carry the top bit in mcause.
INTERRUPT_BIT = 0x8000_0000
CAUSE_MACHINE_TIMER_INTERRUPT = INTERRUPT_BIT | 7
MIP_MTIP = 1 << 7  # machine timer interrupt pending/enable bit

# CSR addresses.
CSR_MSTATUS = 0x300
CSR_MISA = 0x301
CSR_MIE = 0x304
CSR_MTVEC = 0x305
CSR_MSCRATCH = 0x340
CSR_MEPC = 0x341
CSR_MCAUSE = 0x342
CSR_MTVAL = 0x343
CSR_MIP = 0x344
CSR_PMPCFG0 = 0x3A0
CSR_PMPADDR0 = 0x3B0
CSR_MCYCLE = 0xB00
CSR_CYCLE = 0xC00

_MASK32 = 0xFFFFFFFF

OPCODE_CUSTOM0 = 0x0B  # CFU instructions live on custom-0


def _signed(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


class Cfu:
    """Interface of a Custom Function Unit.

    CFUs are combinational or stateful co-processors selected by the
    funct3/funct7 fields of the custom-0 R-type instruction.
    """

    name = "cfu"

    def execute(self, funct3: int, funct7: int, rs1: int, rs2: int) -> int:
        """Compute the result written to rd; values are 32-bit unsigned."""
        raise NotImplementedError

    def cycles(self, funct3: int, funct7: int) -> int:
        """Extra cycles the operation stalls the pipeline (default single)."""
        return 1


class HaltRequested(Exception):
    """Internal signal used by the machine to stop the run loop."""


class Cpu:
    """A single RV32IM hart."""

    def __init__(self, bus: SystemBus, reset_pc: int = 0x8000_0000,
                 cfu: Optional[Cfu] = None, pmp=None) -> None:
        self.bus = bus
        self.reset_pc = reset_pc
        self.cfu = cfu
        self.pmp = pmp  # repro.security.pmp.PmpUnit or None
        self.regs: List[int] = [0] * 32
        self.pc = reset_pc
        self.mode = PrivilegeMode.MACHINE
        self.cycles = 0
        self.instret = 0
        self.csrs: Dict[int, int] = {
            CSR_MSTATUS: 0,
            CSR_MISA: 0x4000_1100,  # RV32IM
            CSR_MIE: 0,
            CSR_MTVEC: 0,
            CSR_MSCRATCH: 0,
            CSR_MEPC: 0,
            CSR_MCAUSE: 0,
            CSR_MTVAL: 0,
            CSR_MIP: 0,
        }
        self.trap_count = 0
        self.last_trap_cause: Optional[int] = None

    # -- register helpers --------------------------------------------------------

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = value & _MASK32

    # -- trap handling ---------------------------------------------------------------

    def trap(self, cause: int, tval: int = 0) -> None:
        """Take a synchronous trap into M-mode."""
        self.trap_count += 1
        self.last_trap_cause = cause
        self.csrs[CSR_MEPC] = self.pc
        self.csrs[CSR_MCAUSE] = cause
        self.csrs[CSR_MTVAL] = tval & _MASK32
        status = self.csrs[CSR_MSTATUS]
        mie = (status >> 3) & 1
        status &= ~(1 << 7)
        status |= mie << 7                     # MPIE <- MIE
        status &= ~(1 << 3)                    # MIE <- 0
        status &= ~(0b11 << 11)
        status |= self.mode.value << 11        # MPP <- current mode
        self.csrs[CSR_MSTATUS] = status
        self.mode = PrivilegeMode.MACHINE
        self.pc = self.csrs[CSR_MTVEC] & ~0b11

    def _mret(self) -> None:
        if self.mode is not PrivilegeMode.MACHINE:
            self.trap(CAUSE_ILLEGAL_INSTRUCTION)
            return
        status = self.csrs[CSR_MSTATUS]
        mpp = (status >> 11) & 0b11
        mpie = (status >> 7) & 1
        status &= ~(1 << 3)
        status |= mpie << 3                    # MIE <- MPIE
        status |= 1 << 7                       # MPIE <- 1
        status &= ~(0b11 << 11)                # MPP <- U
        self.csrs[CSR_MSTATUS] = status
        self.mode = PrivilegeMode.MACHINE if mpp == 3 else PrivilegeMode.USER
        self.pc = self.csrs[CSR_MEPC]

    # -- CSR access --------------------------------------------------------------------

    def _csr_read(self, addr: int) -> int:
        if addr in (CSR_MCYCLE, CSR_CYCLE):
            return self.cycles & _MASK32
        if CSR_PMPCFG0 <= addr < CSR_PMPCFG0 + 4:
            return self._pmpcfg_read(addr - CSR_PMPCFG0)
        if CSR_PMPADDR0 <= addr < CSR_PMPADDR0 + 16:
            if self.pmp is None:
                return 0
            return self.pmp.entries[addr - CSR_PMPADDR0].addr
        if addr not in self.csrs:
            raise KeyError(addr)
        return self.csrs[addr]

    def _csr_write(self, addr: int, value: int) -> None:
        if addr in (CSR_MCYCLE,):
            self.cycles = value & _MASK32
            return
        if CSR_PMPCFG0 <= addr < CSR_PMPCFG0 + 4:
            self._pmpcfg_write(addr - CSR_PMPCFG0, value)
            return
        if CSR_PMPADDR0 <= addr < CSR_PMPADDR0 + 16:
            if self.pmp is not None:
                self.pmp.write_addr(addr - CSR_PMPADDR0, value)
            return
        if addr not in self.csrs:
            raise KeyError(addr)
        self.csrs[addr] = value & _MASK32

    def _pmpcfg_read(self, bank: int) -> int:
        if self.pmp is None:
            return 0
        value = 0
        for i in range(4):
            index = bank * 4 + i
            if index < len(self.pmp.entries):
                value |= self.pmp.entries[index].cfg << (8 * i)
        return value

    def _pmpcfg_write(self, bank: int, value: int) -> None:
        if self.pmp is None:
            return
        for i in range(4):
            index = bank * 4 + i
            if index < len(self.pmp.entries):
                cfg = (value >> (8 * i)) & 0xFF
                entry = self.pmp.entries[index]
                if not entry.locked:
                    entry.cfg = cfg & 0x9F

    def _csr_privileged(self, addr: int) -> bool:
        """True if ``addr`` requires M-mode (bits 9:8 of the CSR number)."""
        return ((addr >> 8) & 0b11) == 0b11 or addr == CSR_MCYCLE

    # -- memory access wrappers ------------------------------------------------------------

    def _load(self, address: int, size: int) -> int:
        try:
            return self.bus.read(address, size, self.mode)
        except (AccessViolation, BusError):
            raise _MemFault(CAUSE_LOAD_ACCESS_FAULT, address) from None

    def _store(self, address: int, size: int, value: int) -> None:
        try:
            self.bus.write(address, size, value, self.mode)
        except (AccessViolation, BusError):
            raise _MemFault(CAUSE_STORE_ACCESS_FAULT, address) from None

    # -- execution -------------------------------------------------------------------------------

    def set_timer_interrupt(self, pending: bool) -> None:
        """Drive the MTIP bit of mip (wired from the platform timer)."""
        if pending:
            self.csrs[CSR_MIP] |= MIP_MTIP
        else:
            self.csrs[CSR_MIP] &= ~MIP_MTIP

    def _service_interrupts(self) -> bool:
        """Take a pending enabled interrupt; True if one was taken.

        Machine-mode interrupts are taken from U-mode unconditionally and
        from M-mode only when mstatus.MIE is set (the privileged spec's
        rule for interrupts targeting the current privilege level).
        """
        if not (self.csrs[CSR_MIP] & self.csrs[CSR_MIE] & MIP_MTIP):
            return False
        mie = (self.csrs[CSR_MSTATUS] >> 3) & 1
        if self.mode is PrivilegeMode.MACHINE and not mie:
            return False
        self.trap(CAUSE_MACHINE_TIMER_INTERRUPT)
        return True

    def step(self) -> None:
        """Service interrupts, then fetch, decode and execute one instruction."""
        if self._service_interrupts():
            self.cycles += 1
            return
        pc = self.pc
        try:
            instruction = self.bus.fetch(pc, self.mode)
        except (AccessViolation, BusError):
            self.trap(CAUSE_INSTRUCTION_ACCESS_FAULT, pc)
            self.cycles += 1
            return
        try:
            self._execute(instruction)
            self.instret += 1
        except _MemFault as fault:
            self.trap(fault.cause, fault.address)
        except _Illegal:
            self.trap(CAUSE_ILLEGAL_INSTRUCTION, instruction)
        self.cycles += 1

    def _execute(self, insn: int) -> None:
        opcode = insn & 0x7F
        rd = (insn >> 7) & 0x1F
        funct3 = (insn >> 12) & 0x7
        rs1 = (insn >> 15) & 0x1F
        rs2 = (insn >> 20) & 0x1F
        funct7 = (insn >> 25) & 0x7F
        next_pc = (self.pc + 4) & _MASK32

        if opcode == 0x37:  # LUI
            self.write_reg(rd, insn & 0xFFFFF000)
        elif opcode == 0x17:  # AUIPC
            self.write_reg(rd, self.pc + (insn & 0xFFFFF000))
        elif opcode == 0x6F:  # JAL
            imm = (_sext(insn >> 31, 1) << 20) | (((insn >> 21) & 0x3FF) << 1) \
                | (((insn >> 20) & 1) << 11) | (((insn >> 12) & 0xFF) << 12)
            self.write_reg(rd, next_pc)
            next_pc = (self.pc + imm) & _MASK32
        elif opcode == 0x67 and funct3 == 0:  # JALR
            imm = _sext(insn >> 20, 12)
            target = (self.read_reg(rs1) + imm) & ~1 & _MASK32
            self.write_reg(rd, next_pc)
            next_pc = target
        elif opcode == 0x63:  # branches
            imm = (_sext(insn >> 31, 1) << 12) | (((insn >> 25) & 0x3F) << 5) \
                | (((insn >> 8) & 0xF) << 1) | (((insn >> 7) & 1) << 11)
            a, b = self.read_reg(rs1), self.read_reg(rs2)
            sa, sb = _signed(a), _signed(b)
            taken = {
                0: a == b, 1: a != b,
                4: sa < sb, 5: sa >= sb,
                6: a < b, 7: a >= b,
            }.get(funct3)
            if taken is None:
                raise _Illegal
            if taken:
                next_pc = (self.pc + imm) & _MASK32
        elif opcode == 0x03:  # loads
            imm = _sext(insn >> 20, 12)
            address = (self.read_reg(rs1) + imm) & _MASK32
            if funct3 == 0:
                self.write_reg(rd, _sext(self._load(address, 1), 8) & _MASK32)
            elif funct3 == 1:
                self.write_reg(rd, _sext(self._load(address, 2), 16) & _MASK32)
            elif funct3 == 2:
                self.write_reg(rd, self._load(address, 4))
            elif funct3 == 4:
                self.write_reg(rd, self._load(address, 1))
            elif funct3 == 5:
                self.write_reg(rd, self._load(address, 2))
            else:
                raise _Illegal
        elif opcode == 0x23:  # stores
            imm = (_sext(insn >> 31, 1) << 11) | (((insn >> 25) & 0x3F) << 5) \
                | ((insn >> 7) & 0x1F)
            address = (self.read_reg(rs1) + imm) & _MASK32
            value = self.read_reg(rs2)
            if funct3 == 0:
                self._store(address, 1, value)
            elif funct3 == 1:
                self._store(address, 2, value)
            elif funct3 == 2:
                self._store(address, 4, value)
            else:
                raise _Illegal
        elif opcode == 0x13:  # ALU immediate
            imm = _sext(insn >> 20, 12)
            a = self.read_reg(rs1)
            shamt = imm & 0x1F
            if funct3 == 0:
                result = a + imm
            elif funct3 == 2:
                result = 1 if _signed(a) < imm else 0
            elif funct3 == 3:
                result = 1 if a < (imm & _MASK32) else 0
            elif funct3 == 4:
                result = a ^ imm
            elif funct3 == 6:
                result = a | imm
            elif funct3 == 7:
                result = a & imm
            elif funct3 == 1 and funct7 == 0:
                result = a << shamt
            elif funct3 == 5 and funct7 == 0:
                result = a >> shamt
            elif funct3 == 5 and funct7 == 0x20:
                result = _signed(a) >> shamt
            else:
                raise _Illegal
            self.write_reg(rd, result)
        elif opcode == 0x33:  # ALU register / M extension
            a, b = self.read_reg(rs1), self.read_reg(rs2)
            if funct7 == 0x01:
                result = self._muldiv(funct3, a, b)
            else:
                sa, sb = _signed(a), _signed(b)
                shamt = b & 0x1F
                key = (funct3, funct7)
                if key == (0, 0):
                    result = a + b
                elif key == (0, 0x20):
                    result = a - b
                elif key == (1, 0):
                    result = a << shamt
                elif key == (2, 0):
                    result = 1 if sa < sb else 0
                elif key == (3, 0):
                    result = 1 if a < b else 0
                elif key == (4, 0):
                    result = a ^ b
                elif key == (5, 0):
                    result = a >> shamt
                elif key == (5, 0x20):
                    result = sa >> shamt
                elif key == (6, 0):
                    result = a | b
                elif key == (7, 0):
                    result = a & b
                else:
                    raise _Illegal
            self.write_reg(rd, result)
        elif opcode == 0x0F:  # FENCE / FENCE.I — no-ops for this model
            pass
        elif opcode == 0x73:
            self._system(insn, rd, funct3, rs1)
            return  # system instructions manage pc themselves when trapping
        elif opcode == OPCODE_CUSTOM0:
            if self.cfu is None:
                raise _Illegal
            result = self.cfu.execute(funct3, funct7, self.read_reg(rs1),
                                      self.read_reg(rs2))
            self.cycles += max(0, self.cfu.cycles(funct3, funct7) - 1)
            self.write_reg(rd, result & _MASK32)
        else:
            raise _Illegal

        self.pc = next_pc

    def _muldiv(self, funct3: int, a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        if funct3 == 0:    # MUL
            return (sa * sb) & _MASK32
        if funct3 == 1:    # MULH
            return ((sa * sb) >> 32) & _MASK32
        if funct3 == 2:    # MULHSU
            return ((sa * b) >> 32) & _MASK32
        if funct3 == 3:    # MULHU
            return ((a * b) >> 32) & _MASK32
        if funct3 == 4:    # DIV
            if b == 0:
                return _MASK32
            if sa == -0x80000000 and sb == -1:
                return 0x80000000
            return int(sa / sb) & _MASK32  # trunc toward zero
        if funct3 == 5:    # DIVU
            return _MASK32 if b == 0 else (a // b) & _MASK32
        if funct3 == 6:    # REM
            if b == 0:
                return a
            if sa == -0x80000000 and sb == -1:
                return 0
            return (sa - int(sa / sb) * sb) & _MASK32
        if funct3 == 7:    # REMU
            return a if b == 0 else (a % b) & _MASK32
        raise _Illegal

    def _system(self, insn: int, rd: int, funct3: int, rs1: int) -> None:
        next_pc = (self.pc + 4) & _MASK32
        imm12 = (insn >> 20) & 0xFFF
        if funct3 == 0:
            if imm12 == 0 and rs1 == 0 and rd == 0:      # ECALL
                cause = CAUSE_ECALL_FROM_M if self.mode is PrivilegeMode.MACHINE \
                    else CAUSE_ECALL_FROM_U
                self.trap(cause)
                return
            if imm12 == 1 and rs1 == 0 and rd == 0:      # EBREAK
                self.trap(CAUSE_BREAKPOINT)
                return
            if imm12 == 0x302 and rs1 == 0 and rd == 0:  # MRET
                self._mret()
                return
            if imm12 == 0x105:                            # WFI — treat as nop
                self.pc = next_pc
                return
            raise _Illegal
        # Zicsr
        csr = imm12
        if self._csr_privileged(csr) and self.mode is not PrivilegeMode.MACHINE:
            raise _Illegal
        write_value: Optional[int] = None
        operand = self.read_reg(rs1) if funct3 < 4 else rs1  # immediate forms
        try:
            old = self._csr_read(csr)
        except KeyError:
            raise _Illegal from None
        kind = funct3 & 0b11
        if kind == 1:                                     # CSRRW
            write_value = operand
        elif kind == 2 and operand:                       # CSRRS
            write_value = old | operand
        elif kind == 3 and operand:                       # CSRRC
            write_value = old & ~operand
        if write_value is not None:
            try:
                self._csr_write(csr, write_value)
            except KeyError:
                raise _Illegal from None
        self.write_reg(rd, old)
        self.pc = next_pc


class _MemFault(Exception):
    def __init__(self, cause: int, address: int) -> None:
        super().__init__(f"memory fault cause={cause} at 0x{address:08x}")
        self.cause = cause
        self.address = address


class _Illegal(Exception):
    pass
