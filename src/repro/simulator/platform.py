"""Declarative platform descriptions — the Renode ``.repl`` analogue.

Renode machines are assembled from platform description files rather than
code; VEDLIoT's CI builds many SoC variants that way.  This module does
the same for our simulator: a JSON/dict description names the RAM size,
the CFU, extra peripherals, and the PMP policy, and :func:`load_platform`
assembles the machine.  Example::

    {
      "name": "vexriscv-ml",
      "ram_size": 1048576,
      "cfu": "simd_mac",
      "peripherals": [
        {"type": "matvec", "base": 268566528, "macs_per_cycle": 32}
      ],
      "pmp": {
        "regions": [
          {"index": 0, "base": 2147483648, "size": 4096, "perms": "rx"},
          {"index": 1, "base": 2147487744, "size": 4096, "perms": "rw"}
        ]
      }
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Union

from .accelerator import ACCEL_BASE, MatVecAccelerator
from .cfu import PopcountCfu, SimdMacCfu
from .cpu import Cfu
from .machine import DEFAULT_RAM_SIZE, Machine


class PlatformError(ValueError):
    """Raised on malformed platform descriptions."""


_CFU_REGISTRY: Dict[str, Callable[[], Cfu]] = {
    "simd_mac": SimdMacCfu,
    "popcount": PopcountCfu,
}


def register_cfu_type(name: str, factory: Callable[[], Cfu]) -> None:
    """Make a CFU constructible from platform descriptions."""
    if name in _CFU_REGISTRY:
        raise PlatformError(f"CFU type {name!r} already registered")
    _CFU_REGISTRY[name] = factory


def _perms_from_string(text: str) -> int:
    from ..security.pmp import PMP_R, PMP_W, PMP_X

    mapping = {"r": PMP_R, "w": PMP_W, "x": PMP_X}
    perms = 0
    for ch in text.lower():
        if ch not in mapping:
            raise PlatformError(f"unknown PMP permission {ch!r}")
        perms |= mapping[ch]
    return perms


def _attach_matvec(machine: Machine, entry: Dict[str, Any]) -> None:
    from .accelerator import attach_accelerator

    attach_accelerator(
        machine,
        macs_per_cycle=int(entry.get("macs_per_cycle", 16)),
        setup_cycles=int(entry.get("setup_cycles", 40)),
        base=int(entry.get("base", ACCEL_BASE)),
    )


_PERIPHERAL_REGISTRY: Dict[str, Callable[[Machine, Dict[str, Any]], None]] = {
    "matvec": _attach_matvec,
}


def register_peripheral_type(
    name: str, attach: Callable[[Machine, Dict[str, Any]], None]
) -> None:
    """Make a peripheral constructible from platform descriptions."""
    if name in _PERIPHERAL_REGISTRY:
        raise PlatformError(f"peripheral type {name!r} already registered")
    _PERIPHERAL_REGISTRY[name] = attach


def load_platform(description: Union[Dict[str, Any], str, Path]) -> Machine:
    """Assemble a :class:`Machine` from a description dict or JSON file."""
    if isinstance(description, (str, Path)):
        try:
            description = json.loads(Path(description).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise PlatformError(f"cannot load platform file: {exc}") from exc
    if not isinstance(description, dict):
        raise PlatformError("platform description must be an object")

    unknown = set(description) - {"name", "ram_size", "cfu", "peripherals",
                                  "pmp"}
    if unknown:
        raise PlatformError(f"unknown platform keys: {sorted(unknown)}")

    cfu = None
    cfu_name = description.get("cfu")
    if cfu_name is not None:
        factory = _CFU_REGISTRY.get(cfu_name)
        if factory is None:
            raise PlatformError(
                f"unknown CFU type {cfu_name!r} "
                f"(available: {sorted(_CFU_REGISTRY)})"
            )
        cfu = factory()

    pmp = None
    pmp_description = description.get("pmp")
    if pmp_description is not None:
        from ..security.pmp import PmpUnit

        pmp = PmpUnit(int(pmp_description.get("entries", 16)))

    machine = Machine(
        ram_size=int(description.get("ram_size", DEFAULT_RAM_SIZE)),
        cfu=cfu, pmp=pmp,
    )

    if pmp is not None:
        for region in pmp_description.get("regions", ()):
            pmp.set_region(
                int(region["index"]),
                int(region["base"]),
                int(region["size"]),
                _perms_from_string(region.get("perms", "")),
                lock=bool(region.get("lock", False)),
            )

    for entry in description.get("peripherals", ()):
        kind = entry.get("type")
        attach = _PERIPHERAL_REGISTRY.get(kind)
        if attach is None:
            raise PlatformError(
                f"unknown peripheral type {kind!r} "
                f"(available: {sorted(_PERIPHERAL_REGISTRY)})"
            )
        attach(machine, entry)

    return machine
