"""Memory-mapped NN accelerator: the "statically configured" type.

The paper explores four DL accelerator types (Sec. II-B): (1) existing
off-the-shelf (the catalog in ``repro.hw``), (2) statically configured,
(3) dynamically reconfigurable (``repro.hw.reconfig``), and (4) fully
simultaneous co-design (the CFUs).  This module is type (2): a fixed-
function matrix-vector engine hanging off the system bus, programmed
through registers and fed by DMA from main memory — the classic loosely-
coupled NPU block, in contrast to the CFU's tight coupling.

Register map (word offsets from the device base):

    0x00  CTRL      write 1: start; reads 0 when idle / 1 while busy
    0x04  STATUS    bit0 done, bit1 error
    0x08  SRC_A     physical address of int8 weight matrix (rows x cols)
    0x0C  SRC_B     physical address of int8 input vector  (cols)
    0x10  DST       physical address of int32 result vector (rows)
    0x14  ROWS      matrix rows
    0x18  COLS      matrix cols
    0x1C  CYCLES    cycle cost of the last operation (read-only)

The device reads operands over the bus (so PMP policies and memory maps
apply), computes ``dst = A @ b`` in int8*int8 -> int32, and models its
latency as ``setup + rows*cols/macs_per_cycle`` cycles, which the machine
adds to the CPU cycle counter on completion — the co-design feedback
signal for the Txt-H-style comparisons.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .memory import AccessType, BusError, Peripheral, PrivilegeMode, SystemBus

ACCEL_BASE = 0x1002_0000

_CTRL = 0x00
_STATUS = 0x04
_SRC_A = 0x08
_SRC_B = 0x0C
_DST = 0x10
_ROWS = 0x14
_COLS = 0x18
_CYCLES = 0x1C

STATUS_DONE = 1 << 0
STATUS_ERROR = 1 << 1

MAX_DIM = 4096


class MatVecAccelerator(Peripheral):
    """Fixed-function int8 matrix-vector engine on the system bus."""

    def __init__(self, bus: SystemBus, macs_per_cycle: int = 16,
                 setup_cycles: int = 40) -> None:
        if macs_per_cycle < 1:
            raise ValueError("macs_per_cycle must be >= 1")
        self.bus = bus
        self.macs_per_cycle = macs_per_cycle
        self.setup_cycles = setup_cycles
        self.regs = {name: 0 for name in
                     (_SRC_A, _SRC_B, _DST, _ROWS, _COLS)}
        self.status = 0
        self.last_cycles = 0
        self.operations = 0
        self.total_cycles = 0

    # -- register interface --------------------------------------------------

    def read(self, offset: int, size: int) -> int:
        if offset == _CTRL:
            return 0  # the model completes synchronously: never busy
        if offset == _STATUS:
            return self.status
        if offset == _CYCLES:
            return self.last_cycles
        return self.regs.get(offset, 0)

    def write(self, offset: int, size: int, value: int) -> None:
        if offset == _CTRL:
            if value & 1:
                self._run()
            return
        if offset == _STATUS:
            self.status = 0  # write clears
            return
        if offset in self.regs:
            self.regs[offset] = value & 0xFFFFFFFF

    # -- the engine --------------------------------------------------------------

    def _run(self) -> None:
        rows = self.regs[_ROWS]
        cols = self.regs[_COLS]
        if not (0 < rows <= MAX_DIM and 0 < cols <= MAX_DIM):
            self.status = STATUS_ERROR
            return
        try:
            weights = self._read_block(self.regs[_SRC_A], rows * cols)
            vector = self._read_block(self.regs[_SRC_B], cols)
            matrix = weights.reshape(rows, cols).astype(np.int32)
            result = matrix @ vector.astype(np.int32)
            dst = self.regs[_DST]
            for index, value in enumerate(result):
                self.bus.write(dst + 4 * index, 4, int(value) & 0xFFFFFFFF,
                               PrivilegeMode.MACHINE)
        except BusError:
            self.status = STATUS_ERROR
            return
        self.last_cycles = self.setup_cycles + \
            -(-rows * cols // self.macs_per_cycle)
        self.operations += 1
        self.total_cycles += self.last_cycles
        self.status = STATUS_DONE

    def _read_block(self, address: int, count: int) -> np.ndarray:
        data = bytearray()
        # Word-wise DMA with a byte tail, as real masters do.
        for offset in range(0, count - count % 4, 4):
            word = self.bus.read(address + offset, 4, PrivilegeMode.MACHINE)
            data.extend(word.to_bytes(4, "little"))
        for offset in range(count - count % 4, count):
            data.append(self.bus.read(address + offset, 1,
                                      PrivilegeMode.MACHINE))
        return np.frombuffer(bytes(data), dtype=np.int8)


def attach_accelerator(machine, macs_per_cycle: int = 16,
                       setup_cycles: int = 40,
                       base: int = ACCEL_BASE) -> MatVecAccelerator:
    """Attach a matrix-vector engine to a machine's bus; returns the device.

    The device's modeled compute cycles accrue on the CPU counter when the
    guest polls STATUS (the charge point of this synchronous model).
    """
    device = MatVecAccelerator(machine.bus, macs_per_cycle, setup_cycles)
    machine.bus.register(base, 0x100, device, "matvec-accel")

    # Charge the accelerator's cycles to the machine when work completes.
    original_run = device._run

    def charged_run() -> None:
        original_run()
        machine.cpu.cycles += device.last_cycles

    device._run = charged_run  # type: ignore[method-assign]
    return device
