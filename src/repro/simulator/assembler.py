"""A small two-pass RV32IM assembler for simulator programs.

Renode runs "the same software that would be used on hardware"; our
equivalent is assembling real RISC-V machine code for the functional core.
Supports the RV32I base set, the M extension, Zicsr, the usual pseudo
instructions (li, mv, j, call, ret, nop, ...), labels, and the custom-0
CFU instruction as ``cfu rd, rs1, rs2, funct3, funct7``.

Syntax example::

    loop:
        addi  x1, x1, -1
        bnez  x1, loop
        li    a0, 0x10000000
        sb    a1, 0(a0)
        ecall
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

_MASK32 = 0xFFFFFFFF

_REG_ALIASES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22,
    "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

_CSR_NAMES = {
    "mstatus": 0x300, "misa": 0x301, "mie": 0x304, "mtvec": 0x305,
    "mscratch": 0x340, "mepc": 0x341, "mcause": 0x342, "mtval": 0x343,
    "mip": 0x344, "mcycle": 0xB00, "cycle": 0xC00,
}
for _i in range(4):
    _CSR_NAMES[f"pmpcfg{_i}"] = 0x3A0 + _i
for _i in range(16):
    _CSR_NAMES[f"pmpaddr{_i}"] = 0x3B0 + _i


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""


def _reg(token: str) -> int:
    token = token.strip().lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    if token.startswith("x"):
        try:
            index = int(token[1:])
        except ValueError:
            raise AssemblyError(f"bad register {token!r}") from None
        if 0 <= index < 32:
            return index
    raise AssemblyError(f"bad register {token!r}")


def _csr(token: str) -> int:
    token = token.strip().lower()
    if token in _CSR_NAMES:
        return _CSR_NAMES[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad CSR {token!r}") from None


class Assembler:
    """Two-pass assembler producing little-endian machine code."""

    def __init__(self, origin: int = 0x8000_0000) -> None:
        self.origin = origin

    def assemble(self, source: str) -> bytes:
        lines = self._clean(source)
        labels = self._collect_labels(lines)
        words: List[int] = []
        pc = self.origin
        for line_no, text in lines:
            if text.endswith(":"):
                continue
            try:
                encoded = self._encode(text, pc, labels)
            except AssemblyError as exc:
                raise AssemblyError(f"line {line_no}: {exc}") from None
            words.extend(encoded)
            pc += 4 * len(encoded)
        return b"".join(w.to_bytes(4, "little") for w in words)

    # -- passes ------------------------------------------------------------------

    def _clean(self, source: str) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = []
        for number, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("#", 1)[0].strip()
            if not text:
                continue
            # Allow "label: insn" on one line.
            match = re.match(r"^(\w+):\s*(.*)$", text)
            if match:
                out.append((number, match.group(1) + ":"))
                if match.group(2):
                    out.append((number, match.group(2)))
            else:
                out.append((number, text))
        return out

    def _collect_labels(self, lines: List[Tuple[int, str]]) -> Dict[str, int]:
        labels: Dict[str, int] = {}
        pc = self.origin
        for line_no, text in lines:
            if text.endswith(":"):
                name = text[:-1]
                if name in labels:
                    raise AssemblyError(f"line {line_no}: duplicate label {name!r}")
                labels[name] = pc
            else:
                pc += 4 * self._size_of(text)
        return labels

    def _size_of(self, text: str) -> int:
        mnemonic = text.split()[0].lower()
        if mnemonic in ("li", "call", "la"):
            return 2  # worst case; li of small immediates still emits 2 (nop pad)
        return 1

    # -- encoding -----------------------------------------------------------------

    def _encode(self, text: str, pc: int, labels: Dict[str, int]) -> List[int]:
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [op.strip() for op in operand_text.split(",")] \
            if operand_text else []

        def imm(token: str, pc_relative: bool = False) -> int:
            token = token.strip()
            if token in labels:
                return labels[token] - pc if pc_relative else labels[token]
            try:
                return int(token, 0)
            except ValueError:
                raise AssemblyError(f"bad immediate/label {token!r}") from None

        def mem_operand(token: str) -> Tuple[int, int]:
            match = re.match(r"^(-?\w+)\((\w+)\)$", token.strip())
            if not match:
                raise AssemblyError(f"bad memory operand {token!r}")
            return int(match.group(1), 0), _reg(match.group(2))

        # -- pseudo instructions ------------------------------------------------
        if mnemonic == "nop":
            return [self._i_type(0x13, 0, 0, 0, 0)]
        if mnemonic == "mv":
            return [self._i_type(0x13, _reg(operands[0]), 0, _reg(operands[1]), 0)]
        if mnemonic == "not":
            return [self._i_type(0x13, _reg(operands[0]), 4, _reg(operands[1]), -1)]
        if mnemonic == "neg":
            return [self._r_type(0x33, _reg(operands[0]), 0, 0, _reg(operands[1]),
                                 0x20)]
        if mnemonic == "seqz":
            return [self._i_type(0x13, _reg(operands[0]), 3, _reg(operands[1]), 1)]
        if mnemonic == "snez":
            return [self._r_type(0x33, _reg(operands[0]), 3, 0,
                                 _reg(operands[1]), 0)]
        if mnemonic == "li":
            rd = _reg(operands[0])
            value = imm(operands[1]) & _MASK32
            upper = (value + 0x800) >> 12 & 0xFFFFF
            lower = value & 0xFFF
            if lower >= 0x800:
                lower -= 0x1000
            words = [self._u_type(0x37, rd, upper << 12)]
            words.append(self._i_type(0x13, rd, 0, rd, lower))
            return words
        if mnemonic == "la":
            return self._encode(f"li {operands[0]}, {imm(operands[1])}", pc, labels)
        if mnemonic == "j":
            return [self._j_type(0x6F, 0, imm(operands[0], pc_relative=True))]
        if mnemonic == "jr":
            return [self._i_type(0x67, 0, 0, _reg(operands[0]), 0)]
        if mnemonic == "call":
            offset = imm(operands[0], pc_relative=True)
            upper = (offset + 0x800) >> 12 & 0xFFFFF
            lower = offset & 0xFFF
            if lower >= 0x800:
                lower -= 0x1000
            return [
                self._u_type(0x17, 1, upper << 12),            # auipc ra
                self._i_type(0x67, 1, 0, 1, lower),            # jalr ra, ra, lo
            ]
        if mnemonic == "ret":
            return [self._i_type(0x67, 0, 0, 1, 0)]
        if mnemonic in ("beqz", "bnez", "bltz", "bgez"):
            base = {"beqz": "beq", "bnez": "bne", "bltz": "blt",
                    "bgez": "bge"}[mnemonic]
            return self._encode(f"{base} {operands[0]}, x0, {operands[1]}",
                                pc, labels)
        if mnemonic == "csrr":
            return [self._csr_insn(2, _reg(operands[0]), 0, _csr(operands[1]))]
        if mnemonic == "csrw":
            return [self._csr_insn(1, 0, _reg(operands[1]), _csr(operands[0]))]

        # -- CFU custom instruction ----------------------------------------------
        if mnemonic == "cfu":
            rd, rs1, rs2 = (_reg(op) for op in operands[:3])
            funct3 = imm(operands[3]) if len(operands) > 3 else 0
            funct7 = imm(operands[4]) if len(operands) > 4 else 0
            return [self._r_type(0x0B, rd, funct3 & 7, rs1, rs2, funct7 & 0x7F)]

        # -- base instructions ----------------------------------------------------
        if mnemonic == "lui":
            return [self._u_type(0x37, _reg(operands[0]), imm(operands[1]) << 12)]
        if mnemonic == "auipc":
            return [self._u_type(0x17, _reg(operands[0]), imm(operands[1]) << 12)]
        if mnemonic == "jal":
            if len(operands) == 1:
                return [self._j_type(0x6F, 1, imm(operands[0], pc_relative=True))]
            return [self._j_type(0x6F, _reg(operands[0]),
                                 imm(operands[1], pc_relative=True))]
        if mnemonic == "jalr":
            if "(" in operands[-1]:
                offset, rs1 = mem_operand(operands[1])
                return [self._i_type(0x67, _reg(operands[0]), 0, rs1, offset)]
            return [self._i_type(0x67, _reg(operands[0]), 0,
                                 _reg(operands[1]), imm(operands[2]))]

        branches = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}
        if mnemonic in branches:
            return [self._b_type(branches[mnemonic], _reg(operands[0]),
                                 _reg(operands[1]),
                                 imm(operands[2], pc_relative=True))]

        loads = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
        if mnemonic in loads:
            offset, rs1 = mem_operand(operands[1])
            return [self._i_type(0x03, _reg(operands[0]), loads[mnemonic],
                                 rs1, offset)]

        stores = {"sb": 0, "sh": 1, "sw": 2}
        if mnemonic in stores:
            offset, rs1 = mem_operand(operands[1])
            return [self._s_type(stores[mnemonic], rs1, _reg(operands[0]),
                                 offset)]

        alu_imm = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4,
                   "ori": 6, "andi": 7}
        if mnemonic in alu_imm:
            return [self._i_type(0x13, _reg(operands[0]), alu_imm[mnemonic],
                                 _reg(operands[1]), imm(operands[2]))]
        shifts_imm = {"slli": (1, 0), "srli": (5, 0), "srai": (5, 0x20)}
        if mnemonic in shifts_imm:
            funct3, funct7 = shifts_imm[mnemonic]
            shamt = imm(operands[2]) & 0x1F
            return [self._i_type(0x13, _reg(operands[0]), funct3,
                                 _reg(operands[1]), shamt | (funct7 << 5))]

        alu_reg = {
            "add": (0, 0), "sub": (0, 0x20), "sll": (1, 0), "slt": (2, 0),
            "sltu": (3, 0), "xor": (4, 0), "srl": (5, 0), "sra": (5, 0x20),
            "or": (6, 0), "and": (7, 0),
            "mul": (0, 1), "mulh": (1, 1), "mulhsu": (2, 1), "mulhu": (3, 1),
            "div": (4, 1), "divu": (5, 1), "rem": (6, 1), "remu": (7, 1),
        }
        if mnemonic in alu_reg:
            funct3, funct7 = alu_reg[mnemonic]
            return [self._r_type(0x33, _reg(operands[0]), funct3,
                                 _reg(operands[1]), _reg(operands[2]), funct7)]

        if mnemonic == "ecall":
            return [0x00000073]
        if mnemonic == "ebreak":
            return [0x00100073]
        if mnemonic == "mret":
            return [0x30200073]
        if mnemonic == "wfi":
            return [0x10500073]
        if mnemonic == "fence":
            return [0x0000000F]

        csr_ops = {"csrrw": 1, "csrrs": 2, "csrrc": 3,
                   "csrrwi": 5, "csrrsi": 6, "csrrci": 7}
        if mnemonic in csr_ops:
            funct3 = csr_ops[mnemonic]
            rd = _reg(operands[0])
            csr = _csr(operands[1])
            if funct3 >= 5:
                source = imm(operands[2]) & 0x1F
            else:
                source = _reg(operands[2])
            return [self._csr_insn(funct3, rd, source, csr)]

        raise AssemblyError(f"unknown mnemonic {mnemonic!r}")

    # -- encoders -------------------------------------------------------------------

    @staticmethod
    def _r_type(opcode: int, rd: int, funct3: int, rs1: int, rs2: int,
                funct7: int) -> int:
        return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
            | (rd << 7) | opcode

    @staticmethod
    def _i_type(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
        if not -2048 <= imm < 4096:
            raise AssemblyError(f"I-immediate {imm} out of range")
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) \
            | (rd << 7) | opcode

    @staticmethod
    def _s_type(funct3: int, rs1: int, rs2: int, imm: int) -> int:
        if not -2048 <= imm < 2048:
            raise AssemblyError(f"S-immediate {imm} out of range")
        imm &= 0xFFF
        return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) \
            | (funct3 << 12) | ((imm & 0x1F) << 7) | 0x23

    @staticmethod
    def _b_type(funct3: int, rs1: int, rs2: int, offset: int) -> int:
        if offset % 2:
            raise AssemblyError("branch target misaligned")
        if not -4096 <= offset < 4096:
            raise AssemblyError(f"branch offset {offset} out of range")
        offset &= 0x1FFF
        return (((offset >> 12) & 1) << 31) | (((offset >> 5) & 0x3F) << 25) \
            | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
            | (((offset >> 1) & 0xF) << 8) | (((offset >> 11) & 1) << 7) | 0x63

    @staticmethod
    def _u_type(opcode: int, rd: int, imm: int) -> int:
        return (imm & 0xFFFFF000) | (rd << 7) | opcode

    @staticmethod
    def _j_type(opcode: int, rd: int, offset: int) -> int:
        if offset % 2:
            raise AssemblyError("jump target misaligned")
        if not -(1 << 20) <= offset < (1 << 20):
            raise AssemblyError(f"jump offset {offset} out of range")
        offset &= 0x1FFFFF
        return (((offset >> 20) & 1) << 31) | (((offset >> 1) & 0x3FF) << 21) \
            | (((offset >> 11) & 1) << 20) | (((offset >> 12) & 0xFF) << 12) \
            | (rd << 7) | opcode

    @staticmethod
    def _csr_insn(funct3: int, rd: int, source: int, csr: int) -> int:
        return (csr << 20) | (source << 15) | (funct3 << 12) | (rd << 7) | 0x73


def assemble(source: str, origin: int = 0x8000_0000) -> bytes:
    """One-shot assembly convenience function."""
    return Assembler(origin).assemble(source)
