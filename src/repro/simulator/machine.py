"""Machine composition: CPU + bus + peripherals, Renode-style.

A :class:`Machine` is a complete simulated SoC.  The default layout mirrors
a small VexRiscv-class system: RAM at 0x8000_0000, UART, timer, and a sim
control device for clean test termination.  Programs are plain RV32 machine
code (usually produced by :mod:`repro.simulator.assembler`), so "the same
software that would be used on hardware" runs in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .assembler import assemble
from .cpu import Cfu, Cpu
from .memory import PrivilegeMode, Ram, SystemBus
from .peripherals import (
    SIMCTRL_BASE,
    TIMER_BASE,
    UART_BASE,
    MachineTimer,
    SimControl,
    Uart,
)

RAM_BASE = 0x8000_0000
DEFAULT_RAM_SIZE = 1 << 20  # 1 MiB


@dataclass
class RunResult:
    """Outcome of a machine run."""

    steps: int
    cycles: int
    halted: bool
    exit_code: Optional[int]
    uart_output: str

    @property
    def success(self) -> bool:
        return self.halted and self.exit_code == 0


class Machine:
    """A complete simulated SoC instance."""

    def __init__(self, ram_size: int = DEFAULT_RAM_SIZE,
                 cfu: Optional[Cfu] = None, pmp=None) -> None:
        self.bus = SystemBus()
        self.ram = Ram(ram_size)
        self.uart = Uart()
        self.timer = MachineTimer()
        self.simctrl = SimControl()
        self.bus.register(RAM_BASE, ram_size, self.ram, "ram")
        self.bus.register(UART_BASE, 0x100, self.uart, "uart")
        self.bus.register(TIMER_BASE, 0x100, self.timer, "timer")
        self.bus.register(SIMCTRL_BASE, 0x100, self.simctrl, "simctrl")
        self.pmp = pmp
        if pmp is not None:
            self.bus.add_guard(pmp.guard)
        self.cpu = Cpu(self.bus, reset_pc=RAM_BASE, cfu=cfu, pmp=pmp)

    # -- program loading ---------------------------------------------------------

    def load_binary(self, blob: bytes, address: int = RAM_BASE) -> None:
        self.bus.load_blob(address, blob)

    def load_assembly(self, source: str, address: int = RAM_BASE) -> None:
        self.load_binary(assemble(source, origin=address), address)

    def write_words(self, address: int, words: List[int]) -> None:
        blob = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
        self.load_binary(blob, address)

    def read_word(self, address: int) -> int:
        return self.bus.read(address, 4, PrivilegeMode.MACHINE)

    # -- execution ------------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000,
            until: Optional[Callable[["Machine"], bool]] = None) -> RunResult:
        """Run until sim-control halt, ``until`` predicate, or step budget."""
        steps = 0
        cpu = self.cpu
        simctrl = self.simctrl
        timer = self.timer
        ticked = 0
        while steps < max_steps:
            cpu.step()
            steps += 1
            timer.tick(cpu.cycles - ticked)
            ticked = cpu.cycles
            cpu.set_timer_interrupt(timer.pending)
            if simctrl.halted:
                break
            if until is not None and until(self):
                break
        return RunResult(
            steps=steps,
            cycles=cpu.cycles,
            halted=simctrl.halted,
            exit_code=simctrl.exit_code,
            uart_output=self.uart.output,
        )

    def reset(self) -> None:
        """Reset CPU state (memory contents are preserved, like a warm reset)."""
        self.cpu.regs = [0] * 32
        self.cpu.pc = self.cpu.reset_pc
        self.cpu.mode = PrivilegeMode.MACHINE
        self.cpu.cycles = 0
        self.cpu.instret = 0
        self.simctrl.exit_code = None
        self.uart.clear()


# Assembly prologue macros usable by tests and examples.
HALT_OK = f"""
    li   t6, {SIMCTRL_BASE}
    sw   zero, 0(t6)
"""

def halt_with(code: int) -> str:
    """Assembly snippet that halts the simulation with ``code``."""
    return f"""
    li   t6, {SIMCTRL_BASE}
    li   t5, {code}
    sw   t5, 0(t6)
"""


def putc_snippet(register: str) -> str:
    """Assembly snippet writing the low byte of ``register`` to the UART."""
    return f"""
    li   t6, {UART_BASE}
    sb   {register}, 0(t6)
"""
