"""System bus and memory for the functional SoC simulator.

The simulator plays Renode's role in VEDLIoT (paper Sec. II-B): functional
simulation of complete SoCs so the same software runs as on hardware.  The
bus maps RAM and peripherals into a single physical address space; every
access carries the CPU privilege mode so the PMP unit (repro.security.pmp)
can veto it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Tuple


class AccessType(Enum):
    READ = "read"
    WRITE = "write"
    FETCH = "fetch"


class PrivilegeMode(Enum):
    """RISC-V privilege levels supported by the simulated cores (M and U).

    Matches the paper's PMP target: "small devices that only support
    machine mode (M-mode) and user mode (U-mode)".
    """

    USER = 0
    MACHINE = 3


class BusError(RuntimeError):
    """Raised on access to unmapped or misaligned addresses."""

    def __init__(self, message: str, address: int, access: AccessType) -> None:
        super().__init__(message)
        self.address = address
        self.access = access


class AccessViolation(RuntimeError):
    """Raised when a protection unit (PMP) denies an access."""

    def __init__(self, address: int, access: AccessType, mode: PrivilegeMode) -> None:
        super().__init__(
            f"{access.value} of 0x{address:08x} denied in {mode.name} mode"
        )
        self.address = address
        self.access = access
        self.mode = mode


class Peripheral(abc.ABC):
    """A device mapped into the physical address space."""

    @abc.abstractmethod
    def read(self, offset: int, size: int) -> int:
        """Read ``size`` bytes at ``offset`` within the device window."""

    @abc.abstractmethod
    def write(self, offset: int, size: int, value: int) -> None:
        """Write ``size`` bytes at ``offset`` within the device window."""

    def tick(self, cycles: int) -> None:
        """Advance device time; default devices are time-insensitive."""


class Ram(Peripheral):
    """Byte-addressable RAM region."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("RAM size must be positive")
        self.size = size
        self.data = bytearray(size)

    def read(self, offset: int, size: int) -> int:
        return int.from_bytes(self.data[offset:offset + size], "little")

    def write(self, offset: int, size: int, value: int) -> None:
        self.data[offset:offset + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")

    def load(self, offset: int, blob: bytes) -> None:
        if offset + len(blob) > self.size:
            raise ValueError("blob does not fit in RAM")
        self.data[offset:offset + len(blob)] = blob


@dataclass
class Region:
    """One mapping on the bus."""

    base: int
    size: int
    device: Peripheral
    name: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


# Guard callback: (address, size, access, mode) -> None or raise AccessViolation.
BusGuard = Callable[[int, int, AccessType, PrivilegeMode], None]


class SystemBus:
    """Physical address space: region registry plus access checking."""

    def __init__(self) -> None:
        self.regions: List[Region] = []
        self.guards: List[BusGuard] = []

    def register(self, base: int, size: int, device: Peripheral,
                 name: str) -> Region:
        new = Region(base, size, device, name)
        for region in self.regions:
            if new.base < region.end and region.base < new.end:
                raise ValueError(
                    f"region {name!r} [{new.base:#x}, {new.end:#x}) overlaps "
                    f"{region.name!r} [{region.base:#x}, {region.end:#x})"
                )
        self.regions.append(new)
        self.regions.sort(key=lambda r: r.base)
        return new

    def add_guard(self, guard: BusGuard) -> None:
        """Install an access guard (the PMP hooks in here)."""
        self.guards.append(guard)

    def _find(self, address: int, size: int, access: AccessType) -> Region:
        for region in self.regions:
            if region.contains(address):
                if address + size > region.end:
                    raise BusError(
                        f"access of {size} bytes at 0x{address:08x} crosses "
                        f"region {region.name!r} boundary", address, access)
                return region
        raise BusError(f"unmapped address 0x{address:08x}", address, access)

    def read(self, address: int, size: int,
             mode: PrivilegeMode = PrivilegeMode.MACHINE,
             access: AccessType = AccessType.READ) -> int:
        for guard in self.guards:
            guard(address, size, access, mode)
        region = self._find(address, size, access)
        return region.device.read(address - region.base, size)

    def write(self, address: int, size: int, value: int,
              mode: PrivilegeMode = PrivilegeMode.MACHINE) -> None:
        for guard in self.guards:
            guard(address, size, AccessType.WRITE, mode)
        region = self._find(address, size, AccessType.WRITE)
        region.device.write(address - region.base, size, value)

    def fetch(self, address: int, mode: PrivilegeMode) -> int:
        """Fetch a 32-bit instruction word."""
        for guard in self.guards:
            guard(address, 4, AccessType.FETCH, mode)
        region = self._find(address, 4, AccessType.FETCH)
        return region.device.read(address - region.base, 4)

    def load_blob(self, address: int, blob: bytes) -> None:
        """Bulk-load bytes (program images) bypassing guards."""
        region = self._find(address, max(1, len(blob)), AccessType.WRITE)
        device = region.device
        if not isinstance(device, Ram):
            raise BusError("can only load blobs into RAM", address,
                           AccessType.WRITE)
        device.load(address - region.base, blob)

    def tick(self, cycles: int) -> None:
        for region in self.regions:
            region.device.tick(cycles)
