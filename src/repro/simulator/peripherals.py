"""Memory-mapped peripherals for the simulated SoCs.

A minimal but realistic device set: a UART for console I/O (the channel the
Renode-style test harness asserts on), a 64-bit machine timer, and a
"sim control" device programs use to signal test pass/fail and halt the
machine — the idiom Renode CI tests use.
"""

from __future__ import annotations

from typing import List, Optional

from .memory import Peripheral

# Conventional base addresses used by default machines.
UART_BASE = 0x1000_0000
TIMER_BASE = 0x1001_0000
SIMCTRL_BASE = 0x100F_0000


class Uart(Peripheral):
    """Write-only console UART.

    Register map (byte offsets):
        0x00  TX     write: emit one byte
        0x04  STATUS read: bit0 = tx ready (always 1 in this model)
    """

    def __init__(self) -> None:
        self.buffer = bytearray()

    def read(self, offset: int, size: int) -> int:
        if offset == 0x04:
            return 1
        return 0

    def write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x00:
            self.buffer.append(value & 0xFF)

    @property
    def output(self) -> str:
        return self.buffer.decode("utf-8", errors="replace")

    def clear(self) -> None:
        self.buffer.clear()


class MachineTimer(Peripheral):
    """RISC-V style mtime/mtimecmp timer (no interrupts in this model).

    Register map:
        0x00  MTIME_LO     0x04  MTIME_HI
        0x08  MTIMECMP_LO  0x0C  MTIMECMP_HI
    """

    def __init__(self) -> None:
        self.mtime = 0
        self.mtimecmp = 0xFFFF_FFFF_FFFF_FFFF

    def tick(self, cycles: int) -> None:
        self.mtime += cycles

    @property
    def pending(self) -> bool:
        return self.mtime >= self.mtimecmp

    def read(self, offset: int, size: int) -> int:
        if offset == 0x00:
            return self.mtime & 0xFFFF_FFFF
        if offset == 0x04:
            return (self.mtime >> 32) & 0xFFFF_FFFF
        if offset == 0x08:
            return self.mtimecmp & 0xFFFF_FFFF
        if offset == 0x0C:
            return (self.mtimecmp >> 32) & 0xFFFF_FFFF
        return 0

    def write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x08:
            self.mtimecmp = (self.mtimecmp & 0xFFFF_FFFF_0000_0000) | value
        elif offset == 0x0C:
            self.mtimecmp = (self.mtimecmp & 0xFFFF_FFFF) | (value << 32)
        elif offset == 0x00:
            self.mtime = (self.mtime & 0xFFFF_FFFF_0000_0000) | value
        elif offset == 0x04:
            self.mtime = (self.mtime & 0xFFFF_FFFF) | (value << 32)


class SimControl(Peripheral):
    """Test-control device: lets guest code halt the simulation.

    Register map:
        0x00  EXIT   write: halt with this exit code
    """

    def __init__(self) -> None:
        self.exit_code: Optional[int] = None

    @property
    def halted(self) -> bool:
        return self.exit_code is not None

    def read(self, offset: int, size: int) -> int:
        return 0

    def write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x00:
            self.exit_code = value
