"""Renode-style CI test harness for simulated machines.

VEDLIoT uses Renode "both for interactive development of accelerator
prototypes and within a Continuous Integration environment" (Sec. II-B).
This module provides the CI half: declarative test cases that boot a
machine, run a program, and assert on UART output, exit codes, registers
and cycle budgets — the same assertions Renode's Robot framework tests
express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .machine import Machine, RunResult


class SimAssertionError(AssertionError):
    """A simulator test expectation failed."""


@dataclass
class Expectation:
    """Declarative post-run checks."""

    exit_code: Optional[int] = 0
    uart_contains: Optional[str] = None
    uart_equals: Optional[str] = None
    registers: Dict[int, int] = field(default_factory=dict)
    memory_words: Dict[int, int] = field(default_factory=dict)
    max_cycles: Optional[int] = None
    must_halt: bool = True

    def check(self, machine: Machine, result: RunResult) -> None:
        if self.must_halt and not result.halted:
            raise SimAssertionError(
                f"machine did not halt within {result.steps} steps "
                f"(uart so far: {result.uart_output!r})"
            )
        if self.exit_code is not None and result.exit_code != self.exit_code:
            raise SimAssertionError(
                f"exit code {result.exit_code} != expected {self.exit_code} "
                f"(uart: {result.uart_output!r})"
            )
        if self.uart_contains is not None and \
                self.uart_contains not in result.uart_output:
            raise SimAssertionError(
                f"uart output {result.uart_output!r} does not contain "
                f"{self.uart_contains!r}"
            )
        if self.uart_equals is not None and \
                result.uart_output != self.uart_equals:
            raise SimAssertionError(
                f"uart output {result.uart_output!r} != {self.uart_equals!r}"
            )
        for register, expected in self.registers.items():
            actual = machine.cpu.read_reg(register)
            if actual != expected & 0xFFFFFFFF:
                raise SimAssertionError(
                    f"x{register} = {actual:#x}, expected {expected:#x}"
                )
        for address, expected in self.memory_words.items():
            actual = machine.read_word(address)
            if actual != expected & 0xFFFFFFFF:
                raise SimAssertionError(
                    f"word at {address:#x} = {actual:#x}, "
                    f"expected {expected:#x}"
                )
        if self.max_cycles is not None and result.cycles > self.max_cycles:
            raise SimAssertionError(
                f"took {result.cycles} cycles > budget {self.max_cycles}"
            )


@dataclass
class SimTest:
    """One CI test: program source, machine factory, and expectations."""

    name: str
    assembly: str
    expect: Expectation = field(default_factory=Expectation)
    machine_factory: Callable[[], Machine] = Machine
    max_steps: int = 1_000_000

    def run(self) -> RunResult:
        machine = self.machine_factory()
        machine.load_assembly(self.assembly)
        result = machine.run(max_steps=self.max_steps)
        self.expect.check(machine, result)
        return result


@dataclass
class SuiteReport:
    """Aggregate result of a test suite run."""

    passed: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        lines = [f"{len(self.passed)} passed, {len(self.failed)} failed"]
        lines.extend(f"  FAIL {name}: {why}" for name, why in self.failed.items())
        return "\n".join(lines)


def run_suite(tests: List[SimTest]) -> SuiteReport:
    """Run a list of tests, collecting failures instead of stopping."""
    report = SuiteReport()
    for test in tests:
        try:
            test.run()
        except (SimAssertionError, Exception) as exc:  # noqa: BLE001 - CI collects all
            report.failed[test.name] = str(exc)
        else:
            report.passed.append(test.name)
    return report
