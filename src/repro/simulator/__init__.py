"""Functional SoC simulator (the Renode role): RV32IM core, bus, CFUs, CI."""

from .memory import (
    AccessType,
    AccessViolation,
    BusError,
    Peripheral,
    PrivilegeMode,
    Ram,
    Region,
    SystemBus,
)
from .cpu import (
    CAUSE_BREAKPOINT,
    CAUSE_MACHINE_TIMER_INTERRUPT,
    CAUSE_ECALL_FROM_M,
    CAUSE_ECALL_FROM_U,
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_INSTRUCTION_ACCESS_FAULT,
    CAUSE_LOAD_ACCESS_FAULT,
    CAUSE_STORE_ACCESS_FAULT,
    Cfu,
    Cpu,
)
from .assembler import Assembler, AssemblyError, assemble
from .peripherals import (
    SIMCTRL_BASE,
    TIMER_BASE,
    UART_BASE,
    MachineTimer,
    SimControl,
    Uart,
)
from .cfu import MultiCfu, PopcountCfu, SimdMacCfu
from .accelerator import ACCEL_BASE, MatVecAccelerator, attach_accelerator
from .machine import DEFAULT_RAM_SIZE, HALT_OK, Machine, RAM_BASE, RunResult, halt_with
from .platform import (
    PlatformError,
    load_platform,
    register_cfu_type,
    register_peripheral_type,
)
from .testing import Expectation, SimAssertionError, SimTest, SuiteReport, run_suite

__all__ = [
    "AccessType", "AccessViolation", "BusError", "Peripheral",
    "PrivilegeMode", "Ram", "Region", "SystemBus",
    "CAUSE_BREAKPOINT", "CAUSE_ECALL_FROM_M", "CAUSE_ECALL_FROM_U",
    "CAUSE_MACHINE_TIMER_INTERRUPT",
    "ACCEL_BASE", "MatVecAccelerator", "attach_accelerator",
    "CAUSE_ILLEGAL_INSTRUCTION", "CAUSE_INSTRUCTION_ACCESS_FAULT",
    "CAUSE_LOAD_ACCESS_FAULT", "CAUSE_STORE_ACCESS_FAULT", "Cfu", "Cpu",
    "Assembler", "AssemblyError", "assemble",
    "SIMCTRL_BASE", "TIMER_BASE", "UART_BASE", "MachineTimer", "SimControl",
    "Uart",
    "MultiCfu", "PopcountCfu", "SimdMacCfu",
    "DEFAULT_RAM_SIZE", "HALT_OK", "Machine", "RAM_BASE", "RunResult",
    "halt_with",
    "PlatformError", "load_platform", "register_cfu_type",
    "register_peripheral_type",
    "Expectation", "SimAssertionError", "SimTest", "SuiteReport", "run_suite",
]
