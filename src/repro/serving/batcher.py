"""Dynamic micro-batching: coalesce single-sample requests into batches.

The throughput lever of the paper's batch-size study (Fig. 4) applied to
online serving: single-sample ``infer()`` calls arriving close together
are stacked along the leading batch axis and executed as one plan run,
amortizing dispatch and memory traffic.

Two assembly policies share this queue:

* **Fixed-knob** (the default, and the fallback while the latency model
  is cold): a batch is dispatched as soon as ``max_batch`` requests are
  waiting, or once the *oldest* request has waited ``max_latency_s``,
  whichever comes first.  Under light load that deadline fires with a
  single request queued and the engine degrades gracefully to batch-1
  execution.
* **Deadline-aware** (``cost_model`` set): each request may carry an
  absolute deadline (its SLO) and a priority class.  The consumer
  assembles the **largest batch whose predicted completion still meets
  the tightest deadline among the selected requests**, using the cost
  model's execute-latency prediction; it waits for more arrivals only
  while the model says a bigger batch would still make the deadline.
  Requests whose deadline cannot be met even at batch size 1 are *shed*
  through the ``on_shed`` callback instead of burning a queue slot and
  execute time on a guaranteed miss.

Priorities order both service and shedding: higher classes dispatch
first (FIFO within a class), and when the queue is capacity-bounded
(``queue_limit``) an arriving higher-priority request evicts the
youngest request of the lowest class rather than being turned away.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np


class QueueClosedError(RuntimeError):
    """Raised by :meth:`BatchQueue.submit` once the queue is closed.

    A typed subclass so callers (the engine, the replica tier) can
    distinguish "the queue shut down under me" from an arbitrary
    ``RuntimeError`` raised by request execution and translate it into
    their own closed-error type.
    """


class RequestShedError(RuntimeError):
    """Raised on a request's future when the serving tier sheds it.

    The single-process counterpart of
    :class:`repro.serving.replicas.TierSaturatedError`: a typed signal
    that the request was rejected *early* — its deadline was predicted
    unmeetable, it was evicted by a higher-priority arrival, or the
    admission controller was over its miss-rate threshold — rather than
    left to time out after consuming a queue slot and execute time.
    Callers can retry with backoff, divert, or degrade.
    """


@dataclass
class InferenceRequest:
    """One queued single-sample request (leading batch axis of size 1)."""

    feeds: Dict[str, np.ndarray]
    future: "Future" = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    # SLO fields (None/0 for best-effort traffic): ``deadline_s`` is an
    # *absolute* time.monotonic() deadline for request completion;
    # ``priority`` orders classes (higher serves first, sheds last).
    deadline_s: Optional[float] = None
    priority: int = 0
    # Set by the engine only for sampled requests (tracing default-off):
    # a repro.telemetry.tracing.RequestTrace collecting pipeline marks.
    trace: Optional[object] = None


class BatchQueue:
    """A deadline-driven coalescing queue of inference requests.

    ``next_batch`` is the consumer side (the engine's dispatcher thread):
    it blocks until at least one request is queued, then keeps collecting
    until the batch is full, the assembly policy decides waiting longer
    would break an SLO, or the oldest request's timer expires.  Returns
    ``None`` once the queue is closed and drained.

    Parameters
    ----------
    max_batch / max_latency_s
        The fixed knobs: batch-size cap and the oldest-request timer.
    cost_model
        Optional callable ``(batch_size) -> predicted execute seconds or
        None``; supplying it enables deadline-aware assembly (None
        predictions — a cold model — fall back to the timer policy).
    on_shed
        Callable invoked (outside the queue lock) with each request the
        queue sheds; the owner fails the request's future and records
        the event.  Without it nothing is ever shed.
    queue_limit
        Optional bound on queued requests; an arrival past it either
        evicts the youngest lowest-priority request (if the arrival
        outranks it) or is itself shed.  Requires ``on_shed``.
    headroom_s
        Scheduling slack subtracted from every deadline comparison:
        covers dispatch/assembly/finalize overhead the execute-latency
        cost model does not see.
    """

    def __init__(self, max_batch: int = 8,
                 max_latency_s: float = 0.002,
                 cost_model: Optional[Callable[[int], Optional[float]]]
                 = None,
                 on_shed: Optional[Callable[["InferenceRequest"], None]]
                 = None,
                 queue_limit: Optional[int] = None,
                 headroom_s: float = 0.0005) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_latency_s < 0:
            raise ValueError("max_latency_s must be >= 0")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if queue_limit is not None and on_shed is None:
            raise ValueError("queue_limit requires an on_shed callback")
        self.max_batch = int(max_batch)
        self.max_latency_s = float(max_latency_s)
        self.cost_model = cost_model
        self.on_shed = on_shed
        self.queue_limit = queue_limit
        self.headroom_s = float(headroom_s)
        # One FIFO per priority class; priority order is recomputed
        # lazily (classes are few: think interactive/batch/background).
        self._classes: Dict[int, Deque[InferenceRequest]] = {}
        self._priorities: List[int] = []       # descending, kept sorted
        self._depth = 0
        self._cond = threading.Condition()
        self._closed = False

    # -- producer side -------------------------------------------------------

    def submit(self, request: InferenceRequest) -> None:
        """Enqueue one request; may shed (evict) under ``queue_limit``."""
        shed: List[InferenceRequest] = []
        with self._cond:
            if self._closed:
                raise QueueClosedError("batch queue is closed")
            if self.queue_limit is not None and \
                    self._depth >= self.queue_limit:
                victim = self._evict_lower_priority(request.priority)
                if victim is None:
                    # Nothing outranked: the arrival itself is shed.
                    shed.append(request)
                else:
                    shed.append(victim)
            if not shed or shed[0] is not request:
                self._append(request)
                self._cond.notify()
        for victim in shed:
            self.on_shed(victim)

    def _append(self, request: InferenceRequest) -> None:
        queue = self._classes.get(request.priority)
        if queue is None:
            queue = self._classes[request.priority] = deque()
            self._priorities = sorted(self._classes, reverse=True)
        queue.append(request)
        self._depth += 1

    def _evict_lower_priority(self, priority: int
                              ) -> Optional[InferenceRequest]:
        """Pop the youngest request of the lowest class below
        ``priority``; lock must be held."""
        for level in reversed(self._priorities):
            if level >= priority:
                return None
            queue = self._classes[level]
            if queue:
                self._depth -= 1
                return queue.pop()
        return None

    def depth(self) -> int:
        with self._cond:
            return self._depth

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- consumer side -------------------------------------------------------

    def next_batch(self) -> Optional[List[InferenceRequest]]:
        while True:
            shed: List[InferenceRequest] = []
            with self._cond:
                while not self._depth:
                    if self._closed:
                        return None
                    self._cond.wait()
                if self.cost_model is not None:
                    batch = self._assemble_adaptive(shed)
                else:
                    batch = self._assemble_fixed()
            # Shed futures resolve *now*, outside the lock — a doomed
            # request must not wait for the next dispatch to learn its
            # fate.
            for request in shed:
                self.on_shed(request)
            if batch is None:
                return None
            if batch:
                return batch
            # Empty list: the policy shed, timed out, or wants the
            # queue re-examined after a wait — loop.

    # The seed policy, byte-for-byte: full batch, or oldest-request timer.
    def _assemble_fixed(self) -> Optional[List[InferenceRequest]]:
        if self.max_batch > 1 and self.max_latency_s > 0:
            oldest = self._oldest_enqueued()
            deadline = oldest + self.max_latency_s
            while self._depth < self.max_batch and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
                if not self._depth:
                    return None if self._closed else []
        return self._pop(min(self.max_batch, self._depth))

    def _assemble_adaptive(self, shed: List[InferenceRequest]
                           ) -> Optional[List[InferenceRequest]]:
        """One deadline-aware assembly decision.

        Returns a non-empty batch to dispatch, ``[]`` to make the caller
        flush ``shed`` and re-examine the queue (after any wait done in
        here), or None when the queue closed and drained.
        """
        now = time.monotonic()
        # Shed requests that cannot make their deadline even alone —
        # executing them anyway would spend capacity on guaranteed
        # misses and push *feasible* requests past their SLOs.
        floor = self.cost_model(1)
        if floor is not None and self.on_shed is not None:
            self._shed_doomed(now + floor + self.headroom_s, shed)
            if shed:
                # Return before any wait: the caller flushes the shed
                # callbacks first, so doomed futures fail *now* rather
                # than after an arrival-wait they are no longer part of.
                return []
            if not self._depth:
                return None if self._closed else []
        candidates = self._peek(self.max_batch)
        tightest = min((r.deadline_s for r in candidates
                        if r.deadline_s is not None), default=None)
        feasible = self._feasible_size(len(candidates), tightest, now)
        if feasible is None:
            # Cold model: behave exactly like the fixed-knob queue.
            return self._assemble_fixed()
        if feasible >= self.max_batch or feasible < self._depth:
            # Either the batch is maxed out, or the queue already holds
            # more work than one deadline-meeting batch can carry —
            # dispatch immediately, waiting cannot help anyone.
            return self._pop(min(feasible, self.max_batch))
        # Everything queued fits in one feasible batch and there is
        # headroom: wait for more arrivals only while a bigger batch
        # would still meet the tightest deadline, and never past the
        # fixed-knob timer.
        wait_until = self._oldest_enqueued() + self.max_latency_s
        if tightest is not None:
            next_cost = self.cost_model(
                min(self.max_batch, self._depth + 1))
            if next_cost is not None:
                wait_until = min(wait_until,
                                 tightest - next_cost - self.headroom_s)
        remaining = wait_until - time.monotonic()
        if remaining <= 0 or self._closed:
            return self._pop(min(feasible, self._depth))
        self._cond.wait(timeout=remaining)
        return []                      # re-evaluate with fresh arrivals

    def _feasible_size(self, available: int, tightest: Optional[float],
                       now: float) -> Optional[int]:
        """Largest n <= available predicted to finish by ``tightest``
        (always >= 1: the head request runs even if late — only the
        shed path drops work).  None when the model is cold."""
        if tightest is None:
            cost = self.cost_model(max(1, available))
            return None if cost is None else max(1, available)
        best = None
        for size in range(1, max(1, available) + 1):
            cost = self.cost_model(size)
            if cost is None:
                return None
            if now + cost + self.headroom_s <= tightest:
                best = size
            else:
                break
        return best if best is not None else 1

    def _shed_doomed(self, earliest_finish: float,
                     shed: List[InferenceRequest]) -> None:
        """Move every request whose deadline precedes ``earliest_finish``
        into ``shed``; lock must be held."""
        for level in self._priorities:
            queue = self._classes[level]
            survivors = [r for r in queue
                         if r.deadline_s is None
                         or r.deadline_s >= earliest_finish]
            if len(survivors) != len(queue):
                shed.extend(r for r in queue
                            if r.deadline_s is not None
                            and r.deadline_s < earliest_finish)
                self._depth -= len(queue) - len(survivors)
                queue.clear()
                queue.extend(survivors)

    # -- selection helpers (lock held) --------------------------------------

    def _oldest_enqueued(self) -> float:
        return min(queue[0].enqueued_at
                   for queue in self._classes.values() if queue)

    def _peek(self, count: int) -> List[InferenceRequest]:
        """First ``count`` requests in (priority desc, FIFO) order."""
        out: List[InferenceRequest] = []
        for level in self._priorities:
            for request in self._classes[level]:
                out.append(request)
                if len(out) == count:
                    return out
        return out

    def _pop(self, count: int) -> List[InferenceRequest]:
        out: List[InferenceRequest] = []
        for level in self._priorities:
            queue = self._classes[level]
            while queue and len(out) < count:
                out.append(queue.popleft())
            if len(out) == count:
                break
        self._depth -= len(out)
        return out

    def drain(self) -> List[InferenceRequest]:
        """Remove and return everything still queued (used at shutdown)."""
        with self._cond:
            items: List[InferenceRequest] = []
            for level in self._priorities:
                items.extend(self._classes[level])
                self._classes[level].clear()
            self._depth = 0
            return items
