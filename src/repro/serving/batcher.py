"""Dynamic micro-batching: coalesce single-sample requests into batches.

The throughput lever of the paper's batch-size study (Fig. 4) applied to
online serving: single-sample ``infer()`` calls arriving close together
are stacked along the leading batch axis and executed as one plan run,
amortizing dispatch and memory traffic.  The queue trades a bounded
amount of latency for that coalescing — a batch is dispatched as soon as
``max_batch`` requests are waiting, or once the *oldest* request has
waited ``max_latency_s``, whichever comes first.  Under light load that
deadline fires with a single request queued and the engine degrades
gracefully to batch-1 execution.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np


class QueueClosedError(RuntimeError):
    """Raised by :meth:`BatchQueue.submit` once the queue is closed.

    A typed subclass so callers (the engine, the replica tier) can
    distinguish "the queue shut down under me" from an arbitrary
    ``RuntimeError`` raised by request execution and translate it into
    their own closed-error type.
    """


@dataclass
class InferenceRequest:
    """One queued single-sample request (leading batch axis of size 1)."""

    feeds: Dict[str, np.ndarray]
    future: "Future" = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    # Set by the engine only for sampled requests (tracing default-off):
    # a repro.telemetry.tracing.RequestTrace collecting pipeline marks.
    trace: Optional[object] = None


class BatchQueue:
    """A deadline-driven coalescing queue of inference requests.

    ``next_batch`` is the consumer side (the engine's dispatcher thread):
    it blocks until at least one request is queued, then keeps collecting
    until the batch is full or the oldest request's deadline expires.
    Returns ``None`` once the queue is closed and drained.
    """

    def __init__(self, max_batch: int = 8,
                 max_latency_s: float = 0.002) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_latency_s < 0:
            raise ValueError("max_latency_s must be >= 0")
        self.max_batch = int(max_batch)
        self.max_latency_s = float(max_latency_s)
        self._items: Deque[InferenceRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def submit(self, request: InferenceRequest) -> None:
        with self._cond:
            if self._closed:
                raise QueueClosedError("batch queue is closed")
            self._items.append(request)
            self._cond.notify()

    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def next_batch(self) -> Optional[List[InferenceRequest]]:
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                self._cond.wait()
            if self.max_batch > 1 and self.max_latency_s > 0:
                deadline = self._items[0].enqueued_at + self.max_latency_s
                while len(self._items) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
            count = min(self.max_batch, len(self._items))
            return [self._items.popleft() for _ in range(count)]

    def drain(self) -> List[InferenceRequest]:
        """Remove and return everything still queued (used at shutdown)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items
