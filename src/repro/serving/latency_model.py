"""Online per-batch-size execute-latency models for SLO-aware batching.

The adaptive batcher needs one question answered cheaply and
continuously: *if I dispatch a batch of n right now, when will it
finish?*  This module fits that predictor from the engine's own
recorded execute timings:

* every executed batch contributes one ``(batch_size, execute_seconds)``
  observation into a per-size fixed log-bucket histogram (the telemetry
  layer's :func:`repro.telemetry.registry.log_buckets` scheme, finer
  grained here) — O(1) per batch, no unbounded sample lists;
* the per-size **quantile** (default p90, interpolated within buckets by
  :func:`repro.telemetry.registry.quantile_from_buckets`) forms the
  calibration points: using an upper quantile instead of the mean bakes
  percentile inflation into the fit, so predictions track what a p99 SLO
  cares about, not the happy path;
* a robust linear model ``t(n) = a + b * n`` is fitted through those
  points with the Theil–Sen estimator (median of pairwise slopes —
  a single garbage-collection-mangled timing cannot steer the fit),
  refreshed lazily after every ``refit_interval`` observations;
* predictions carry a multiplicative safety ``margin`` on top, and the
  model reports itself *cold* (``predict`` returns None) until it has
  seen enough samples — the batcher falls back to the fixed-knob timer
  policy until the model warms up.

Persistence: :meth:`to_dict` / :meth:`from_dict` round-trip the bucket
counts as JSON.  The engine stores the model next to the persistent plan
cache (``<cache-dir>/latency/<plan-key>.json``), so a restarted engine
begins calibrated instead of re-learning the hardware from scratch —
the warm-start story of the plan cache, extended to timing.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..telemetry.registry import log_buckets, quantile_from_buckets

FORMAT_VERSION = 1

# Finer-than-telemetry bounds: 2 us .. ~8.7 s in x1.41 steps, so
# within-bucket interpolation resolves sub-millisecond differences the
# batch-size decision actually hinges on.
LATENCY_BOUNDS: Tuple[float, ...] = log_buckets(2e-6, 2.0 ** 0.5, 45)


class _SizeHistogram:
    """Bucket counts + count/sum for one batch size (not thread-safe;
    the owning model serializes access)."""

    __slots__ = ("counts", "count", "sum")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * (len(LATENCY_BOUNDS) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = 0
        for bound in LATENCY_BOUNDS:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        return quantile_from_buckets(LATENCY_BOUNDS, self.counts, q)


class BatchLatencyModel:
    """Robust online fit of execute latency versus batch size.

    Parameters
    ----------
    quantile
        Which per-size latency quantile the line is fitted through
        (percentile inflation: 0.9 by default).
    margin
        Multiplicative safety factor applied to every prediction.
    min_samples
        Observations a batch size needs before it contributes a
        calibration point (and before the model counts as warm).
    refit_interval
        Observations between lazy refits of the (a, b) line.
    """

    def __init__(self, quantile: float = 0.9, margin: float = 1.2,
                 min_samples: int = 5, refit_interval: int = 32) -> None:
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be within (0, 1]")
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.quantile = float(quantile)
        self.margin = float(margin)
        self.min_samples = int(min_samples)
        self.refit_interval = max(1, int(refit_interval))
        self._lock = threading.Lock()
        self._sizes: Dict[int, _SizeHistogram] = {}
        self._observations = 0
        self._since_refit = 0
        self._coeffs: Optional[Tuple[float, float]] = None   # (a, b)
        self._dirty = False

    # -- recording -----------------------------------------------------------

    def observe(self, batch_size: int, execute_s: float) -> None:
        """Record one executed batch's plan-run duration."""
        if batch_size < 1 or execute_s < 0 or execute_s != execute_s:
            return                                    # NaN/garbage guard
        with self._lock:
            hist = self._sizes.get(batch_size)
            if hist is None:
                hist = self._sizes[batch_size] = _SizeHistogram()
            hist.observe(execute_s)
            self._observations += 1
            self._since_refit += 1
            if self._since_refit >= self.refit_interval or \
                    self._coeffs is None:
                self._dirty = True
                self._since_refit = 0

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    def warm(self) -> bool:
        """True once at least one batch size has ``min_samples``."""
        with self._lock:
            return any(h.count >= self.min_samples
                       for h in self._sizes.values())

    # -- fitting -------------------------------------------------------------

    def _calibration_points(self) -> List[Tuple[int, float]]:
        """(batch size, inflated latency) points; lock must be held."""
        return sorted(
            (size, hist.quantile(self.quantile))
            for size, hist in self._sizes.items()
            if hist.count >= self.min_samples)

    @staticmethod
    def _theil_sen(points: List[Tuple[int, float]]
                   ) -> Tuple[float, float]:
        """Median-of-pairwise-slopes line through >= 2 points."""
        slopes = [
            (y2 - y1) / (x2 - x1)
            for i, (x1, y1) in enumerate(points)
            for (x2, y2) in points[i + 1:]
            if x2 != x1
        ]
        slopes.sort()
        mid = len(slopes) // 2
        slope = slopes[mid] if len(slopes) % 2 else \
            0.5 * (slopes[mid - 1] + slopes[mid])
        slope = max(0.0, slope)            # latency never shrinks with n
        intercepts = sorted(y - slope * x for x, y in points)
        mid = len(intercepts) // 2
        intercept = intercepts[mid] if len(intercepts) % 2 else \
            0.5 * (intercepts[mid - 1] + intercepts[mid])
        return max(0.0, intercept), slope

    def _refit(self) -> None:
        """Recompute (a, b); lock must be held."""
        points = self._calibration_points()
        if not points:
            self._coeffs = None
        elif len(points) == 1:
            # One calibrated size: flat up to it, scale linearly past it
            # (conservative — no evidence batching is cheaper than
            # proportional).
            size, latency = points[0]
            self._coeffs = (0.0, latency / size) if size > 0 \
                else (latency, 0.0)
        else:
            self._coeffs = self._theil_sen(points)
        self._dirty = False

    # -- prediction ----------------------------------------------------------

    def predict(self, batch_size: int) -> Optional[float]:
        """Predicted execute seconds for a batch of ``batch_size``
        (margin included), or None while the model is cold."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        with self._lock:
            if self._dirty:
                self._refit()
            if self._coeffs is None:
                return None
            a, b = self._coeffs
            return (a + b * batch_size) * self.margin

    def coefficients(self) -> Optional[Tuple[float, float]]:
        """Current (intercept, slope) in seconds, margin excluded."""
        with self._lock:
            if self._dirty:
                self._refit()
            return self._coeffs

    def snapshot(self) -> Dict[str, object]:
        """Debug/metrics view: per-size sample counts and quantiles."""
        with self._lock:
            if self._dirty:
                self._refit()
            coeffs = self._coeffs
            sizes = {
                size: {"count": hist.count,
                       "mean_ms": hist.sum / hist.count * 1e3
                       if hist.count else 0.0,
                       f"p{int(self.quantile * 100)}_ms":
                       hist.quantile(self.quantile) * 1e3}
                for size, hist in sorted(self._sizes.items())
            }
        return {
            "observations": self._observations,
            "intercept_ms": coeffs[0] * 1e3 if coeffs else None,
            "slope_ms_per_sample": coeffs[1] * 1e3 if coeffs else None,
            "margin": self.margin,
            "sizes": sizes,
        }

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "version": FORMAT_VERSION,
                "quantile": self.quantile,
                "margin": self.margin,
                "min_samples": self.min_samples,
                "bounds": list(LATENCY_BOUNDS),
                "sizes": {
                    str(size): {"counts": list(hist.counts),
                                "count": hist.count, "sum": hist.sum}
                    for size, hist in self._sizes.items()
                },
            }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BatchLatencyModel":
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported latency-model version {payload.get('version')}")
        if list(payload.get("bounds", [])) != list(LATENCY_BOUNDS):
            # Bucket scheme changed between releases: the counts are
            # meaningless under the new bounds — start cold.
            raise ValueError("latency-model bucket bounds mismatch")
        model = cls(quantile=float(payload.get("quantile", 0.9)),
                    margin=float(payload.get("margin", 1.2)),
                    min_samples=int(payload.get("min_samples", 5)))
        for key, entry in dict(payload.get("sizes", {})).items():
            size = int(key)
            counts = [int(c) for c in entry["counts"]]
            if len(counts) != len(LATENCY_BOUNDS) + 1 or \
                    any(c < 0 for c in counts):
                raise ValueError("corrupt latency-model bucket counts")
            hist = _SizeHistogram()
            hist.counts = counts
            hist.count = int(entry["count"])
            hist.sum = float(entry["sum"])
            model._sizes[size] = hist
            model._observations += hist.count
        model._dirty = True
        return model

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically persist the model as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp = tempfile.mkstemp(dir=str(path.parent),
                                        suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(self.to_dict(), stream)
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> Optional["BatchLatencyModel"]:
        """Load a persisted model; None when absent or unreadable (a
        corrupt calibration file must never stop an engine from
        starting — it just starts cold)."""
        try:
            with open(path) as stream:
                payload = json.load(stream)
            return cls.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None


def model_path(cache_dir: Union[str, Path], key: str) -> Path:
    """Where a plan-cache-keyed latency model lives on disk."""
    return Path(cache_dir) / "latency" / f"{key}.json"
