"""Thread-safe serving metrics: throughput, latency percentiles, batching.

The serving engine records one event per executed batch; a
:class:`MetricsSnapshot` is an immutable, consistent view a monitoring
loop (or the ``serve-bench`` CLI) can pull at any time without pausing
the workers.  Latency percentiles are computed over a sliding window of
recent requests so a long-running engine reports current behaviour, not
its lifetime average.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

LATENCY_WINDOW = 8192


def percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q / 100.0 * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class MetricsSnapshot:
    """One consistent view of an engine's serving behaviour."""

    requests: int
    batches: int
    failures: int
    queue_depth: int
    uptime_s: float
    throughput_rps: float
    mean_batch: float
    batch_histogram: Dict[int, int]
    p50_ms: float
    p95_ms: float
    p99_ms: float
    # Allocation behaviour aggregated over the engine's plan instances:
    # a warmed-up engine shows flat allocation counts and growing reuses.
    arena_allocations: int = 0
    arena_large_allocations: int = 0
    arena_reuses: int = 0
    workspace_allocations: int = 0
    # Persistent plan-cache traffic for the engine's per-batch-size plan
    # builds: hits are warm starts that skipped specialization entirely.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    def report(self) -> str:
        histogram = " ".join(f"{size}:{count}" for size, count
                             in sorted(self.batch_histogram.items()))
        return "\n".join([
            f"requests {self.requests} in {self.uptime_s:.2f}s "
            f"({self.throughput_rps:.1f} req/s), {self.batches} batches, "
            f"{self.failures} failed, queue depth {self.queue_depth}",
            f"latency p50 {self.p50_ms:.2f} ms, p95 {self.p95_ms:.2f} ms, "
            f"p99 {self.p99_ms:.2f} ms",
            f"mean batch {self.mean_batch:.2f} (histogram {histogram or '-'})",
            f"arena: {self.arena_allocations} allocations "
            f"({self.arena_large_allocations} large), "
            f"{self.arena_reuses} reuses, "
            f"{self.workspace_allocations} workspace buffers",
            f"plan cache: {self.plan_cache_hits} hits, "
            f"{self.plan_cache_misses} misses",
        ])


@dataclass
class _Counters:
    requests: int = 0
    batches: int = 0
    failures: int = 0
    batch_histogram: Dict[int, int] = field(default_factory=dict)


class MetricsRecorder:
    """Accumulates serving events; all methods are thread-safe."""

    def __init__(self, window: int = LATENCY_WINDOW) -> None:
        self._lock = threading.Lock()
        self._counters = _Counters()
        self._latencies: Deque[float] = deque(maxlen=window)
        self._started_at = time.monotonic()

    def record_batch(self, batch_size: int, latencies_s) -> None:
        with self._lock:
            self._counters.requests += batch_size
            self._counters.batches += 1
            histogram = self._counters.batch_histogram
            histogram[batch_size] = histogram.get(batch_size, 0) + 1
            self._latencies.extend(latencies_s)

    def record_failure(self, count: int) -> None:
        with self._lock:
            self._counters.failures += count

    def snapshot(self, queue_depth: int = 0,
                 arena_stats=None,
                 workspace_allocations: int = 0,
                 plan_cache_hits: int = 0,
                 plan_cache_misses: int = 0) -> MetricsSnapshot:
        """Build a consistent snapshot; ``arena_stats`` is an aggregated
        :class:`repro.runtime.arena.ArenaStats` (or None)."""
        with self._lock:
            counters = self._counters
            uptime = time.monotonic() - self._started_at
            window = sorted(self._latencies)
            requests = counters.requests
            batches = counters.batches
            return MetricsSnapshot(
                requests=requests,
                batches=batches,
                failures=counters.failures,
                queue_depth=queue_depth,
                uptime_s=uptime,
                throughput_rps=requests / uptime if uptime > 0 else 0.0,
                mean_batch=requests / batches if batches else 0.0,
                batch_histogram=dict(counters.batch_histogram),
                p50_ms=percentile(window, 50) * 1e3,
                p95_ms=percentile(window, 95) * 1e3,
                p99_ms=percentile(window, 99) * 1e3,
                arena_allocations=(arena_stats.allocations
                                   if arena_stats else 0),
                arena_large_allocations=(arena_stats.large_allocations
                                         if arena_stats else 0),
                arena_reuses=arena_stats.reuses if arena_stats else 0,
                workspace_allocations=workspace_allocations,
                plan_cache_hits=plan_cache_hits,
                plan_cache_misses=plan_cache_misses,
            )
