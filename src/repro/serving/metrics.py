"""Thread-safe serving metrics: throughput, latency percentiles, batching.

The serving engine records one event per executed batch; a
:class:`MetricsSnapshot` is an immutable, consistent view a monitoring
loop (or the ``serve-bench`` CLI) can pull at any time without pausing
the workers.  Latency percentiles *and throughput* are computed over the
same sliding window of recent requests, so a long-running engine reports
current behaviour, not its lifetime average (``lifetime_rps`` keeps the
old meaning).  Failed requests contribute to the picture too: their
completion timestamps (and, when the engine knows them, their elapsed
latencies and batch sizes) enter the same windows, so p99 no longer
silently excludes the worst outcomes, and ``failure_rate`` reports the
windowed share of failures.

The recorder also publishes into the process-wide telemetry registry:
per-request latencies feed the ``repro_serving_latency_seconds``
log-bucket histogram and batch sizes feed ``repro_serving_batch_size``
(one shared series across engines, Prometheus-exportable via
``repro metrics``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from ..telemetry import DEFAULT_SIZE_BUCKETS, get_registry

LATENCY_WINDOW = 8192

# Error-budget burn-rate windows (Prometheus label -> seconds) and the
# default availability SLO backing ``error_budget_burn``.
BURN_WINDOWS = (("1m", 60.0), ("5m", 300.0))
DEFAULT_SLO_TARGET = 0.99


def percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q / 100.0 * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class MetricsSnapshot:
    """One consistent view of an engine's serving behaviour."""

    requests: int
    batches: int
    failures: int
    queue_depth: int
    uptime_s: float
    # Sliding-window throughput: completions in the recent window divided
    # by the window's time span (current behaviour, like the latency
    # percentiles below).  ``lifetime_rps`` is the old lifetime average.
    throughput_rps: float
    mean_batch: float
    batch_histogram: Dict[int, int]
    p50_ms: float
    p95_ms: float
    p99_ms: float
    lifetime_rps: float = 0.0
    # Windowed share of failed requests among recent completions.
    failure_rate: float = 0.0
    # SLO accounting (all zero for engines serving no-deadline traffic):
    # requests shed before execution, completed requests that missed
    # their deadline, and the windowed rate of SLO-met completions
    # (goodput) next to the raw throughput above.
    shed: int = 0
    slo_misses: int = 0
    goodput_rps: float = 0.0
    # Windowed share of bad outcomes (failures + sheds + deadline
    # misses) among recent completions — the signal the load-shedding
    # admission controller keys on.
    miss_rate: float = 0.0
    # Allocation behaviour aggregated over the engine's plan instances:
    # a warmed-up engine shows flat allocation counts and growing reuses.
    arena_allocations: int = 0
    arena_large_allocations: int = 0
    arena_reuses: int = 0
    workspace_allocations: int = 0
    # Persistent plan-cache traffic for the engine's per-batch-size plan
    # builds: hits are warm starts that skipped specialization entirely.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    def report(self) -> str:
        histogram = " ".join(f"{size}:{count}" for size, count
                             in sorted(self.batch_histogram.items()))
        return "\n".join([
            f"requests {self.requests} in {self.uptime_s:.2f}s "
            f"({self.throughput_rps:.1f} req/s windowed, "
            f"{self.lifetime_rps:.1f} lifetime), {self.batches} batches, "
            f"{self.failures} failed "
            f"({self.failure_rate * 100:.1f}% of window), "
            f"{self.shed} shed, {self.slo_misses} SLO misses "
            f"({self.goodput_rps:.1f} goodput req/s), "
            f"queue depth {self.queue_depth}",
            f"latency p50 {self.p50_ms:.2f} ms, p95 {self.p95_ms:.2f} ms, "
            f"p99 {self.p99_ms:.2f} ms",
            f"mean batch {self.mean_batch:.2f} (histogram {histogram or '-'})",
            f"arena: {self.arena_allocations} allocations "
            f"({self.arena_large_allocations} large), "
            f"{self.arena_reuses} reuses, "
            f"{self.workspace_allocations} workspace buffers",
            f"plan cache: {self.plan_cache_hits} hits, "
            f"{self.plan_cache_misses} misses",
        ])


@dataclass
class _Counters:
    requests: int = 0
    batches: int = 0
    failures: int = 0
    shed: int = 0
    slo_misses: int = 0
    batch_histogram: Dict[int, int] = field(default_factory=dict)


class MetricsRecorder:
    """Accumulates serving events; all methods are thread-safe.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    ``registry`` is the telemetry registry the shared latency/batch-size
    histograms live in (defaults to the process-wide one).
    """

    def __init__(self, window: int = LATENCY_WINDOW,
                 clock=time.monotonic, registry=None) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._counters = _Counters()
        self._latencies: Deque[float] = deque(maxlen=window)
        # Completion/failure/shed/SLO-met timestamp streams backing the
        # windowed throughput, failure-rate, goodput, and miss-rate
        # computations.
        self._completions: Deque[float] = deque(maxlen=window)
        self._failure_times: Deque[float] = deque(maxlen=window)
        self._shed_times: Deque[float] = deque(maxlen=window)
        self._good_times: Deque[float] = deque(maxlen=window)
        self._started_at = clock()
        registry = registry or get_registry()
        self._latency_hist = registry.histogram(
            "repro_serving_latency_seconds",
            "End-to-end request latency (enqueue to completion)")
        self._batch_hist = registry.histogram(
            "repro_serving_batch_size",
            "Executed batch sizes", buckets=DEFAULT_SIZE_BUCKETS)

    def record_batch(self, batch_size: int, latencies_s,
                     slo_misses: int = 0) -> None:
        """Record one executed batch.

        ``slo_misses`` counts the requests in the batch that completed
        *after* their deadline; the rest (including no-deadline
        requests, which cannot miss) enter the goodput window.
        """
        latencies_s = list(latencies_s)
        now = self._clock()
        slo_misses = max(0, min(int(slo_misses), batch_size))
        with self._lock:
            self._counters.requests += batch_size
            self._counters.batches += 1
            self._counters.slo_misses += slo_misses
            histogram = self._counters.batch_histogram
            histogram[batch_size] = histogram.get(batch_size, 0) + 1
            self._latencies.extend(latencies_s)
            self._completions.extend([now] * batch_size)
            self._good_times.extend([now] * (batch_size - slo_misses))
        for latency in latencies_s:
            self._latency_hist.observe(latency)
        self._batch_hist.observe(batch_size)

    def record_shed(self, count: int = 1) -> None:
        """Record ``count`` requests shed before execution (early,
        typed rejections — not failures, not completions)."""
        now = self._clock()
        with self._lock:
            self._counters.shed += count
            self._shed_times.extend([now] * count)

    def record_failure(self, count: int, latencies_s=None) -> None:
        """Record ``count`` failed requests.

        Failures enter the same sliding windows as successes: their
        timestamps back ``failure_rate``, and — when the caller knows
        how long the doomed requests had been in flight — their
        ``latencies_s`` join the percentile window and their batch size
        bumps the batch histogram, so p99 reflects the worst outcomes
        instead of silently excluding them.
        """
        latencies_s = list(latencies_s) if latencies_s is not None else []
        now = self._clock()
        with self._lock:
            self._counters.failures += count
            self._failure_times.extend([now] * count)
            if latencies_s:
                self._latencies.extend(latencies_s)
                histogram = self._counters.batch_histogram
                histogram[count] = histogram.get(count, 0) + 1
        for latency in latencies_s:
            self._latency_hist.observe(latency)

    def _windowed_rates(self, now: float, lifetime_rps: float):
        """(windowed rps, failure rate, goodput rps, miss rate); lock
        must be held."""
        completions = self._completions
        failures = self._failure_times
        sheds = self._shed_times
        events = len(completions) + len(failures) + len(sheds)
        oldest = min((stream[0] for stream in
                      (completions, failures, sheds) if stream),
                     default=None)
        if oldest is None:
            return 0.0, 0.0, 0.0, 0.0
        span = now - oldest
        # A burst finishing within clock resolution has no measurable
        # span; fall back to the lifetime average rather than report 0
        # or infinity.
        rps = (len(completions) / span) if span > 0 else lifetime_rps
        goodput = (len(self._good_times) / span) if span > 0 else rps
        failure_rate = len(failures) / events if events else 0.0
        # Bad outcomes: failures, sheds, and completions past deadline
        # (completions - good).
        bad = len(failures) + len(sheds) + \
            (len(completions) - len(self._good_times))
        miss_rate = bad / events if events else 0.0
        return rps, failure_rate, goodput, miss_rate

    def miss_rate(self) -> float:
        """Windowed share of bad outcomes (failures + sheds + deadline
        misses) among recent requests — cheap enough for the admission
        controller to consult on every submit."""
        with self._lock:
            return self._windowed_rates(self._clock(), 0.0)[3]

    def window_events(self) -> int:
        """Requests currently represented in the sliding windows."""
        with self._lock:
            return (len(self._completions) + len(self._failure_times)
                    + len(self._shed_times))

    @staticmethod
    def _count_since(stream: Deque[float], cutoff: float) -> int:
        """Events at or after ``cutoff`` in an ascending timestamp deque."""
        count = 0
        for stamp in reversed(stream):
            if stamp < cutoff:
                break
            count += 1
        return count

    def error_budget_burn(self, window_s: float,
                          slo_target: float = DEFAULT_SLO_TARGET) -> float:
        """SRE-style burn rate of the error budget over ``window_s``.

        The bad-event rate (failures + sheds + deadline misses, the same
        stream :meth:`miss_rate` sees) over the window, divided by the
        budget the SLO allows (``1 - slo_target``): 1.0 means the budget
        is being spent exactly as fast as it accrues; 14.4 over 1h is
        the classic page-now threshold.  0.0 when the window saw no
        traffic.  Bounded by the deque window (``LATENCY_WINDOW`` recent
        events), so under extreme rates long windows under-count equally
        on both sides of the ratio.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 <= slo_target < 1.0:
            raise ValueError("slo_target must be within [0, 1)")
        cutoff = self._clock() - window_s
        with self._lock:
            completions = self._count_since(self._completions, cutoff)
            failures = self._count_since(self._failure_times, cutoff)
            sheds = self._count_since(self._shed_times, cutoff)
            good = self._count_since(self._good_times, cutoff)
        total = completions + failures + sheds
        if total == 0:
            return 0.0
        bad = failures + sheds + max(0, completions - good)
        return (bad / total) / (1.0 - slo_target)

    def snapshot(self, queue_depth: int = 0,
                 arena_stats=None,
                 workspace_allocations: int = 0,
                 plan_cache_hits: int = 0,
                 plan_cache_misses: int = 0) -> MetricsSnapshot:
        """Build a consistent snapshot; ``arena_stats`` is an aggregated
        :class:`repro.runtime.arena.ArenaStats` (or None)."""
        with self._lock:
            counters = self._counters
            now = self._clock()
            uptime = now - self._started_at
            window = sorted(self._latencies)
            requests = counters.requests
            batches = counters.batches
            lifetime_rps = requests / uptime if uptime > 0 else 0.0
            windowed_rps, failure_rate, goodput_rps, miss_rate = \
                self._windowed_rates(now, lifetime_rps)
            return MetricsSnapshot(
                requests=requests,
                batches=batches,
                failures=counters.failures,
                shed=counters.shed,
                slo_misses=counters.slo_misses,
                queue_depth=queue_depth,
                uptime_s=uptime,
                throughput_rps=windowed_rps,
                lifetime_rps=lifetime_rps,
                failure_rate=failure_rate,
                goodput_rps=goodput_rps,
                miss_rate=miss_rate,
                mean_batch=requests / batches if batches else 0.0,
                batch_histogram=dict(counters.batch_histogram),
                p50_ms=percentile(window, 50) * 1e3,
                p95_ms=percentile(window, 95) * 1e3,
                p99_ms=percentile(window, 99) * 1e3,
                arena_allocations=(arena_stats.allocations
                                   if arena_stats else 0),
                arena_large_allocations=(arena_stats.large_allocations
                                         if arena_stats else 0),
                arena_reuses=arena_stats.reuses if arena_stats else 0,
                workspace_allocations=workspace_allocations,
                plan_cache_hits=plan_cache_hits,
                plan_cache_misses=plan_cache_misses,
            )
