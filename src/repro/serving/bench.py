"""Closed-loop serving benchmark: sweep workers x max_batch configurations.

Measures what the serving layer actually buys on the host: a set of
client threads issues synchronous single-sample requests as fast as the
engine answers them, for each configuration in the sweep.  Throughput at
``max_batch > 1`` versus ``max_batch = 1`` isolates the micro-batching
win (the paper's batch-size lever); throughput at ``workers > 1`` versus
one worker isolates the plan-pool win (meaningful only on multi-core
hosts, since numpy only overlaps inside GIL-releasing BLAS calls).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph
from .engine import InferenceEngine
from .metrics import MetricsSnapshot


@dataclass(frozen=True)
class BenchResult:
    """One measured (workers, max_batch) configuration."""

    workers: int
    max_batch: int
    clients: int
    requests: int
    elapsed_s: float
    throughput_rps: float
    mean_batch: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    arena_allocations: int
    arena_reuses: int


def sample_feeds(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """One synthetic single-sample feed dict for ``graph``'s inputs."""
    rng = np.random.default_rng(seed)
    template = graph.with_batch(1)
    return {
        spec.name: rng.standard_normal(spec.shape).astype(
            spec.dtype.to_numpy())
        for spec in template.inputs
    }


def _closed_loop(engine: InferenceEngine, feeds: Mapping[str, np.ndarray],
                 clients: int, requests: int) -> float:
    """Issue ``requests`` total sync requests from ``clients`` threads;
    returns elapsed wall-clock seconds."""
    remaining = [requests]
    lock = threading.Lock()
    errors: List[BaseException] = []

    def client() -> None:
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            try:
                engine.infer_sync(feeds, timeout=60.0)
            except BaseException as exc:  # surfaced after the join below
                with lock:
                    errors.append(exc)
                return

    import time
    threads = [threading.Thread(target=client, daemon=True)
               for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def run_bench(graph: Graph,
              configs: Sequence[Tuple[int, int]] = ((1, 1), (1, 8)),
              requests: int = 64, clients: Optional[int] = None,
              warmup: int = 8,
              max_latency_ms: float = 2.0,
              num_threads: Optional[int] = None,
              tracer=None,
              slow_request_ms: Optional[float] = None) -> List[BenchResult]:
    """Benchmark ``graph`` under each ``(workers, max_batch)`` config.

    ``clients`` defaults to ``workers * max_batch`` per config so the
    queue has enough concurrent demand to actually fill batches.
    ``num_threads`` is handed to every engine (intra-batch parallel plan
    execution on the shared pool; ``None`` defers to
    ``REPRO_NUM_THREADS``).  ``tracer`` and ``slow_request_ms`` are
    handed to every engine too, so a benchmark run doubles as a source
    of request traces (``serve-bench --trace-out``).
    """
    results: List[BenchResult] = []
    feeds = sample_feeds(graph)
    for workers, max_batch in configs:
        n_clients = clients if clients is not None else workers * max_batch
        with InferenceEngine(graph, workers=workers, max_batch=max_batch,
                             max_latency_ms=max_latency_ms,
                             num_threads=num_threads, tracer=tracer,
                             slow_request_ms=slow_request_ms) as engine:
            _closed_loop(engine, feeds, n_clients, warmup)
            before = engine.metrics()
            elapsed = _closed_loop(engine, feeds, n_clients, requests)
            after = engine.metrics()
            measured = after.requests - before.requests
            batches = after.batches - before.batches
            results.append(BenchResult(
                workers=workers,
                max_batch=max_batch,
                clients=n_clients,
                requests=measured,
                elapsed_s=elapsed,
                throughput_rps=measured / elapsed if elapsed > 0 else 0.0,
                mean_batch=measured / batches if batches else 0.0,
                p50_ms=after.p50_ms,
                p95_ms=after.p95_ms,
                p99_ms=after.p99_ms,
                arena_allocations=(after.arena_allocations
                                   - before.arena_allocations),
                arena_reuses=after.arena_reuses - before.arena_reuses,
            ))
    return results


@dataclass(frozen=True)
class ReplicaBenchResult:
    """One measured serving mode in a replica-scaling sweep."""

    mode: str                  # "in-process" or "replicas"
    replicas: int              # 0 for the in-process baseline
    max_batch: int
    clients: int
    requests: int
    elapsed_s: float
    throughput_rps: float
    mean_batch: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    failures: int
    restarts: int


def run_replica_bench(graph: Graph,
                      replica_counts: Sequence[int] = (1, 2, 4),
                      requests: int = 128, clients: Optional[int] = None,
                      warmup: int = 16, max_batch: int = 8,
                      max_latency_ms: float = 2.0,
                      max_inflight: int = 2,
                      cache_dir=None,
                      start_method: str = "spawn",
                      on_tier=None) -> List[ReplicaBenchResult]:
    """Single-process engine baseline vs the replica tier at each count.

    The baseline is the best in-process configuration (one worker, same
    ``max_batch``); every replica row uses the identical micro-batching
    knobs, so the measured ratio isolates what crossing the process
    boundary buys (multi-core scale) and costs (frame serialization).
    ``clients`` defaults to enough closed-loop demand to keep every
    replica's in-flight budget full.  ``on_tier``, if given, is called
    with each still-live tier after its measurement — the CLI uses it to
    scrape the telemetry registry while per-replica series exist.
    """
    from .engine import InferenceEngine
    from .replicas import ReplicaEngine

    feeds = sample_feeds(graph)
    results: List[ReplicaBenchResult] = []

    def _measure(engine, mode: str, replicas: int,
                 n_clients: int) -> None:
        _closed_loop(engine, feeds, n_clients, warmup)
        before = engine.metrics()
        elapsed = _closed_loop(engine, feeds, n_clients, requests)
        after = engine.metrics()
        measured = after.requests - before.requests
        batches = after.batches - before.batches
        results.append(ReplicaBenchResult(
            mode=mode,
            replicas=replicas,
            max_batch=max_batch,
            clients=n_clients,
            requests=measured,
            elapsed_s=elapsed,
            throughput_rps=measured / elapsed if elapsed > 0 else 0.0,
            mean_batch=measured / batches if batches else 0.0,
            p50_ms=after.p50_ms,
            p95_ms=after.p95_ms,
            p99_ms=after.p99_ms,
            failures=after.failures - before.failures,
            restarts=getattr(engine, "restarts", 0),
        ))

    baseline_clients = clients if clients is not None else max_batch
    with InferenceEngine(graph, workers=1, max_batch=max_batch,
                         max_latency_ms=max_latency_ms) as engine:
        _measure(engine, "in-process", 0, baseline_clients)
    for count in replica_counts:
        n_clients = clients if clients is not None \
            else count * max_inflight * max_batch
        with ReplicaEngine(graph, replicas=count, max_batch=max_batch,
                           max_latency_ms=max_latency_ms,
                           max_inflight=max_inflight,
                           cache_dir=cache_dir,
                           start_method=start_method) as tier:
            _measure(tier, "replicas", count, n_clients)
            if on_tier is not None:
                on_tier(tier)
    return results


def render_replicas(results: Sequence[ReplicaBenchResult],
                    name: str = "") -> str:
    """Fixed-width table of a replica-scaling sweep (speedups are
    relative to the in-process baseline row)."""
    header = (f"{'mode':<12} {'procs':>5} {'clients':>7} {'req/s':>9} "
              f"{'mean_b':>6} {'p50ms':>7} {'p95ms':>7} {'fail':>5} "
              f"{'restart':>7}")
    lines = []
    if name:
        lines.append(f"serve-bench --replicas: {name}")
    lines.append(header)
    lines.append("-" * len(header))
    base = results[0].throughput_rps if results else 0.0
    for row in results:
        speedup = (f" ({row.throughput_rps / base:.2f}x)"
                   if base > 0 and row is not results[0] else "")
        label = row.mode if row.replicas == 0 \
            else f"{row.mode}-{row.replicas}"
        lines.append(
            f"{label:<12} {row.replicas:>5} {row.clients:>7} "
            f"{row.throughput_rps:>9.1f} {row.mean_batch:>6.2f} "
            f"{row.p50_ms:>7.2f} {row.p95_ms:>7.2f} {row.failures:>5} "
            f"{row.restarts:>7}{speedup}")
    return "\n".join(lines)


def render(results: Sequence[BenchResult], name: str = "") -> str:
    """Fixed-width table of a benchmark sweep."""
    header = (f"{'workers':>7} {'batch':>5} {'clients':>7} {'req/s':>9} "
              f"{'mean_b':>6} {'p50ms':>7} {'p95ms':>7} "
              f"{'allocs':>6} {'reuses':>7}")
    lines = []
    if name:
        lines.append(f"serve-bench: {name}")
    lines.append(header)
    lines.append("-" * len(header))
    base = results[0].throughput_rps if results else 0.0
    for row in results:
        speedup = (f" ({row.throughput_rps / base:.2f}x)"
                   if base > 0 and row is not results[0] else "")
        lines.append(
            f"{row.workers:>7} {row.max_batch:>5} {row.clients:>7} "
            f"{row.throughput_rps:>9.1f} {row.mean_batch:>6.2f} "
            f"{row.p50_ms:>7.2f} {row.p95_ms:>7.2f} "
            f"{row.arena_allocations:>6} {row.arena_reuses:>7}{speedup}")
    return "\n".join(lines)
